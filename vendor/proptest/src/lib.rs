//! Offline in-tree stand-in for `proptest`.
//!
//! Supports the subset of the proptest surface this workspace's property
//! tests use: the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, integer-range and tuple strategies,
//! [`collection::vec`], and the `prop_assert!`/`prop_assert_eq!`/
//! [`prop_assume!`] macros.  Values are generated from a deterministic seed
//! per test case; there is **no shrinking** — on failure the offending
//! inputs are printed verbatim.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A source of random values of some type.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `Just(value)` — the constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// Builds a [`VecStrategy`]; `size` is a half-open range of lengths.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy {
            element,
            min: size.start,
            max_exclusive: size.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.min..self.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections tolerated.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single test case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case hit a failing assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!`.
    Reject(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Constructs a rejection.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// The result of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs `case` until `config.cases` successes (or panics on the first
/// failure).  Deterministic: case `i` uses seed `i` mixed with a fixed
/// offset, so failures are reproducible without a persistence file.
pub fn run_proptest(config: ProptestConfig, mut case: impl FnMut(&mut TestRng) -> TestCaseResult) {
    let mut successes = 0u32;
    let mut rejects = 0u32;
    let mut index = 0u64;
    while successes < config.cases {
        let mut rng = TestRng::seed_from_u64(0x7072_6F70_0000_0000_u64 ^ index);
        index += 1;
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest: too many prop_assume! rejections \
                         ({rejects} rejects for {successes} successes)"
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("proptest case #{index} failed: {message}");
            }
        }
    }
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(0u8..3, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_proptest(config, |__proptest_rng| {
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);
                    )+
                    $body
                    Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left,
                right,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Rejects a generated case that does not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        collection, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };

    /// Alias mirroring proptest's `prelude::prop` module path.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vectors_generate_in_bounds(
            x in 1usize..5,
            pairs in prop::collection::vec((0u8..3, 0u8..4), 1..6),
        ) {
            prop_assert!((1..5).contains(&x));
            prop_assert!(!pairs.is_empty() && pairs.len() < 6);
            for (a, b) in pairs {
                prop_assert!(a < 3, "a was {}", a);
                prop_assert_eq!(u8::min(b, 3), b);
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic_with_message() {
        crate::run_proptest(ProptestConfig::with_cases(1), |_| {
            Err(crate::TestCaseError::fail("boom"))
        });
    }
}
