//! Offline in-tree stand-in for `criterion`.
//!
//! Provides the subset of the criterion API used by the workspace benches
//! (`benchmark_group`, `bench_with_input`, `bench_function`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros) with
//! real wall-clock measurement: each benchmark is warmed up, then timed over
//! `sample_size` samples, and the per-iteration mean, minimum and maximum
//! are printed in criterion-like format.  There is no statistical analysis,
//! HTML report, or baseline comparison.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// A benchmark identifier `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The measurement settings a group applies to its benchmarks.
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings: Settings::default(),
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.id, Settings::default(), |b| f(b));
        self
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the total measurement duration budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Benchmarks `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.settings, |b| f(b, input));
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.settings, |b| f(b));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Runs one benchmark and prints its timing line.
fn run_benchmark(name: &str, settings: Settings, mut routine: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        mode: Mode::WarmUp {
            deadline: Instant::now() + settings.warm_up_time,
        },
        iters_per_sample: 1,
        samples: Vec::new(),
    };
    routine(&mut bencher);

    // Choose an iteration count per sample so that the whole measurement
    // fits roughly in the configured budget.
    let per_iter = bencher.estimated_iter_time().max(Duration::from_nanos(1));
    let budget = settings.measurement_time.as_nanos();
    let per_sample_budget = (budget / settings.sample_size.max(1) as u128).max(1);
    let iters = (per_sample_budget / per_iter.as_nanos().max(1)).clamp(1, 1_000_000_000) as u64;

    bencher.mode = Mode::Measure {
        remaining_samples: settings.sample_size,
    };
    bencher.iters_per_sample = iters;
    bencher.samples.clear();
    routine(&mut bencher);

    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{name:<60} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
}

/// Formats a duration in nanoseconds with criterion-like units.
fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

enum Mode {
    WarmUp { deadline: Instant },
    Measure { remaining_samples: usize },
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    iters_per_sample: u64,
    samples: Vec<f64>,
}

impl Bencher {
    /// Calls `routine` repeatedly, measuring its mean execution time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match &mut self.mode {
            Mode::WarmUp { deadline } => {
                let deadline = *deadline;
                let mut iters = 0u64;
                let start = Instant::now();
                loop {
                    std::hint::black_box(routine());
                    iters += 1;
                    if Instant::now() >= deadline {
                        break;
                    }
                }
                let elapsed = start.elapsed();
                // Record the observed per-iteration time as a single sample
                // so the measurement phase can calibrate.
                self.samples
                    .push(elapsed.as_nanos() as f64 / iters.max(1) as f64);
            }
            Mode::Measure { remaining_samples } => {
                let samples = *remaining_samples;
                for _ in 0..samples {
                    let start = Instant::now();
                    for _ in 0..self.iters_per_sample {
                        std::hint::black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    self.samples
                        .push(elapsed.as_nanos() as f64 / self.iters_per_sample.max(1) as f64);
                }
                *remaining_samples = 0;
            }
        }
    }

    /// The calibrated per-iteration time from the warm-up phase.
    fn estimated_iter_time(&self) -> Duration {
        match self.samples.last() {
            Some(&ns) => Duration::from_nanos(ns as u64),
            None => Duration::from_micros(1),
        }
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test_group");
        group.sample_size(5);
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(20));
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("inc", 1), &1u64, |b, &x| {
            b.iter(|| {
                calls += x;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
