//! Offline in-tree stand-in for the `rand` crate.
//!
//! The build environment of this repository has no network access and no
//! vendored registry, so this crate provides the (small) subset of the
//! `rand` 0.9 API that the workspace actually uses, with compatible
//! semantics:
//!
//! * [`RngCore`] / [`Rng`] — `random_range`, `random_bool`, `random`;
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`;
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (the reference seeding scheme of the xoshiro authors);
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! The generator is *not* the upstream ChaCha12 `StdRng`, so streams differ
//! from upstream `rand`; every consumer in this workspace only relies on
//! determinism-for-a-seed and statistical quality, both of which hold.

#![forbid(unsafe_code)]

/// A random number generator core: a source of uniform machine words.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::random_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as u128).wrapping_sub(low as u128);
                if span == u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                // Lemire's widening-multiply method with rejection below
                // the threshold keeps the draw exactly unbiased.
                let span = span as u64 + 1;
                let mut m = (rng.next_u64() as u128).wrapping_mul(span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let threshold = span.wrapping_neg() % span;
                    while lo < threshold {
                        m = (rng.next_u64() as u128).wrapping_mul(span as u128);
                        lo = m as u64;
                    }
                }
                low.wrapping_add((m >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as $u).wrapping_sub(low as $u);
                let offset = <$u>::sample_inclusive(rng, 0, span);
                low.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + One> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(rng, self.start, self.end.minus_one())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Helper for the exclusive upper bound of `Range` sampling.
pub trait One {
    /// `self - 1`; used to convert an exclusive bound to inclusive.
    fn minus_one(self) -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn minus_one(self) -> Self { self - 1 }
        }
    )*};
}

impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Values drawable uniformly over their whole domain by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws a uniform value of the type.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range`.
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        f64::draw(self) < p
    }

    /// Draws a uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed, expanding it with SplitMix64
    /// so that nearby seeds yield uncorrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// The SplitMix64 stream, used for seed expansion.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Passes BigCrush in its upstream evaluation; all consumers here rely
    /// only on determinism-for-a-seed and statistical uniformity.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait providing in-place shuffling of slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs = (0..100).any(|_| a.random::<u64>() != c.random::<u64>());
        assert!(differs);
    }

    #[test]
    fn ranges_are_respected_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 6];
        for _ in 0..60_000 {
            counts[rng.random_range(0..6usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
        for _ in 0..1_000 {
            let v = rng.random_range(3..=5i64);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut data: Vec<u32> = (0..50).collect();
        let original = data.clone();
        data.shuffle(&mut rng);
        assert_ne!(data, original);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
    }
}
