//! Offline in-tree stand-in for `rayon`.
//!
//! Implements the subset of the rayon API used by this workspace — indexed
//! parallel iterators over ranges with `map`/`sum`/`collect`, plus
//! [`ThreadPoolBuilder`] with `install` for scoping a thread count — on top
//! of `std::thread::scope`.  Work is split into contiguous chunks, one per
//! worker; there is no work stealing, which is adequate for the uniform
//! per-item workloads of the Monte-Carlo estimators.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::num::NonZeroUsize;

thread_local! {
    /// Thread count installed by [`ThreadPool::install`], if any.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Returns the number of worker threads the current scope would use.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|cell| match cell.get() {
        Some(n) => n,
        None => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    })
}

/// Builder for a scoped thread pool (configuration only — threads are
/// spawned per parallel call via `std::thread::scope`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads (0 means "automatic").
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error building a thread pool (infallible in this stand-in).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A configured pool; `install` runs a closure with the pool's thread count
/// in effect for all parallel iterators invoked inside it.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count installed.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|cell| {
            let previous = cell.get();
            cell.set(self.num_threads.or(previous));
            let result = op();
            cell.set(previous);
            result
        })
    }
}

/// An indexed source of items: the internal driver model of this stand-in.
///
/// Every adapter (`map`) composes on top of `len`/`item_at`; terminal
/// operations split `0..len` into one contiguous chunk per worker thread.
pub trait IndexedSource: Sync + Sized {
    /// The item type produced.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// Returns `true` iff the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The item at position `index` (0-based).
    fn item_at(&self, index: usize) -> Self::Item;
}

/// Parallel iterator adapters and terminals over an [`IndexedSource`].
pub trait ParallelIterator: IndexedSource {
    /// Maps each item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Sums all items.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        run_chunks(&self, |source, range| {
            range.map(|i| source.item_at(i)).sum::<S>()
        })
        .into_iter()
        .sum()
    }

    /// Reduces all items with `op`, starting each sub-reduction from
    /// `identity()`.  As in upstream rayon, `op` must be associative and
    /// `identity()` a neutral element for the result to be deterministic;
    /// this stand-in additionally folds the per-chunk results in chunk
    /// order.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        run_chunks(&self, |source, range| {
            range.map(|i| source.item_at(i)).fold(identity(), &op)
        })
        .into_iter()
        .fold(identity(), op)
    }

    /// Collects all items into a container, in index order.
    fn collect<C>(self) -> C
    where
        C: FromParallel<Self::Item>,
    {
        let chunks = run_chunks(&self, |source, range| {
            range.map(|i| source.item_at(i)).collect::<Vec<_>>()
        });
        C::from_chunks(chunks)
    }
}

impl<T: IndexedSource> ParallelIterator for T {}

/// Containers constructible from ordered chunks of items.
pub trait FromParallel<T>: Sized {
    /// Builds the container from per-chunk item vectors, in order.
    fn from_chunks(chunks: Vec<Vec<T>>) -> Self;
}

impl<T> FromParallel<T> for Vec<T> {
    fn from_chunks(chunks: Vec<Vec<T>>) -> Self {
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

/// Splits `0..source.len()` into one contiguous chunk per worker and runs
/// `work` on each chunk, returning the per-chunk results in chunk order.
fn run_chunks<S, T, W>(source: &S, work: W) -> Vec<T>
where
    S: IndexedSource,
    T: Send,
    W: Fn(&S, std::ops::Range<usize>) -> T + Sync,
{
    let len = source.len();
    let workers = current_num_threads().max(1).min(len.max(1));
    if workers <= 1 {
        return vec![work(source, 0..len)];
    }
    let chunk = len.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(len);
                let work = &work;
                scope.spawn(move || work(source, start..end))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over an integer range.
#[derive(Debug, Clone)]
pub struct RangeIter<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;

            fn into_par_iter(self) -> Self::Iter {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeIter { start: self.start, len }
            }
        }

        impl IndexedSource for RangeIter<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                self.len
            }

            fn item_at(&self, index: usize) -> $t {
                self.start + index as $t
            }
        }
    )*};
}

impl_range_par_iter!(u32, u64, usize);

/// Parallel iterator over a vector (by value).
#[derive(Debug)]
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send + Sync + Clone> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;

    fn into_par_iter(self) -> Self::Iter {
        VecIter { items: self }
    }
}

impl<T: Send + Sync + Clone> IndexedSource for VecIter<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn item_at(&self, index: usize) -> T {
        self.items[index].clone()
    }
}

/// A mapped parallel iterator.
#[derive(Debug, Clone)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> IndexedSource for Map<I, F>
where
    I: IndexedSource,
    F: Fn(I::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn item_at(&self, index: usize) -> R {
        (self.f)(self.base.item_at(index))
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_sum() {
        let total: u64 = (0u64..1000).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(total, 999_000);
    }

    #[test]
    fn reduce_folds_all_chunks() {
        let total = (0u64..1000)
            .into_par_iter()
            .map(|x| vec![x])
            .reduce(Vec::new, |mut a, b| {
                a.extend(b);
                a
            });
        assert_eq!(total.len(), 1000);
        assert_eq!(total.iter().sum::<u64>(), 499_500);
        for threads in [1usize, 3, 8] {
            let pool = crate::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let value = pool.install(|| (0u64..1000).into_par_iter().reduce(|| 0, |a, b| a + b));
            assert_eq!(value, 499_500);
        }
    }

    #[test]
    fn collect_preserves_order() {
        let squares: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), 100);
        assert!(squares.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(squares[99], 99 * 99);
    }

    #[test]
    fn install_controls_thread_count_without_changing_results() {
        let baseline: u64 = (0u64..10_000).into_par_iter().sum();
        for threads in [1usize, 2, 7] {
            let pool = crate::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let value: u64 = pool.install(|| (0u64..10_000).into_par_iter().sum());
            assert_eq!(value, baseline);
            assert_eq!(pool.install(crate::current_num_threads), threads);
        }
    }
}
