//! Property-based tests over randomly generated instances, checking the
//! structural invariants the paper's proofs rely on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uocqa::core::counting;
use uocqa::db::{
    ConflictGraph, ConflictIndex, Database, Fact, FactId, FactSet, LiveOps, Value, ViolationSet,
};
use uocqa::numeric::Ratio;
use uocqa::query::{Atom, CompiledLineage, ConjunctiveQuery, QueryEvaluator, Term};
use uocqa::repair::{GeneratorSpec, OperationalSemantics, RepairingTree, TreeLimits};

mod common;
use common::{
    all_specs, block_database, canonical_witnesses, fd_database, multi_fd_database,
    parse_membership,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Lemma C.1 dynamic program always agrees with brute-force tree
    /// enumeration, and the closed-form repair counts match as well.
    #[test]
    fn counting_formulas_match_enumeration(profile in prop::collection::vec(1usize..4, 1..4)) {
        let (db, sigma) = block_database(&profile);
        let tree = RepairingTree::build(&db, &sigma, false, TreeLimits::default()).unwrap();
        let sizes = counting::block_sizes(&db, &sigma, &db.all_facts()).unwrap();
        prop_assert_eq!(
            counting::count_complete_sequences(&sizes).to_u64().unwrap(),
            tree.leaf_count() as u64
        );
        prop_assert_eq!(
            counting::count_candidate_repairs(&sizes).to_u64().unwrap(),
            tree.candidate_repairs().len() as u64
        );
        let singleton_tree = RepairingTree::build(&db, &sigma, true, TreeLimits::default()).unwrap();
        prop_assert_eq!(
            counting::count_complete_sequences_singleton(&sizes).to_u64().unwrap(),
            singleton_tree.leaf_count() as u64
        );
        prop_assert_eq!(
            counting::count_candidate_repairs_singleton(&sizes).to_u64().unwrap(),
            singleton_tree.candidate_repairs().len() as u64
        );
    }

    /// Every candidate repair produced by the tree is a consistent subset,
    /// and every leaf distribution sums to exactly 1 under all generators.
    #[test]
    fn repairs_are_consistent_and_distributions_normalised(pairs in prop::collection::vec((0u8..3, 0u8..3), 1..6)) {
        let (db, sigma) = fd_database(&pairs);
        let tree = RepairingTree::build(&db, &sigma, false, TreeLimits::default()).unwrap();
        for repair in tree.candidate_repairs() {
            prop_assert!(ViolationSet::compute(&db, &sigma, &repair).is_empty());
        }
        for spec in [
            GeneratorSpec::uniform_repairs(),
            GeneratorSpec::uniform_sequences(),
            GeneratorSpec::uniform_operations(),
            GeneratorSpec::uniform_operations().with_singleton_only(),
        ] {
            let chain = spec.build_chain(&db, &sigma, TreeLimits::default()).unwrap();
            prop_assert!(chain.leaf_distribution_sums_to_one());
            let semantics = OperationalSemantics::from_chain(&chain);
            prop_assert!(semantics.total_probability().is_one());
        }
    }

    /// Lemma 5.4 / E.4: for non-trivially connected instances the number of
    /// candidate repairs equals the number of independent sets of the
    /// conflict graph (and the singleton variant equals the non-empty ones).
    #[test]
    fn corep_equals_independent_sets_of_conflict_graph(pairs in prop::collection::vec((0u8..2, 0u8..3), 2..6)) {
        let (db, sigma) = fd_database(&pairs);
        let cg = ConflictGraph::build(&db, &sigma);
        prop_assume!(cg.is_non_trivially_connected());
        // Count independent sets of the conflict graph by brute force.
        let n = db.len();
        let mut independent = 0u64;
        let mut independent_nonempty = 0u64;
        for mask in 0u32..(1 << n) {
            let subset = uocqa::db::FactSet::from_iter(
                n,
                (0..n).filter(|i| (mask >> i) & 1 == 1).map(uocqa::db::FactId::new),
            );
            if cg.is_independent_set(&subset) {
                independent += 1;
                if !subset.is_empty() {
                    independent_nonempty += 1;
                }
            }
        }
        let tree = RepairingTree::build(&db, &sigma, false, TreeLimits::default()).unwrap();
        prop_assert_eq!(tree.candidate_repairs().len() as u64, independent);
        let singleton = RepairingTree::build(&db, &sigma, true, TreeLimits::default()).unwrap();
        prop_assert_eq!(singleton.candidate_repairs().len() as u64, independent_nonempty);
    }

    /// The chain-based probability and the relative-frequency reformulation
    /// agree for uniform repairs and uniform sequences (Sections 5 and 6),
    /// and probabilities always lie in [0, 1].
    #[test]
    fn frequency_reformulations_agree(profile in prop::collection::vec(1usize..4, 1..4), fact_index in 0usize..12) {
        let (db, sigma) = block_database(&profile);
        let solver = uocqa::core::exact::ExactSolver::new(&db, &sigma);
        // Atomic query asking for a specific fact (wrapping the index).
        let target = db.fact(uocqa::db::FactId::new(fact_index % db.len()));
        let terms: Vec<Term> = target.values().iter().cloned().map(Term::Const).collect();
        let query = ConjunctiveQuery::boolean(db.schema(), vec![Atom::new(target.relation(), terms)]).unwrap();
        let evaluator = QueryEvaluator::new(query);
        for spec in [GeneratorSpec::uniform_repairs(), GeneratorSpec::uniform_sequences()] {
            let via_chain = solver.answer_probability(spec, &evaluator, &[]).unwrap();
            let via_freq = solver
                .answer_probability_via_frequencies(spec, &evaluator, &[])
                .unwrap();
            prop_assert_eq!(via_chain.clone(), via_freq);
            prop_assert!(via_chain <= Ratio::one());
        }
    }

    /// The compiled lineage agrees with the backtracking evaluator on
    /// random subsets of seeded workload databases, across single-atom
    /// lookup queries, Boolean fact-membership queries and two-atom join
    /// queries.
    #[test]
    fn compiled_lineage_agrees_with_the_evaluator(
        blocks in 1usize..6,
        block_size in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let (db, _) = uocqa::workload::BlockWorkload::uniform(blocks, block_size, seed).generate();
        let mut queries = vec![
            (uocqa::workload::queries::fact_membership_query(&db, seed).unwrap(), vec![]),
            (uocqa::workload::queries::block_join_query(&db, seed).unwrap(), vec![]),
        ];
        let (lookup, candidate) = uocqa::workload::queries::block_lookup_query(&db, seed).unwrap();
        queries.push((lookup, candidate));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
        for (query, candidate) in queries {
            let evaluator = QueryEvaluator::new(query);
            let lineage = CompiledLineage::compile(&evaluator, &db, &candidate)
                .unwrap()
                .expect("workload lineages stay under the witness cap");
            for _ in 0..32 {
                let subset = FactSet::from_iter(
                    db.len(),
                    (0..db.len())
                        .filter(|_| rng.random_bool(0.5))
                        .map(uocqa::db::FactId::new),
                );
                prop_assert_eq!(
                    lineage.entails(&subset),
                    evaluator.has_answer(&db, &subset, &candidate).unwrap(),
                    "subset {:?}", subset
                );
            }
        }
    }

    /// The lower bounds of Lemmas 5.3 / 6.3 / E.3 hold on random
    /// primary-key instances: whenever the frequency is positive it is at
    /// least the stated bound.
    #[test]
    fn lower_bounds_hold(profile in prop::collection::vec(1usize..4, 1..4), fact_index in 0usize..12) {
        let (db, sigma) = block_database(&profile);
        let solver = uocqa::core::exact::ExactSolver::new(&db, &sigma);
        let target = db.fact(uocqa::db::FactId::new(fact_index % db.len()));
        let terms: Vec<Term> = target.values().iter().cloned().map(Term::Const).collect();
        let query = ConjunctiveQuery::boolean(db.schema(), vec![Atom::new(target.relation(), terms)]).unwrap();
        let evaluator = QueryEvaluator::new(query);
        let d = db.len();

        let rrfreq = solver.rrfreq(&evaluator, &[], false).unwrap().to_f64();
        if rrfreq > 0.0 {
            prop_assert!(rrfreq >= uocqa::core::bounds::rrfreq_lower_bound(d, 1).to_f64() - 1e-12);
        }
        let srfreq = solver.srfreq(&evaluator, &[], false).unwrap().to_f64();
        if srfreq > 0.0 {
            prop_assert!(srfreq >= uocqa::core::bounds::srfreq_lower_bound(d, 1).to_f64() - 1e-12);
        }
        let rrfreq1 = solver.rrfreq(&evaluator, &[], true).unwrap().to_f64();
        if rrfreq1 > 0.0 {
            prop_assert!(
                rrfreq1 >= uocqa::core::bounds::singleton_frequency_lower_bound(d, 1).to_f64() - 1e-12
            );
        }
    }

    /// Batched multi-query FPRAS runs are **bit-identical** to per-query
    /// runs under the same seed — the sequential path against
    /// [`estimate`](uocqa::core::fpras::OcqaEstimator::estimate), the
    /// rayon-parallel path against `estimate_parallel` — across bank
    /// sizes 1, 2 and 8 (with duplicate queries once the bank wraps
    /// around the database), on random multi-FD, non-key, cross-relation
    /// databases.  The RNG is consumed by the shared repair draw only, so
    /// batching changes the cost of a run, never its outcome.
    #[test]
    fn batched_estimates_match_single_query_runs_bit_for_bit(
        rows in prop::collection::vec((0u8..3, 0u8..3, 0u8..3, 0u8..2), 2..10),
        seed in 0u64..1_000,
    ) {
        use uocqa::core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};

        let (db, sigma) = multi_fd_database(&rows);
        // Non-key FDs: the supported generator is uniform operations with
        // singleton removals (Theorem 7.5).
        let spec = GeneratorSpec::uniform_operations().with_singleton_only();
        let estimator = BatchEstimator::new(&db, &sigma, spec).unwrap();
        let evaluators: Vec<QueryEvaluator> = (0..8usize)
            .map(|i| {
                let fact = db.fact(FactId::new((i + seed as usize) % db.len()));
                let terms: Vec<Term> = fact.values().iter().cloned().map(Term::Const).collect();
                QueryEvaluator::new(
                    ConjunctiveQuery::boolean(
                        db.schema(),
                        vec![Atom::new(fact.relation(), terms)],
                    )
                    .unwrap(),
                )
            })
            .collect();
        let params = ApproximationParams::new(0.2, 0.2)
            .unwrap()
            .with_mode(EstimatorMode::FixedSamples(192));
        for bank_size in [1usize, 2, 8] {
            let bank: Vec<BatchQuery<'_>> = evaluators[..bank_size]
                .iter()
                .map(|e| BatchQuery::new(e, &[]))
                .collect();
            let batched = estimator
                .estimate_batch(&bank, params, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            prop_assert_eq!(batched.len(), bank_size);
            for (i, query) in bank.iter().enumerate() {
                let single = estimator
                    .estimator()
                    .estimate(
                        query.evaluator,
                        query.candidate,
                        params,
                        &mut StdRng::seed_from_u64(seed),
                    )
                    .unwrap();
                prop_assert_eq!(batched[i], single, "sequential, bank {}, query {}", bank_size, i);
            }
            let batched_parallel = estimator
                .estimate_batch_parallel(&bank, params, seed)
                .unwrap();
            for (i, query) in bank.iter().enumerate() {
                let single = estimator
                    .estimator()
                    .estimate_parallel(query.evaluator, query.candidate, params, seed)
                    .unwrap();
                prop_assert_eq!(
                    batched_parallel[i], single,
                    "parallel, bank {}, query {}", bank_size, i
                );
            }
        }
    }

    /// Batched-adaptive (stopping-rule) per-query estimates satisfy the
    /// DKLR relative-error bound against the exact solver on random
    /// multi-FD banks of sizes 1, 2 and 8, and a zero-probability query
    /// appended to the bank truncates at `max_samples` with zero
    /// successes without stalling the retirement of the others.
    ///
    /// The stopping rule guarantees relative error `ε` with probability
    /// `1 − δ` per query; the test asserts the doubled radius `2ε` so a
    /// pass is deterministic in practice (the vendored proptest draws
    /// from fixed per-case seeds, and the probability of exceeding `2ε`
    /// is negligible), while a genuine estimator regression — wrong
    /// normalisation, wrong stream accounting — lands far outside it.
    #[test]
    fn batched_adaptive_estimates_satisfy_the_relative_error_bound(
        rows in prop::collection::vec((0u8..3, 0u8..3, 0u8..3, 0u8..2), 2..8),
        seed in 0u64..1_000,
    ) {
        use uocqa::core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
        use uocqa::query::parser::parse_query;

        let (db, sigma) = multi_fd_database(&rows);
        let spec = GeneratorSpec::uniform_operations().with_singleton_only();
        let estimator = BatchEstimator::new(&db, &sigma, spec).unwrap();
        let evaluators: Vec<QueryEvaluator> = (0..8usize)
            .map(|i| {
                let fact = db.fact(FactId::new((i + seed as usize) % db.len()));
                let terms: Vec<Term> = fact.values().iter().cloned().map(Term::Const).collect();
                QueryEvaluator::new(
                    ConjunctiveQuery::boolean(
                        db.schema(),
                        vec![Atom::new(fact.relation(), terms)],
                    )
                    .unwrap(),
                )
            })
            .collect();
        // A query no repair can ever entail: the constants do not occur in
        // the database.
        let never = QueryEvaluator::new(
            parse_query(db.schema(), "Ans() :- R(9, 9, 9, 9)").unwrap(),
        );
        // Exact ground truth for the whole bank, one pass over ⟦D⟧_M.
        let refs: Vec<(&QueryEvaluator, &[uocqa::db::Value])> =
            evaluators.iter().map(|e| (e, &[] as &[uocqa::db::Value])).collect();
        let exact = uocqa::core::exact::ExactSolver::new(&db, &sigma)
            .answer_probabilities(spec, &refs)
            .unwrap();

        let epsilon = 0.3;
        let max_samples = 20_000u64;
        let params = ApproximationParams::new(epsilon, 0.1)
            .unwrap()
            .with_mode(EstimatorMode::OptimalStopping { max_samples });
        for bank_size in [1usize, 2, 8] {
            let mut bank: Vec<BatchQuery<'_>> = evaluators[..bank_size]
                .iter()
                .map(|e| BatchQuery::new(e, &[]))
                .collect();
            bank.push(BatchQuery::new(&never, &[]));
            let estimates = estimator
                .estimate_stopping_batch(&bank, params, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            prop_assert_eq!(estimates.len(), bank_size + 1);
            for (i, estimate) in estimates[..bank_size].iter().enumerate() {
                let p = exact[i].to_f64();
                if p == 0.0 {
                    prop_assert_eq!(estimate.successes, 0, "bank {}, query {}", bank_size, i);
                    prop_assert!(estimate.truncated);
                } else if p >= 0.05 {
                    // Well-supported queries must retire before the
                    // cut-off and land within the (doubled) error radius.
                    prop_assert!(
                        !estimate.truncated,
                        "bank {}, query {}: truncated at p = {}", bank_size, i, p
                    );
                    prop_assert!(
                        estimate.samples < max_samples,
                        "bank {}, query {} did not retire early", bank_size, i
                    );
                    let relative_error = (estimate.value - p).abs() / p;
                    prop_assert!(
                        relative_error < 2.0 * epsilon,
                        "bank {}, query {}: exact {}, estimate {} (relative error {})",
                        bank_size, i, p, estimate.value, relative_error
                    );
                } else if !estimate.truncated {
                    // Tiny but positive probabilities may legitimately
                    // truncate; when they do retire, the bound holds.
                    let relative_error = (estimate.value - p).abs() / p;
                    prop_assert!(relative_error < 2.0 * epsilon);
                }
            }
            // The impossible query rides the stream to the cut-off …
            let never_estimate = estimates[bank_size];
            prop_assert!(never_estimate.truncated);
            prop_assert_eq!(never_estimate.samples, max_samples);
            prop_assert_eq!(never_estimate.successes, 0);
            prop_assert_eq!(never_estimate.value, 0.0);
            // … and `estimate_batch` routes OptimalStopping to the same
            // adaptive loop.
            let routed = estimator
                .estimate_batch(&bank, params, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            prop_assert_eq!(routed, estimates);
        }
    }

    /// Plan-based witness enumeration is **witness-set-identical** to the
    /// unplanned backtracking baseline, on random multi-FD databases:
    /// per-query homomorphism sets, compiled-lineage witness antichains,
    /// and whole banks compiled through the shared scan trie (including
    /// overlapping-join banks and over-cap fallback entries) all agree
    /// with the pre-plan path on every tested subset.
    #[test]
    fn planned_enumeration_matches_the_backtracking_baseline(
        rows in prop::collection::vec((0u8..3, 0u8..3, 0u8..3, 0u8..2), 2..10),
        seed in 0u64..1_000,
    ) {
        use uocqa::query::LineageBank;
        use uocqa::workload::queries::overlapping_join_bank;

        let (db, _) = multi_fd_database(&rows);
        // A mixed bank: overlapping joins (shared prefixes), atomic
        // membership queries, a candidate-driven lookup, and an
        // unsatisfiable query.
        let mut queries: Vec<(ConjunctiveQuery, Vec<Value>)> = overlapping_join_bank(&db, 3, 1, seed)
            .unwrap()
            .into_iter()
            .map(|q| (q, vec![]))
            .collect();
        for offset in 0..2usize {
            let fact = db.fact(FactId::new((seed as usize + offset) % db.len()));
            let terms: Vec<Term> = fact.values().iter().cloned().map(Term::Const).collect();
            queries.push((
                ConjunctiveQuery::boolean(db.schema(), vec![Atom::new(fact.relation(), terms)]).unwrap(),
                vec![],
            ));
        }
        {
            // A lookup with an answer variable, prebound to a real value.
            let fact = db.fact(FactId::new(seed as usize % db.len()));
            let mut terms: Vec<Term> = fact.values().iter().cloned().map(Term::Const).collect();
            terms[0] = Term::var("x");
            queries.push((
                ConjunctiveQuery::new(
                    db.schema(),
                    vec![uocqa::query::Variable::new("x")],
                    vec![Atom::new(fact.relation(), terms)],
                ).unwrap(),
                vec![fact.values()[0].clone()],
            ));
        }
        queries.push((
            uocqa::query::parser::parse_query(db.schema(), "Ans() :- R(9, 9, 9, 9)").unwrap(),
            vec![],
        ));

        let evaluators: Vec<(QueryEvaluator, Vec<Value>)> = queries
            .into_iter()
            .map(|(q, c)| (QueryEvaluator::new(q), c))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A5A);
        let mut subsets: Vec<FactSet> = vec![db.all_facts()];
        for _ in 0..8 {
            subsets.push(FactSet::from_iter(
                db.len(),
                (0..db.len()).filter(|_| rng.random_bool(0.5)).map(FactId::new),
            ));
        }

        // Per-query: planned evaluation and compilation agree with the
        // unplanned baseline.
        for (evaluator, candidate) in &evaluators {
            for subset in &subsets {
                prop_assert_eq!(
                    evaluator.has_answer(&db, subset, candidate).unwrap(),
                    evaluator.has_answer_unplanned(&db, subset, candidate).unwrap()
                );
                let mut planned = evaluator.homomorphisms(&db, subset, None);
                let mut unplanned = evaluator.homomorphisms_unplanned(&db, subset, None);
                planned.sort_by(|a, b| a.bindings.cmp(&b.bindings).then(a.image.cmp(&b.image)));
                unplanned.sort_by(|a, b| a.bindings.cmp(&b.bindings).then(a.image.cmp(&b.image)));
                prop_assert_eq!(planned, unplanned);
            }
            let planned = CompiledLineage::compile(evaluator, &db, candidate).unwrap();
            let unplanned = CompiledLineage::compile_unplanned(evaluator, &db, candidate).unwrap();
            let witness_set = |lineage: &CompiledLineage| -> std::collections::BTreeSet<Vec<FactId>> {
                lineage.witnesses().iter().map(FactSet::to_vec).collect()
            };
            match (&planned, &unplanned) {
                (Some(p), Some(u)) => prop_assert_eq!(witness_set(p), witness_set(u)),
                _ => prop_assert!(planned.is_none() == unplanned.is_none()),
            }
        }

        // Whole-bank: the shared scan trie produces the same entries as
        // one unplanned pass per entry, under the default cap and under a
        // tiny cap that forces fallbacks.
        let refs: Vec<(&QueryEvaluator, &[Value])> =
            evaluators.iter().map(|(e, c)| (e, c.as_slice())).collect();
        for cap in [uocqa::query::lineage::DEFAULT_WITNESS_CAP, 1] {
            let shared = LineageBank::compile_with_cap(&db, &refs, cap).unwrap();
            let baseline = LineageBank::compile_unplanned_with_cap(&db, &refs, cap).unwrap();
            let mut scratch = uocqa::query::BankScratch::new();
            let mut shared_hits = vec![false; shared.len()];
            let mut baseline_hits = vec![false; baseline.len()];
            for i in 0..refs.len() {
                prop_assert_eq!(shared.is_fallback(i), baseline.is_fallback(i), "cap {}, entry {}", cap, i);
                prop_assert_eq!(
                    shared.query_witness_count(i),
                    baseline.query_witness_count(i),
                    "cap {}, entry {}", cap, i
                );
            }
            for subset in &subsets {
                shared.evaluate_into(subset, &mut scratch, &mut shared_hits);
                baseline.evaluate_into(subset, &mut scratch, &mut baseline_hits);
                prop_assert_eq!(&shared_hits, &baseline_hits, "cap {}", cap);
            }
        }
    }

    /// Batched estimates are **bit-identical before and after the
    /// planning refactor**: under a fixed seed, driving the shared
    /// sampler loop over the shared-trie-compiled bank returns exactly
    /// the estimates of the same loop over the unplanned per-entry bank
    /// (the pre-refactor compile path), across all six generator specs on
    /// random primary-key databases with overlapping-join banks.
    #[test]
    fn batched_estimates_are_bit_identical_before_and_after_planning(
        profile in prop::collection::vec(1usize..4, 1..4),
        seed in 0u64..1_000,
    ) {
        use uocqa::core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
        use uocqa::workload::queries::overlapping_join_bank;

        let (db, sigma) = block_database(&profile);
        let mut queries: Vec<ConjunctiveQuery> = overlapping_join_bank(&db, 2, 1, seed).unwrap();
        let fact = db.fact(FactId::new(seed as usize % db.len()));
        let terms: Vec<Term> = fact.values().iter().cloned().map(Term::Const).collect();
        queries.push(
            ConjunctiveQuery::boolean(db.schema(), vec![Atom::new(fact.relation(), terms)]).unwrap(),
        );
        let evaluators: Vec<QueryEvaluator> =
            queries.into_iter().map(QueryEvaluator::new).collect();
        let bank: Vec<BatchQuery<'_>> =
            evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();
        let params = ApproximationParams::new(0.2, 0.2)
            .unwrap()
            .with_mode(EstimatorMode::FixedSamples(96));
        for spec in all_specs() {
            let estimator = BatchEstimator::new(&db, &sigma, spec).unwrap();
            let planned_bank = estimator.compile_bank(&bank).unwrap();
            let unplanned_bank = estimator.compile_bank_unplanned(&bank).unwrap();
            let planned = estimator
                .estimate_batch_with_bank(&planned_bank, &bank, params, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            let unplanned = estimator
                .estimate_batch_with_bank(&unplanned_bank, &bank, params, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            prop_assert_eq!(&planned, &unplanned, "spec {}", spec.short_name());
            let routed = estimator
                .estimate_batch(&bank, params, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            prop_assert_eq!(&planned, &routed, "spec {}", spec.short_name());
        }
    }

    /// Cost-based join plans are **end-to-end bit-identical** to the
    /// structural baseline: per-query compiled-lineage antichains, bank
    /// witness sets after `minimal_antichain`, fallback flags under the
    /// default and a fallback-forcing cap, and same-seed batched
    /// estimates across all six generator specs all agree between
    /// evaluators planned with `QueryEvaluator::new` (structural order)
    /// and `QueryEvaluator::with_stats` (cost-based order) — the cost
    /// model reorders the enumeration, never the enumerated set.
    #[test]
    fn costed_plans_are_bit_identical_to_structural_plans_across_all_specs(
        profile in prop::collection::vec(1usize..4, 1..4),
        seed in 0u64..200,
    ) {
        use uocqa::core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
        use uocqa::query::LineageBank;
        use uocqa::workload::queries::overlapping_join_bank;

        let (db, sigma) = block_database(&profile);
        let mut queries: Vec<ConjunctiveQuery> = overlapping_join_bank(&db, 2, 1, seed).unwrap();
        let fact = db.fact(FactId::new(seed as usize % db.len()));
        let terms: Vec<Term> = fact.values().iter().cloned().map(Term::Const).collect();
        queries.push(
            ConjunctiveQuery::boolean(db.schema(), vec![Atom::new(fact.relation(), terms)]).unwrap(),
        );
        // A never-interned constant exercises the zero-cardinality cost
        // estimate without changing the (empty) witness set.
        queries.push(uocqa::query::parser::parse_query(db.schema(), "Ans() :- R(9, 9)").unwrap());

        let structural: Vec<QueryEvaluator> =
            queries.iter().cloned().map(QueryEvaluator::new).collect();
        let costed: Vec<QueryEvaluator> = queries
            .iter()
            .cloned()
            .map(|q| QueryEvaluator::with_stats(q, &db).unwrap())
            .collect();

        // Per-query compiled lineages hold the same minimal antichain.
        let witness_set = |lineage: &CompiledLineage| -> std::collections::BTreeSet<Vec<FactId>> {
            lineage.witnesses().iter().map(FactSet::to_vec).collect()
        };
        for (s, c) in structural.iter().zip(&costed) {
            let s_lineage = CompiledLineage::compile(s, &db, &[]).unwrap();
            let c_lineage = CompiledLineage::compile(c, &db, &[]).unwrap();
            match (&s_lineage, &c_lineage) {
                (Some(s), Some(c)) => prop_assert_eq!(witness_set(s), witness_set(c)),
                _ => prop_assert!(s_lineage.is_none() == c_lineage.is_none()),
            }
        }

        // Whole banks agree entry by entry — witness sets and fallback
        // flags — under the default cap and a cap of 1 that forces
        // fallback entries on every multi-witness query.
        let s_refs: Vec<(&QueryEvaluator, &[Value])> =
            structural.iter().map(|e| (e, &[] as &[Value])).collect();
        let c_refs: Vec<(&QueryEvaluator, &[Value])> =
            costed.iter().map(|e| (e, &[] as &[Value])).collect();
        for cap in [uocqa::query::lineage::DEFAULT_WITNESS_CAP, 1] {
            let s_bank = LineageBank::compile_with_cap(&db, &s_refs, cap).unwrap();
            let c_bank = LineageBank::compile_with_cap(&db, &c_refs, cap).unwrap();
            for entry in 0..s_refs.len() {
                prop_assert_eq!(
                    s_bank.is_fallback(entry),
                    c_bank.is_fallback(entry),
                    "cap {}, entry {}", cap, entry
                );
                prop_assert_eq!(
                    canonical_witnesses(&s_bank, entry, None),
                    canonical_witnesses(&c_bank, entry, None),
                    "cap {}, entry {}", cap, entry
                );
            }
        }

        // Same-seed batched estimates agree across all six generator
        // specs: the witness sets being equal, the shared sampler loop
        // consumes the RNG identically on both sides.
        let s_batch: Vec<BatchQuery<'_>> =
            structural.iter().map(|e| BatchQuery::new(e, &[])).collect();
        let c_batch: Vec<BatchQuery<'_>> =
            costed.iter().map(|e| BatchQuery::new(e, &[])).collect();
        let params = ApproximationParams::new(0.2, 0.2)
            .unwrap()
            .with_mode(EstimatorMode::FixedSamples(96));
        for spec in all_specs() {
            let estimator = BatchEstimator::new(&db, &sigma, spec).unwrap();
            let s_estimates = estimator
                .estimate_batch(&s_batch, params, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            let c_estimates = estimator
                .estimate_batch(&c_batch, params, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            prop_assert_eq!(&s_estimates, &c_estimates, "spec {}", spec.short_name());
        }
    }

    /// The incremental conflict index agrees with a from-scratch
    /// `ViolationSet::recompute` after **every** removal, on randomised
    /// multi-FD, non-key, cross-relation databases — the invariant that
    /// makes the O(ops)-per-step uniform-operations walk realise the same
    /// leaf distribution as the rescan walk.
    #[test]
    fn incremental_conflict_index_matches_recompute_after_every_removal(
        rows in prop::collection::vec((0u8..3, 0u8..3, 0u8..3, 0u8..2), 1..14),
        seed in 0u64..1_000,
    ) {
        let (db, sigma) = multi_fd_database(&rows);
        let index = ConflictIndex::build(&db, &sigma);
        let mut ops = LiveOps::new();
        ops.reset_full(&index);
        let mut subset = db.all_facts();
        let mut reference = ViolationSet::default();
        let mut recompute_scratch = Vec::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut remaining: Vec<FactId> = subset.to_vec();
        // Remove every fact (not only conflicting ones) in random order.
        while !remaining.is_empty() {
            let pick = rng.random_range(0..remaining.len());
            let fact = remaining.swap_remove(pick);
            ops.remove_fact(&index, fact);
            subset.remove(fact);
            reference.recompute(&db, &sigma, &subset, &mut recompute_scratch);
            let mut singles = ops.live_singles().to_vec();
            singles.sort();
            prop_assert_eq!(singles, reference.conflicting_facts());
            let mut pairs: Vec<(FactId, FactId)> = ops.live_pairs(&index).collect();
            pairs.sort();
            prop_assert_eq!(pairs, reference.conflicting_pairs());
            prop_assert_eq!(ops.live(), &subset);
            prop_assert_eq!(ops.live_violations(&index).count(), reference.len());
            prop_assert_eq!(ops.is_consistent(), reference.is_empty());
            // A fresh reset to the same subset reaches the same state.
            let mut fresh = LiveOps::new();
            fresh.reset_to(&index, &subset);
            prop_assert_eq!(fresh.single_count(), ops.single_count());
            prop_assert_eq!(fresh.pair_count(), ops.pair_count());
        }
        prop_assert!(ops.is_consistent());
        prop_assert_eq!(ops.live_violations(&index).count(), 0);
    }
}

/// `estimate_fixed_parallel` returns bit-identical results for a fixed
/// master seed regardless of the number of worker threads, and the
/// end-to-end `estimate_parallel` agrees with the exact probability.
#[test]
fn parallel_estimation_is_deterministic_across_thread_counts() {
    use uocqa::core::fpras::{ApproximationParams, EstimatorMode, OcqaEstimator};
    use uocqa::core::montecarlo::estimate_fixed_parallel;

    // Raw estimator: a plain Bernoulli experiment.
    let raw_baseline = estimate_fixed_parallel(2024, 100_003, 1_024, || {
        |rng: &mut StdRng| rng.random_bool(0.35)
    });
    assert_eq!(raw_baseline.samples, 100_003);

    // End-to-end: the uniform-repairs FPRAS over a seeded block workload.
    let (db, sigma) = uocqa::workload::BlockWorkload::uniform(8, 3, 5).generate();
    let (query, candidate) = uocqa::workload::queries::block_lookup_query(&db, 5).unwrap();
    let evaluator = QueryEvaluator::new(query);
    let estimator = OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_repairs()).unwrap();
    let params = ApproximationParams::new(0.05, 0.05)
        .unwrap()
        .with_mode(EstimatorMode::FixedSamples(60_000));
    let estimate_baseline = estimator
        .estimate_parallel(&evaluator, &candidate, params, 77)
        .unwrap();

    for threads in [1usize, 2, 3, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let raw = pool.install(|| {
            estimate_fixed_parallel(2024, 100_003, 1_024, || {
                |rng: &mut StdRng| rng.random_bool(0.35)
            })
        });
        assert_eq!(raw, raw_baseline, "raw outcome with {threads} threads");
        let estimate = pool
            .install(|| estimator.estimate_parallel(&evaluator, &candidate, params, 77))
            .unwrap();
        assert_eq!(
            estimate, estimate_baseline,
            "estimator outcome with {threads} threads"
        );
    }

    // Sanity: the parallel estimate is close to the exact probability.
    // Under uniform repairs each size-3 block keeps one of its facts or
    // none, uniformly over 4 outcomes, so the candidate fact survives with
    // probability exactly 1/4.
    let exact = 0.25;
    let relative_error = (estimate_baseline.value - exact).abs() / exact;
    assert!(
        relative_error < 0.1,
        "exact {exact}, parallel estimate {} (relative error {relative_error})",
        estimate_baseline.value
    );
}

/// The parallel *batched* estimator is bit-identical across thread
/// counts, and its per-query results equal the single-query parallel runs
/// under the same master seed.
#[test]
fn parallel_batched_estimation_is_deterministic_across_thread_counts() {
    use uocqa::core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
    use uocqa::workload::queries::fact_membership_query_bank;

    let (db, sigma) = uocqa::workload::BlockWorkload::uniform(8, 3, 5).generate();
    let queries = fact_membership_query_bank(&db, 4, 9).unwrap();
    let evaluators: Vec<QueryEvaluator> = queries.into_iter().map(QueryEvaluator::new).collect();
    let bank: Vec<BatchQuery<'_>> = evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();
    let estimator = BatchEstimator::new(&db, &sigma, GeneratorSpec::uniform_repairs()).unwrap();
    let params = ApproximationParams::new(0.05, 0.05)
        .unwrap()
        .with_mode(EstimatorMode::FixedSamples(30_000));
    let baseline = estimator
        .estimate_batch_parallel(&bank, params, 77)
        .unwrap();
    for threads in [1usize, 2, 3, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let outcome = pool
            .install(|| estimator.estimate_batch_parallel(&bank, params, 77))
            .unwrap();
        assert_eq!(outcome, baseline, "batched outcome with {threads} threads");
    }
    for (i, query) in bank.iter().enumerate() {
        let single = estimator
            .estimator()
            .estimate_parallel(query.evaluator, query.candidate, params, 77)
            .unwrap();
        assert_eq!(baseline[i], single, "query {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tripping the cancellation token at an arbitrary draw index never
    /// panics, marks every still-live query `Cancelled` at exactly that
    /// draw, and resuming with the remaining budget under the same seed
    /// reproduces the uninterrupted estimates bit-for-bit.
    #[test]
    fn cancellation_is_clean_and_resumable(cut in 1u64..400, seed in 0u64..16) {
        use uocqa::core::budget::{BudgetStatus, CancelToken, RunBudget};
        use uocqa::core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};

        let (db, sigma) = block_database(&[2, 3, 1]);
        let q = parse_membership(&db);
        let bank = [BatchQuery::new(&q, &[])];
        let params = ApproximationParams::new(0.25, 0.2)
            .unwrap()
            .with_mode(EstimatorMode::OptimalStopping { max_samples: 100_000 });
        let estimator =
            BatchEstimator::new(&db, &sigma, GeneratorSpec::uniform_repairs()).unwrap();
        let uninterrupted = estimator
            .estimate_stopping_batch(&bank, params, &mut StdRng::seed_from_u64(seed))
            .unwrap();

        let mut rng = StdRng::seed_from_u64(seed);
        let budget =
            RunBudget::unlimited().with_cancel_token(CancelToken::tripped_at_draw(cut));
        let partial = estimator
            .estimate_stopping_batch_with_budget(&bank, params, &budget, &mut rng)
            .unwrap();
        if cut < uninterrupted[0].samples {
            // The token fired while the query was still live.
            prop_assert_eq!(partial.total_draws, cut);
            prop_assert_eq!(partial.queries[0].status, BudgetStatus::Cancelled);
            prop_assert_eq!(partial.queries[0].samples, cut);
        } else {
            // The query retired before the token tripped: converged
            // values are kept, bit-identical to the uninterrupted run.
            prop_assert_eq!(partial.queries[0].status, BudgetStatus::Converged);
            prop_assert_eq!(partial.queries[0].samples, uninterrupted[0].samples);
        }
        let resumed = estimator
            .estimate_stopping_batch_resume(
                &bank,
                params,
                &RunBudget::unlimited(),
                &partial,
                &mut rng,
            )
            .unwrap();
        prop_assert_eq!(resumed.queries[0].status, BudgetStatus::Converged);
        prop_assert_eq!(resumed.queries[0].estimate, uninterrupted[0].value);
        prop_assert_eq!(resumed.queries[0].samples, uninterrupted[0].samples);
        prop_assert_eq!(resumed.queries[0].successes, uninterrupted[0].successes);
    }
}

/// A `Value`-level reference evaluator: naive backtracking over *decoded*
/// facts, comparing [`Value`]s directly — no dictionary, no symbols, no
/// index.  This is the pre-encoding semantics the symbol executor must
/// reproduce bit-for-bit; returns the answer set and the set of
/// sorted-deduplicated witness images.
#[allow(clippy::too_many_arguments)]
fn value_level_reference(
    db: &Database,
    subset: &FactSet,
    query: &ConjunctiveQuery,
) -> (
    std::collections::BTreeSet<Vec<Value>>,
    std::collections::BTreeSet<Vec<FactId>>,
) {
    use std::collections::{BTreeMap, BTreeSet};
    use uocqa::query::Variable;

    fn go(
        live: &[(FactId, Fact)],
        query: &ConjunctiveQuery,
        depth: usize,
        env: &mut BTreeMap<Variable, Value>,
        image: &mut Vec<FactId>,
        answers: &mut BTreeSet<Vec<Value>>,
        images: &mut BTreeSet<Vec<FactId>>,
    ) {
        let atoms = query.atoms();
        if depth == atoms.len() {
            answers.insert(query.answer_vars().iter().map(|v| env[v].clone()).collect());
            let mut img = image.clone();
            img.sort();
            img.dedup();
            images.insert(img);
            return;
        }
        let atom = &atoms[depth];
        for (id, fact) in live {
            if fact.relation() != atom.relation() {
                continue;
            }
            let mut added: Vec<Variable> = Vec::new();
            let mut ok = true;
            for (term, value) in atom.terms().iter().zip(fact.values()) {
                match term {
                    Term::Const(c) => {
                        if c != value {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(v) => match env.get(v) {
                        Some(bound) => {
                            if bound != value {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            env.insert(v.clone(), value.clone());
                            added.push(v.clone());
                        }
                    },
                }
            }
            if ok {
                image.push(*id);
                go(live, query, depth + 1, env, image, answers, images);
                image.pop();
            }
            for v in added {
                env.remove(&v);
            }
        }
    }

    let live: Vec<(FactId, Fact)> = db.iter().filter(|(id, _)| subset.contains(*id)).collect();
    let mut answers = std::collections::BTreeSet::new();
    let mut images = std::collections::BTreeSet::new();
    go(
        &live,
        query,
        0,
        &mut BTreeMap::new(),
        &mut Vec::new(),
        &mut answers,
        &mut images,
    );
    (answers, images)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Dictionary round-trip: decoding every fact of an interned database
    /// and re-inserting the decoded facts into a fresh database (fresh
    /// dictionary) reproduces the database fact-for-fact, id-for-id —
    /// `decode(encode(db)) == db`.
    #[test]
    fn interned_databases_round_trip_through_decode_and_reencode(
        rows in prop::collection::vec((0u8..3, 0u8..3, 0u8..3, 0u8..2), 1..14),
    ) {
        let (db, _) = multi_fd_database(&rows);
        let mut rebuilt = Database::with_schema(db.schema().clone());
        for (_, fact) in db.iter() {
            rebuilt.insert(fact).unwrap();
        }
        prop_assert_eq!(rebuilt.len(), db.len());
        for id in db.fact_ids() {
            prop_assert_eq!(rebuilt.fact(id), db.fact(id));
            prop_assert_eq!(rebuilt.fact_id(&db.fact(id)), Some(id));
        }
        // Interning assigns symbols by first occurrence on both sides, so
        // the rebuilt dictionary covers exactly the same constants.
        prop_assert_eq!(rebuilt.dictionary().len(), db.dictionary().len());
        prop_assert_eq!(rebuilt.active_domain().len(), db.active_domain().len());
    }

    /// The symbol executor agrees with the `Value`-level reference
    /// evaluator on entailment, answer sets and witness images over random
    /// subsets — the dictionary-encoding shell changes the representation,
    /// never the semantics.  Covers joins, constants (both interned and
    /// never-interned) and parameterised answers on both the planned and
    /// unplanned paths.
    #[test]
    fn symbol_evaluation_matches_the_value_level_reference(
        rows in prop::collection::vec((0u8..3, 0u8..3, 0u8..3, 0u8..2), 1..10),
        seed in 0u64..500,
    ) {
        let (db, _) = multi_fd_database(&rows);
        let texts = [
            "Ans() :- R(a, b, c, p)",
            "Ans(b) :- R(a, b, c, p)",
            "Ans() :- R(a, b, c, p), S(a2, b, p2)",
            "Ans(a) :- R(a, 0, c, p)",
            "Ans() :- R(9, 9, 9, 9)",
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        for text in texts {
            let query = uocqa::query::parser::parse_query(db.schema(), text).unwrap();
            let evaluator = QueryEvaluator::new(query.clone());
            for _ in 0..4 {
                let subset = FactSet::from_iter(
                    db.len(),
                    (0..db.len()).filter(|_| rng.random_bool(0.7)).map(FactId::new),
                );
                let (ref_answers, ref_images) = value_level_reference(&db, &subset, &query);
                prop_assert_eq!(
                    evaluator.entails(&db, &subset),
                    !ref_images.is_empty(),
                    "{}", text
                );
                prop_assert_eq!(
                    evaluator.entails_unplanned(&db, &subset),
                    !ref_images.is_empty(),
                    "{}", text
                );
                prop_assert_eq!(evaluator.answers(&db, &subset), ref_answers, "{}", text);
                let planned: std::collections::BTreeSet<Vec<FactId>> = evaluator
                    .homomorphisms(&db, &subset, None)
                    .into_iter()
                    .map(|h| h.image)
                    .collect();
                prop_assert_eq!(&planned, &ref_images, "{}", text);
                let unplanned: std::collections::BTreeSet<Vec<FactId>> = evaluator
                    .homomorphisms_unplanned(&db, &subset, None)
                    .into_iter()
                    .map(|h| h.image)
                    .collect();
                prop_assert_eq!(&unplanned, &ref_images, "{}", text);
            }
        }
    }

    /// A database bulk-loaded with `Database::extend` is bit-identical to
    /// the same facts inserted one by one (same ids, rows and symbols),
    /// and under a fixed seed the batched estimates drawn over the two are
    /// bit-identical across **all six generator specs** — bulk loading and
    /// interning change the cost, never a single estimate.
    #[test]
    fn bulk_extend_is_bit_identical_to_per_fact_insert_across_all_specs(
        profile in prop::collection::vec(1usize..4, 1..4),
        seed in 0u64..200,
    ) {
        use uocqa::core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};

        // A primary-key database: the one constraint class every generator
        // spec supports (Theorem 5.1 restricts uniform repairs/sequences
        // to primary keys).
        let (db, sigma) = block_database(&profile);
        let facts: Vec<Fact> = db.iter().map(|(_, fact)| fact).collect();
        let mut one_by_one = Database::with_schema(db.schema().clone());
        for fact in facts.clone() {
            one_by_one.insert(fact).unwrap();
        }
        let mut bulk = Database::with_schema(db.schema().clone());
        bulk.extend(facts).unwrap();
        prop_assert_eq!(one_by_one.len(), bulk.len());
        for id in one_by_one.fact_ids() {
            prop_assert_eq!(one_by_one.relation_of(id), bulk.relation_of(id));
            prop_assert_eq!(one_by_one.row_of(id), bulk.row_of(id));
            prop_assert_eq!(one_by_one.fact(id), bulk.fact(id));
        }
        prop_assert_eq!(one_by_one.dictionary().len(), bulk.dictionary().len());

        let texts = [
            "Ans() :- R(0, v)",
            "Ans() :- R(x, y), R(z, y)",
        ];
        let evaluators: Vec<QueryEvaluator> = texts
            .iter()
            .map(|t| {
                QueryEvaluator::new(
                    uocqa::query::parser::parse_query(one_by_one.schema(), t).unwrap(),
                )
            })
            .collect();
        let bank: Vec<BatchQuery<'_>> =
            evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();
        let params = ApproximationParams::new(0.2, 0.2)
            .unwrap()
            .with_mode(EstimatorMode::FixedSamples(64));
        for spec in all_specs() {
            let a = BatchEstimator::new(&one_by_one, &sigma, spec)
                .unwrap()
                .estimate_batch(&bank, params, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            let b = BatchEstimator::new(&bulk, &sigma, spec)
                .unwrap()
                .estimate_batch(&bank, params, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            prop_assert_eq!(&a, &b, "spec {}", spec.short_name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interleaved `insert` / `delete` / `extend` streams keep the
    /// delta-maintained structures equal to from-scratch rebuilds after
    /// **every** step: the in-place patched relation index against
    /// `RelationIndex::build`, and the changelog-replayed conflict index
    /// against `ConflictIndex::build` — the update-path oracle of the
    /// delta maintenance layer, on multi-FD cross-relation databases.
    #[test]
    fn delta_maintained_indexes_match_rebuilds_after_every_interleaved_step(
        rows in prop::collection::vec((0u8..3, 0u8..3, 0u8..3, 0u8..2), 1..12),
        steps in prop::collection::vec((0u8..4, 0u8..3, 0u8..3, 0u8..3), 1..10),
        seed in 0u64..1_000,
    ) {
        use uocqa::db::RelationIndex;

        let (mut db, sigma) = multi_fd_database(&rows);
        // Materialise the cached index so every mutation patches it in
        // place instead of a later access rebuilding it wholesale.
        let _ = db.relation_index();
        let mut conflict = ConflictIndex::build(&db, &sigma);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut payload = rows.len() as i64;
        let r = db.schema().relation_id("R").unwrap();
        let s = db.schema().relation_id("S").unwrap();
        let fresh_fact = |payload: &mut i64, a: u8, b: u8, c: u8| {
            let (a, b, c) = (
                Value::int(i64::from(a % 3)),
                Value::int(i64::from(b % 3)),
                Value::int(i64::from(c % 3)),
            );
            let fact = if *payload % 2 == 0 {
                Fact::new(r, vec![a, b, c, Value::int(*payload)])
            } else {
                Fact::new(s, vec![a, b, Value::int(*payload)])
            };
            *payload += 1;
            fact
        };
        for (op, a, b, c) in steps {
            match op {
                0 => {
                    db.insert(fresh_fact(&mut payload, a, b, c)).unwrap();
                }
                1 => {
                    let live: Vec<FactId> = db.fact_ids().collect();
                    if !live.is_empty() {
                        db.delete(live[rng.random_range(0..live.len())]).unwrap();
                    }
                }
                2 => {
                    let batch = vec![
                        fresh_fact(&mut payload, a, b, c),
                        fresh_fact(&mut payload, b, c, a),
                    ];
                    db.extend(batch).unwrap();
                }
                _ => {
                    // Delete-then-reinsert the same fact within one step:
                    // the changelog window sees the id both deleted and
                    // (re-)inserted.
                    let live: Vec<FactId> = db.fact_ids().collect();
                    if !live.is_empty() {
                        let victim = live[rng.random_range(0..live.len())];
                        let fact = db.fact(victim);
                        db.delete(victim).unwrap();
                        db.insert(fact).unwrap();
                    }
                }
            }
            conflict.refresh(&db, &sigma);
            prop_assert_eq!(&conflict, &ConflictIndex::build(&db, &sigma));
            let rebuilt = RelationIndex::build(&db);
            let maintained = db.relation_index();
            prop_assert_eq!(maintained, &rebuilt);
            // The cost model reads the maintained index through these
            // accessors, so assert the planner-facing statistics
            // explicitly: a stale cardinality, distinct count or posting
            // length would bias every cost estimate.
            for relation in [r, s] {
                prop_assert_eq!(
                    maintained.relation_cardinality(relation),
                    rebuilt.relation_cardinality(relation)
                );
                for position in 0..db.schema().arity(relation) {
                    prop_assert_eq!(
                        maintained.distinct_count(relation, position),
                        rebuilt.distinct_count(relation, position)
                    );
                    for (sym, _) in db.dictionary().iter() {
                        prop_assert_eq!(
                            maintained.selectivity(relation, position, sym),
                            rebuilt.selectivity(relation, position, sym)
                        );
                    }
                }
            }
        }
    }

    /// After a random mutation window, a `LineageBank` brought up to date
    /// with `refresh` yields **bit-identical** batched estimates to a bank
    /// recompiled from scratch, under the same seed, across all six
    /// generator specs.
    #[test]
    fn refreshed_bank_estimates_match_recompilation_across_all_specs(
        profile in prop::collection::vec(1usize..4, 1..4),
        inserts in prop::collection::vec((0u8..6, 0u8..6), 1..4),
        seed in 0u64..200,
    ) {
        use uocqa::core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
        use uocqa::query::{BankQueryRef, LineageBank};

        let (mut db, sigma) = block_database(&profile);
        let texts = [
            "Ans() :- R(0, v)",
            "Ans() :- R(x, y), R(z, y)",
        ];
        let evaluators: Vec<QueryEvaluator> = texts
            .iter()
            .map(|t| {
                QueryEvaluator::new(
                    uocqa::query::parser::parse_query(db.schema(), t).unwrap(),
                )
            })
            .collect();
        let bank_refs: Vec<BankQueryRef<'_>> =
            evaluators.iter().map(|e| (e, &[] as &[Value])).collect();
        let mut bank = LineageBank::compile(&db, &bank_refs).unwrap();

        // The mutation window: fresh blocks inserted, one live fact
        // deleted.  Offsetting `A` by 100 + the insertion index keeps the
        // new facts distinct from the block profile and each other.
        let mut rng = StdRng::seed_from_u64(seed);
        for (i, (a, b)) in inserts.iter().enumerate() {
            db.insert_values(
                "R",
                [
                    Value::int(100 + i64::from(*a) + 10 * i as i64),
                    Value::int(i64::from(*b)),
                ],
            )
            .unwrap();
        }
        let live: Vec<FactId> = db.fact_ids().collect();
        db.delete(live[rng.random_range(0..live.len())]).unwrap();

        bank.refresh(&db, &bank_refs).unwrap();
        let recompiled = LineageBank::compile(&db, &bank_refs).unwrap();
        prop_assert_eq!(bank.witness_count(), recompiled.witness_count());

        let batch: Vec<BatchQuery<'_>> =
            evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();
        let params = ApproximationParams::new(0.2, 0.2)
            .unwrap()
            .with_mode(EstimatorMode::FixedSamples(64));
        for spec in all_specs() {
            let estimator = BatchEstimator::new(&db, &sigma, spec).unwrap();
            let refreshed = estimator
                .estimate_batch_with_bank(&bank, &batch, params, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            let fresh = estimator
                .estimate_batch_with_bank(&recompiled, &batch, params, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            prop_assert_eq!(&refreshed, &fresh, "spec {}", spec.short_name());
        }
    }

    /// `AchievedBound::at` never reports a NaN, and guards its degenerate
    /// corners: the additive inversion is `+∞` exactly when no draws
    /// happened or `δ ∉ (0, 1)` (including NaN and infinite `δ`), and the
    /// relative inversion is `None` exactly when at most one success was
    /// observed or `δ` is degenerate.
    #[test]
    fn achieved_bounds_guard_their_degenerate_corners(
        samples in 0u64..100_000,
        successes in 0u64..100_000,
        delta_bits in 0u64..u64::MAX,
    ) {
        use uocqa::core::budget::AchievedBound;

        // Reinterpreting raw bits covers the whole f64 surface: NaNs,
        // infinities, subnormals, negatives and ordinary values alike.
        let delta = f64::from_bits(delta_bits);
        let successes = successes.min(samples);
        let bound = AchievedBound::at(samples, successes, delta);
        prop_assert!(!bound.additive_epsilon.is_nan());
        let degenerate_delta = !(delta > 0.0 && delta < 1.0);
        if samples == 0 || degenerate_delta {
            prop_assert_eq!(bound.additive_epsilon, f64::INFINITY);
        } else {
            // A subnormal δ can overflow `2/δ` to +∞, which honestly
            // reports an infinite (useless) bound — never a NaN and never
            // a non-positive one.
            prop_assert!(bound.additive_epsilon > 0.0);
        }
        match bound.relative_epsilon {
            None => prop_assert!(successes <= 1 || degenerate_delta),
            Some(eps) => {
                prop_assert!(successes > 1 && !degenerate_delta);
                prop_assert!(!eps.is_nan());
                prop_assert!(eps > 0.0);
            }
        }
    }
}
