//! End-to-end integration tests: workloads → samplers → FPRAS drivers,
//! validated against the exact solvers and the theorems' guarantees.

use rand::rngs::StdRng;
use rand::SeedableRng;

use uocqa::core::exact::ExactSolver;
use uocqa::core::fpras::{ApproximationParams, EstimatorMode, OcqaEstimator};
use uocqa::core::CoreError;
use uocqa::db::ViolationSet;
use uocqa::query::QueryEvaluator;
use uocqa::repair::GeneratorSpec;
use uocqa::workload::queries::{block_join_query, block_lookup_query, fact_membership_query};
use uocqa::workload::{BlockWorkload, FdWorkload, MultiKeyWorkload};

#[test]
fn all_supported_fpras_combinations_agree_with_exact_on_a_small_instance() {
    // A block workload small enough for exact enumeration (3 blocks of 3).
    let (db, sigma) = BlockWorkload::uniform(3, 3, 5).generate();
    let (query, candidate) = block_lookup_query(&db, 1).unwrap();
    let evaluator = QueryEvaluator::new(query);
    let solver = ExactSolver::new(&db, &sigma);
    let params = ApproximationParams::new(0.05, 0.05).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    for spec in [
        GeneratorSpec::uniform_repairs(),
        GeneratorSpec::uniform_repairs().with_singleton_only(),
        GeneratorSpec::uniform_sequences(),
        GeneratorSpec::uniform_sequences().with_singleton_only(),
        GeneratorSpec::uniform_operations(),
        GeneratorSpec::uniform_operations().with_singleton_only(),
    ] {
        let exact = solver
            .answer_probability(spec, &evaluator, &candidate)
            .unwrap()
            .to_f64();
        let estimator = OcqaEstimator::new(&db, &sigma, spec).unwrap();
        let estimate = estimator
            .estimate(&evaluator, &candidate, params, &mut rng)
            .unwrap();
        assert!(!estimate.truncated);
        let error = (estimate.value - exact).abs() / exact;
        assert!(
            error < 0.12,
            "{}: exact {exact:.4}, estimate {:.4}",
            spec.short_name(),
            estimate.value
        );
    }
}

#[test]
fn batched_estimates_match_exact_within_additive_epsilon() {
    // Accuracy of the batched FPRAS against exact repair counting: with
    // the paper's additive (ε, δ) sample-size bound (Hoeffding,
    // ln(2/δ)/(2ε²) samples) every per-query estimate of the bank must be
    // within ε of the exact probability.
    use uocqa::core::fpras::{BatchEstimator, BatchQuery};
    use uocqa::workload::queries::fact_membership_query_bank;

    let epsilon = 0.1;
    let params = ApproximationParams::new(epsilon, 0.05)
        .unwrap()
        .with_mode(EstimatorMode::FixedAdditive);

    // A primary-key block workload: every generator is supported.
    let (db, sigma) = BlockWorkload::uniform(3, 3, 5).generate();
    let queries = fact_membership_query_bank(&db, 4, 2).unwrap();
    let evaluators: Vec<QueryEvaluator> = queries.into_iter().map(QueryEvaluator::new).collect();
    let bank: Vec<BatchQuery<'_>> = evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();
    let refs: Vec<(&QueryEvaluator, &[uocqa::db::Value])> =
        evaluators.iter().map(|e| (e, &[] as &[_])).collect();
    let solver = ExactSolver::new(&db, &sigma);
    for spec in [
        GeneratorSpec::uniform_repairs(),
        GeneratorSpec::uniform_repairs().with_singleton_only(),
        GeneratorSpec::uniform_sequences(),
        GeneratorSpec::uniform_sequences().with_singleton_only(),
        GeneratorSpec::uniform_operations(),
        GeneratorSpec::uniform_operations().with_singleton_only(),
    ] {
        let exact = solver.answer_probabilities(spec, &refs).unwrap();
        let estimator = BatchEstimator::new(&db, &sigma, spec).unwrap();
        let estimates = estimator
            .estimate_batch(&bank, params, &mut StdRng::seed_from_u64(31))
            .unwrap();
        for (i, (estimate, exact)) in estimates.iter().zip(&exact).enumerate() {
            assert!(
                (estimate.value - exact.to_f64()).abs() <= epsilon,
                "{}, query {i}: exact {:.4}, estimate {:.4}",
                spec.short_name(),
                exact.to_f64(),
                estimate.value
            );
        }
    }

    // A non-key FD workload: the singleton-operations generator.
    let (db, sigma) = FdWorkload::new(8, 3, 2, 3).generate();
    let queries = fact_membership_query_bank(&db, 4, 2).unwrap();
    let evaluators: Vec<QueryEvaluator> = queries.into_iter().map(QueryEvaluator::new).collect();
    let bank: Vec<BatchQuery<'_>> = evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();
    let refs: Vec<(&QueryEvaluator, &[uocqa::db::Value])> =
        evaluators.iter().map(|e| (e, &[] as &[_])).collect();
    let spec = GeneratorSpec::uniform_operations().with_singleton_only();
    let exact = ExactSolver::new(&db, &sigma)
        .answer_probabilities(spec, &refs)
        .unwrap();
    let estimates = BatchEstimator::new(&db, &sigma, spec)
        .unwrap()
        .estimate_batch(&bank, params, &mut StdRng::seed_from_u64(8))
        .unwrap();
    for (i, (estimate, exact)) in estimates.iter().zip(&exact).enumerate() {
        assert!(
            (estimate.value - exact.to_f64()).abs() <= epsilon,
            "FD workload, query {i}: exact {:.4}, estimate {:.4}",
            exact.to_f64(),
            estimate.value
        );
    }
}

#[test]
fn multi_atom_queries_are_estimated_correctly() {
    let (db, sigma) = BlockWorkload::uniform(3, 2, 9).generate();
    let query = block_join_query(&db, 4).unwrap();
    let evaluator = QueryEvaluator::new(query);
    let solver = ExactSolver::new(&db, &sigma);
    let exact = solver
        .answer_probability(GeneratorSpec::uniform_repairs(), &evaluator, &[])
        .unwrap()
        .to_f64();
    let estimator = OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_repairs()).unwrap();
    let params = ApproximationParams::new(0.05, 0.05).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let estimate = estimator
        .estimate(&evaluator, &[], params, &mut rng)
        .unwrap();
    if exact > 0.0 {
        assert!((estimate.value - exact).abs() / exact < 0.12);
    } else {
        assert_eq!(estimate.successes, 0);
    }
}

#[test]
fn keys_beyond_primary_keys_route_to_uniform_operations_only() {
    let (db, sigma) = MultiKeyWorkload::new(30, 6, 2).generate();
    assert!(sigma.is_keys(db.schema()) && !sigma.is_primary_keys(db.schema()));
    for unsupported in [
        GeneratorSpec::uniform_repairs(),
        GeneratorSpec::uniform_sequences(),
    ] {
        assert!(matches!(
            OcqaEstimator::new(&db, &sigma, unsupported).err(),
            Some(CoreError::Unsupported { .. })
        ));
    }
    let estimator = OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_operations()).unwrap();
    let query = fact_membership_query(&db, 7).unwrap();
    let evaluator = QueryEvaluator::new(query);
    let params = ApproximationParams::new(0.2, 0.1).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let estimate = estimator
        .estimate(&evaluator, &[], params, &mut rng)
        .unwrap();
    assert!(estimate.value > 0.0 && estimate.value <= 1.0);
}

#[test]
fn fd_instances_require_singleton_operations() {
    let (db, sigma) = FdWorkload::new(40, 6, 3, 13).generate();
    assert!(!sigma.is_keys(db.schema()));
    assert!(matches!(
        OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_operations()).err(),
        Some(CoreError::Unsupported { .. })
    ));
    let estimator = OcqaEstimator::new(
        &db,
        &sigma,
        GeneratorSpec::uniform_operations().with_singleton_only(),
    )
    .unwrap();
    let query = fact_membership_query(&db, 3).unwrap();
    let evaluator = QueryEvaluator::new(query);
    let params = ApproximationParams::new(0.15, 0.1).unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let estimate = estimator
        .estimate(&evaluator, &[], params, &mut rng)
        .unwrap();
    assert!(estimate.value > 0.0 && estimate.value <= 1.0);
    // Theorem 7.5 / Lemma D.8: the (non-zero) value respects the bound.
    let bound = estimator.theoretical_lower_bound(&evaluator).to_f64();
    assert!(estimate.value >= bound);
}

#[test]
fn fixed_sample_modes_scale_to_larger_workloads() {
    let (db, sigma) = BlockWorkload::uniform(100, 5, 21).generate();
    assert_eq!(db.len(), 500);
    let (query, candidate) = block_lookup_query(&db, 2).unwrap();
    let evaluator = QueryEvaluator::new(query);
    let estimator = OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_repairs()).unwrap();
    let params = ApproximationParams::new(0.1, 0.1)
        .unwrap()
        .with_mode(EstimatorMode::FixedSamples(4_000));
    let mut rng = StdRng::seed_from_u64(23);
    let estimate = estimator
        .estimate(&evaluator, &candidate, params, &mut rng)
        .unwrap();
    // Exact value for a block of size 5 under uniform repairs is 1/6.
    assert!((estimate.value - 1.0 / 6.0).abs() < 0.03);
    assert_eq!(estimate.samples, 4_000);
}

#[test]
fn sampled_repairs_from_every_sampler_are_consistent() {
    use uocqa::core::sample_operations::OperationWalkSampler;
    use uocqa::core::sample_repairs::RepairSampler;
    use uocqa::core::sample_sequences::SequenceSampler;

    let (db, sigma) = BlockWorkload::uniform(10, 4, 31).generate();
    let mut rng = StdRng::seed_from_u64(5);
    let repair_sampler = RepairSampler::new(&db, &sigma).unwrap();
    let sequence_sampler = SequenceSampler::new(&db, &sigma).unwrap();
    let walk = OperationWalkSampler::new(&db, &sigma);
    for _ in 0..25 {
        for repair in [
            repair_sampler.sample(&mut rng),
            repair_sampler.sample_singleton(&mut rng),
            sequence_sampler.sample_result(&mut rng),
            sequence_sampler.sample_result_singleton(&mut rng),
            walk.sample_result(&mut rng),
        ] {
            assert!(ViolationSet::compute(&db, &sigma, &repair).is_empty());
        }
    }
}
