//! Chaos tests for the sliding-window pipeline (`--features chaos`):
//! random streams interleaved with budget exhaustion and cancellation
//! never panic, and a cancelled tick resumed with the same RNG
//! reproduces the uninterrupted stream bit-for-bit.

#![cfg(feature = "chaos")]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use uocqa::core::chaos::FaultPlan;
use uocqa::core::fpras::{ApproximationParams, EstimatorMode};
use uocqa::core::{
    BudgetStatus, CancelToken, RunBudget, TickOutcome, WindowSpec, WindowedEstimator,
};
use uocqa::db::{Database, Value};
use uocqa::query::QueryEvaluator;
use uocqa::repair::GeneratorSpec;
use uocqa::workload::StreamWorkload;

mod common;

fn stream_queries(db: &Database) -> Vec<(QueryEvaluator, Vec<Value>)> {
    ["Ans() :- R(0, 0)", "Ans() :- R(0, x)", "Ans() :- R(1, x)"]
        .iter()
        .map(|t| {
            let q = uocqa::query::parser::parse_query(db.schema(), t).unwrap();
            (QueryEvaluator::new(q), Vec::new())
        })
        .collect()
}

/// A stream query can drop to zero probability (its block may slide out
/// of the window entirely), in which case the stopping rule runs to the
/// cutoff and reports `BudgetExhausted` — a terminal state the twins
/// must agree on bit-for-bit just like convergence, so the cutoff is
/// kept small.
fn params() -> ApproximationParams {
    ApproximationParams::new(0.3, 0.2)
        .unwrap()
        .with_mode(EstimatorMode::OptimalStopping {
            max_samples: 20_000,
        })
}

fn windowed(seed: u64, facts: usize, window: WindowSpec) -> (WindowedEstimator, StreamWorkload) {
    let mut workload = StreamWorkload::new(3, 2, 1, 0.6, seed);
    let (db, sigma) = workload.initial(facts);
    let queries = stream_queries(&db);
    let w = WindowedEstimator::new(
        db,
        sigma,
        GeneratorSpec::uniform_operations().with_singleton_only(),
        window,
        queries,
    )
    .unwrap();
    (w, workload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A stream whose every estimation pass is first cut by a
    /// fault-plan-chosen interruption (draw cap or cancellation,
    /// alternating by plan word) and then resumed with the **same** RNG
    /// reproduces the uninterrupted stream bit-for-bit, tick for tick —
    /// and never panics along the way.
    #[test]
    fn interrupted_stream_resumes_bit_for_bit(
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        facts in 4usize..10,
        window_kind in 0usize..3,
    ) {
        let window = match window_kind {
            0 => WindowSpec::Unbounded,
            1 => WindowSpec::Count(facts),
            _ => WindowSpec::Ticks(2),
        };
        let (mut clean, mut clean_stream) = windowed(seed, facts, window);
        let (mut chaotic, mut chaotic_stream) = windowed(seed, facts, window);
        let mut plan = FaultPlan::new(fault_seed);

        for tick in 1..=3u64 {
            let (inserts, retracts) = clean_stream.tick(clean.db());
            let clean_report = clean.tick(inserts, &retracts).unwrap();
            let (inserts, retracts) = chaotic_stream.tick(chaotic.db());
            let chaotic_report = chaotic.tick(inserts, &retracts).unwrap();
            prop_assert_eq!(&clean_report, &chaotic_report, "tick {} diverged", tick);

            let rng_seed = seed ^ tick;
            let clean_pass = clean
                .estimate(params(), &RunBudget::unlimited(), &mut StdRng::seed_from_u64(rng_seed))
                .unwrap();

            // The chaotic twin runs the same pass through one RNG,
            // interrupted a fault-plan-chosen number of times before
            // being allowed to finish.
            let mut rng = StdRng::seed_from_u64(rng_seed);
            let mut final_pass: Option<TickOutcome> = None;
            for _ in 0..1 + plan.next_word() % 2 {
                let cut = plan.truncation_point(40);
                let budget = if plan.next_word().is_multiple_of(2) {
                    RunBudget::unlimited().with_max_draws(cut)
                } else {
                    RunBudget::unlimited()
                        .with_cancel_token(CancelToken::tripped_at_draw(cut))
                };
                let partial = chaotic.estimate(params(), &budget, &mut rng).unwrap();
                if !partial.outcome.queries.iter().any(|q| q.status == BudgetStatus::Cancelled)
                    && partial.outcome.total_draws >= clean_pass.outcome.total_draws
                {
                    // The cut landed past the clean pass's terminal
                    // draw: the pass already finished.
                    final_pass = Some(partial);
                    break;
                }
                prop_assert!(chaotic.has_pending());
            }
            let final_pass = match final_pass {
                Some(done) => done,
                None => chaotic
                    .estimate(params(), &RunBudget::unlimited(), &mut rng)
                    .unwrap(),
            };
            prop_assert_eq!(
                &final_pass.outcome,
                &clean_pass.outcome,
                "tick {}: concatenated interrupted passes != uninterrupted pass",
                tick
            );
            // Under an unlimited final budget, cancellation faults never
            // leak into the terminal statuses.
            prop_assert!(final_pass
                .outcome
                .queries
                .iter()
                .all(|q| q.status != BudgetStatus::Cancelled));
        }
    }

    /// Ticks interleaved with arbitrary interruptions — including
    /// estimation passes abandoned mid-stream when the next tick
    /// mutates the window — never panic, and the pipeline always
    /// recovers to a converged pass under an unlimited budget.
    #[test]
    fn abandoned_passes_never_wedge_the_stream(
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        facts in 4usize..10,
    ) {
        let (mut w, mut stream) = windowed(seed, facts, WindowSpec::Count(facts));
        let mut plan = FaultPlan::new(fault_seed);
        for tick in 1..=4u64 {
            let (inserts, retracts) = stream.tick(w.db());
            w.tick(inserts, &retracts).unwrap();
            // Leave a truncated pass dangling on some ticks: the next
            // mutating tick must drop it rather than resume draws from a
            // stale window.
            if plan.next_word().is_multiple_of(2) {
                let cut = plan.truncation_point(10);
                let budget =
                    RunBudget::unlimited().with_cancel_token(CancelToken::tripped_at_draw(cut));
                let _ = w
                    .estimate(params(), &budget, &mut StdRng::seed_from_u64(seed ^ tick))
                    .unwrap();
            }
        }
        let done = w
            .estimate(
                params(),
                &RunBudget::unlimited(),
                &mut StdRng::seed_from_u64(seed),
            )
            .unwrap();
        // An unlimited pass always reaches a terminal state — converged,
        // or the stopping-rule cutoff for zero-probability entries —
        // with no cancellation fault leaking through.
        prop_assert!(done
            .outcome
            .queries
            .iter()
            .all(|q| q.status != BudgetStatus::Cancelled));
        // The terminal state is stable: estimating again (reuse for a
        // converged pass, resume-at-cutoff otherwise) reproduces the
        // same per-query outcomes without another pass over the stream.
        let again = w
            .estimate(
                params(),
                &RunBudget::unlimited(),
                &mut StdRng::seed_from_u64(seed ^ 1),
            )
            .unwrap();
        prop_assert_eq!(&again.outcome.queries, &done.outcome.queries);
        if done.outcome.converged() {
            prop_assert_eq!(again.tick_draws, 0, "a converged pass is reused verbatim");
        }
    }
}
