//! Property tests for the sliding-window continuous CQA pipeline
//! (`ucqa_core::stream`): after **every** tick of a random stream the
//! windowed state must be indistinguishable from a from-scratch rebuild
//! of the live window, and the converged-draw-reuse path must return
//! byte-identical outcomes at zero draws for untouched entries while
//! changed entries re-converge to the exact answer probabilities.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use uocqa::core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
use uocqa::core::{
    BudgetStatus, ExactSolver, RunBudget, TickOutcome, WindowSpec, WindowedEstimator,
};
use uocqa::db::{ConflictIndex, Database, Fact, FdSet, Value};
use uocqa::query::{LineageBank, QueryEvaluator};
use uocqa::repair::{GeneratorSpec, UniformSemantics};
use uocqa::workload::StreamWorkload;

mod common;
use common::{
    all_specs, assert_bank_matches_scratch, assert_conflict_matches_scratch, scratch_rebuild,
};

/// The query bank every stream test runs: a membership query and two
/// block queries over the `StreamWorkload` schema `R(K, V)`.
const QUERY_TEXTS: [&str; 3] = ["Ans() :- R(0, 0)", "Ans() :- R(0, x)", "Ans() :- R(1, x)"];

fn stream_queries(db: &Database) -> Vec<(QueryEvaluator, Vec<Value>)> {
    QUERY_TEXTS
        .iter()
        .map(|t| {
            let q = uocqa::query::parser::parse_query(db.schema(), t).unwrap();
            (QueryEvaluator::new(q), Vec::new())
        })
        .collect()
}

fn batch_refs(queries: &[(QueryEvaluator, Vec<Value>)]) -> Vec<BatchQuery<'_>> {
    queries
        .iter()
        .map(|(e, c)| BatchQuery::new(e, c.as_slice()))
        .collect()
}

/// Builds the estimator of the windowed state exactly as the windowed
/// pipeline does: the maintained conflict index drives the
/// uniform-operations walk, the other samplers derive their structure
/// from the database.
fn windowed_batch_estimator<'a>(
    w: &'a WindowedEstimator,
    spec: GeneratorSpec,
) -> BatchEstimator<'a> {
    if spec.semantics == UniformSemantics::Operations {
        BatchEstimator::with_conflict_index(w.db(), w.sigma(), spec, w.conflict_index().clone())
            .unwrap()
    } else {
        BatchEstimator::new(w.db(), w.sigma(), spec).unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Satellite 1: after every tick of a random insert/retract/expiry
    /// stream, the windowed state is indistinguishable from a rebuild:
    /// the delta-maintained conflict index and bank equal (under the
    /// live-id remap) structures built from scratch over a fresh
    /// database holding exactly the live window, and same-seed
    /// estimates over both states are bit-identical — for all six
    /// generator specs.
    #[test]
    fn windowed_state_matches_scratch_after_every_tick(
        seed in 0u64..1_000_000,
        est_seed in 0u64..1_000_000,
        facts in 4usize..10,
        ticks in 1usize..4,
        window_kind in 0usize..3,
    ) {
        for spec in all_specs() {
            // Clone the generator so every spec sees the identical stream.
            let mut workload = StreamWorkload::new(3, 2, 1, 0.6, seed);
            let (db, sigma) = workload.initial(facts);
            let window = match window_kind {
                0 => WindowSpec::Unbounded,
                1 => WindowSpec::Count(facts),
                _ => WindowSpec::Ticks(2),
            };
            let queries = stream_queries(&db);
            let mut w = WindowedEstimator::new(db, sigma.clone(), spec, window, queries).unwrap();

            for tick in 1..=ticks {
                let (inserts, retracts) = workload.tick(w.db());
                w.tick(inserts, &retracts).unwrap();
                let context = format!(
                    "spec {} seed {seed} tick {tick} window {:?}",
                    spec.short_name(),
                    window
                );

                // Ground truth: a fresh database holding exactly the
                // live window, with every derived structure built from
                // scratch.
                let (scratch_db, map) = scratch_rebuild(w.db());
                prop_assert_eq!(scratch_db.live_count(), w.db().live_count());
                let scratch_conflict = ConflictIndex::build(&scratch_db, &sigma);
                assert_conflict_matches_scratch(
                    w.conflict_index(),
                    &scratch_conflict,
                    &map,
                    &context,
                );

                let scratch_queries = stream_queries(&scratch_db);
                let scratch_refs: Vec<_> = scratch_queries
                    .iter()
                    .map(|(e, c)| (e, c.as_slice()))
                    .collect();
                let scratch_bank = LineageBank::compile(&scratch_db, &scratch_refs).unwrap();
                assert_bank_matches_scratch(w.bank(), &scratch_bank, &map, &context);

                // Same-seed estimates over the maintained state and the
                // rebuilt state are bit-identical.
                let params = ApproximationParams::new(0.2, 0.2)
                    .unwrap()
                    .with_mode(EstimatorMode::FixedSamples(24));
                let live_queries = stream_queries(w.db());
                let windowed = windowed_batch_estimator(&w, spec)
                    .estimate_batch_with_bank(
                        w.bank(),
                        &batch_refs(&live_queries),
                        params,
                        &mut StdRng::seed_from_u64(est_seed),
                    )
                    .unwrap();
                let scratch = BatchEstimator::new(&scratch_db, &sigma, spec)
                    .unwrap()
                    .estimate_batch_with_bank(
                        &scratch_bank,
                        &batch_refs(&scratch_queries),
                        params,
                        &mut StdRng::seed_from_u64(est_seed),
                    )
                    .unwrap();
                prop_assert_eq!(&windowed, &scratch, "estimates diverged: {}", &context);
            }
        }
    }
}

/// The fixed inconsistent window the draw-reuse properties run on:
/// blocks {0: 2 facts, 1: 2 facts, 2: 1 fact} of `R(K, V)`.
fn reuse_fixture() -> (WindowedEstimator, ApproximationParams) {
    let mut workload = StreamWorkload::new(1, 0, 0, 0.0, 0);
    let (mut db, sigma) = workload.initial(0);
    for (k, v) in [(0, 0), (0, 1), (1, 10), (1, 11), (2, 20)] {
        db.insert_values("R", [Value::int(k), Value::int(v)])
            .unwrap();
    }
    let queries = stream_queries(&db);
    let w = WindowedEstimator::new(
        db,
        sigma,
        GeneratorSpec::uniform_operations().with_singleton_only(),
        WindowSpec::Unbounded,
        queries,
    )
    .unwrap();
    let params =
        ApproximationParams::new(0.25, 0.15)
            .unwrap()
            .with_mode(EstimatorMode::OptimalStopping {
                max_samples: 400_000,
            });
    (w, params)
}

fn fact(db: &Database, k: i64, v: i64) -> Fact {
    Fact::new(
        db.schema().relation_id("R").unwrap(),
        vec![Value::int(k), Value::int(v)],
    )
}

/// The exact answer probabilities of the query bank over the live
/// window (rebuilt from scratch, so tombstones cannot interfere).
fn exact_probabilities(db: &Database, sigma: &FdSet, spec: GeneratorSpec) -> Vec<f64> {
    let (scratch, _) = scratch_rebuild(db);
    let queries = stream_queries(&scratch);
    let refs: Vec<(&QueryEvaluator, &[Value])> =
        queries.iter().map(|(e, c)| (e, c.as_slice())).collect();
    ExactSolver::new(&scratch, sigma)
        .answer_probabilities(spec, &refs)
        .unwrap()
        .into_iter()
        .map(|r| r.to_f64())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite 2 (reuse half): a tick that provably leaves every
    /// lineage untouched reuses the whole converged pass **verbatim** —
    /// byte-identical `QueryOutcome`s, zero draws, the RNG never even
    /// consulted (the reuse pass runs under a different seed).
    #[test]
    fn unchanged_entries_are_byte_identical_at_zero_draws(
        first_seed in 0u64..1_000_000,
        reuse_seed in 0u64..1_000_000,
        noise_key in 10i64..1_000,
    ) {
        let (mut w, params) = reuse_fixture();
        let first = w
            .estimate(params, &RunBudget::unlimited(), &mut StdRng::seed_from_u64(first_seed))
            .unwrap();
        prop_assert!(first.outcome.converged());

        // A fresh-key insert conflicts with nothing and joins no witness
        // set: every fingerprint survives the refresh.
        let insert = fact(w.db(), noise_key, -1);
        let report = w.tick(vec![insert], &[]).unwrap();
        prop_assert!(report.replayed > 0);
        prop_assert!(report.changed.iter().all(|&c| !c));
        prop_assert!(report.enrolled.iter().all(|&e| !e));

        let TickOutcome { outcome, reused, tick_draws } = w
            .estimate(params, &RunBudget::unlimited(), &mut StdRng::seed_from_u64(reuse_seed))
            .unwrap();
        prop_assert_eq!(tick_draws, 0, "a fully reused pass consumes no draws");
        prop_assert!(reused.iter().all(|&r| r));
        prop_assert!(outcome
            .queries
            .iter()
            .all(|q| q.status == BudgetStatus::Converged));
        prop_assert_eq!(outcome.queries, first.outcome.queries);
    }

    /// Satellite 2 (re-convergence half): a tick that changes an entry's
    /// fingerprint re-enrolls it; the re-estimated outcome converges
    /// within the relative `(ε, δ/k)` bound of the exact solver over the
    /// mutated window, while untouched entries stay byte-identical —
    /// and, crucially, **every** entry (reused or re-estimated) satisfies
    /// the bound against the exact probabilities of the *post-tick*
    /// window.  Reuse of a stale outcome whose block changed under it
    /// (the fingerprint-soundness bug) fails the reused half.
    #[test]
    fn changed_entries_reconverge_to_the_exact_answer(
        est_seed in 0u64..16,
        grow_block in 0i64..2,
    ) {
        let (mut w, params) = reuse_fixture();
        let first = w
            .estimate(params, &RunBudget::unlimited(), &mut StdRng::seed_from_u64(3))
            .unwrap();
        prop_assert!(first.outcome.converged());

        // Grow block 0 or 1: the matching block query's lineage gains a
        // witness.  Growing block 0 also re-enrolls the membership query
        // R(0, 0): its witness set is untouched, but its witness now
        // sits in a bigger block, so its answer probability moved.
        let insert = fact(w.db(), grow_block, 100 + grow_block);
        let report = w.tick(vec![insert], &[]).unwrap();
        let grown_query = (grow_block + 1) as usize; // QUERY_TEXTS[1] = block 0, [2] = block 1
        prop_assert!(report.changed[grown_query]);
        if grow_block == 0 {
            prop_assert!(
                report.changed[0],
                "the membership query's block grew: reusing its outcome would be unsound"
            );
        } else {
            prop_assert!(!report.changed[0] && !report.changed[1]);
        }

        let second = w
            .estimate(params, &RunBudget::unlimited(), &mut StdRng::seed_from_u64(est_seed))
            .unwrap();
        prop_assert!(second.outcome.converged());
        let exact = exact_probabilities(w.db(), w.sigma(), w.spec());
        for (q, outcome) in second.outcome.queries.iter().enumerate() {
            if second.reused[q] {
                prop_assert_eq!(*outcome, first.outcome.queries[q], "reused entry {} drifted", q);
            }
            // Reused or re-estimated, every entry must satisfy the
            // relative (ε, δ/k) bound against the exact chain
            // probabilities of the mutated window: reuse is only legal
            // when the tick provably did not move the probability.
            prop_assert!(
                (outcome.estimate - exact[q]).abs() <= params.epsilon * exact[q] + 1e-12,
                "entry {} ({}): estimate {} vs exact {} (ε = {})",
                q,
                if second.reused[q] { "reused" } else { "re-estimated" },
                outcome.estimate,
                exact[q],
                params.epsilon
            );
        }
    }

    /// Uniform-sequences marginals do not factorize across conflict
    /// components: the interleaving of other components' repairing
    /// sequences reweights a component's own outcomes.  A tick that
    /// changes *any* component must therefore re-enroll the whole bank
    /// under `M^us` — per-entry fingerprints are not a sound gate there
    /// — and the re-estimates must land on the post-tick truth.
    #[test]
    fn sequences_reenroll_everything_when_any_component_changes(
        est_seed in 0u64..8,
    ) {
        let mut workload = StreamWorkload::new(1, 0, 0, 0.0, 0);
        let (mut db, sigma) = workload.initial(0);
        // Block 0 holds three facts (mixed sequence lengths: a pair
        // removal can finish it early), so its marginals feel the
        // interleaving of other blocks' sequences.
        for (k, v) in [(0, 0), (0, 1), (0, 2), (1, 10), (1, 11)] {
            db.insert_values("R", [Value::int(k), Value::int(v)])
                .unwrap();
        }
        let queries = stream_queries(&db);
        let mut w = WindowedEstimator::new(
            db,
            sigma,
            GeneratorSpec::uniform_sequences(),
            WindowSpec::Unbounded,
            queries,
        )
        .unwrap();
        let params = ApproximationParams::new(0.25, 0.15)
            .unwrap()
            .with_mode(EstimatorMode::OptimalStopping {
                max_samples: 400_000,
            });
        let first = w
            .estimate(params, &RunBudget::unlimited(), &mut StdRng::seed_from_u64(3))
            .unwrap();
        prop_assert!(first.outcome.converged());

        // Grow block 1: block 0 is untouched — its witness sets and its
        // component composition both survive — yet its probabilities
        // move with the interleaving, so every entry must re-enroll.
        let insert = fact(w.db(), 1, 100);
        let report = w.tick(vec![insert], &[]).unwrap();
        prop_assert!(
            report.changed.iter().all(|&c| c),
            "a changed component re-enrolls the whole bank under M^us, got {:?}",
            report.changed
        );

        let second = w
            .estimate(params, &RunBudget::unlimited(), &mut StdRng::seed_from_u64(est_seed))
            .unwrap();
        prop_assert!(second.outcome.converged());
        prop_assert!(second.reused.iter().all(|&r| !r));
        let exact = exact_probabilities(w.db(), w.sigma(), w.spec());
        for (q, outcome) in second.outcome.queries.iter().enumerate() {
            prop_assert!(
                (outcome.estimate - exact[q]).abs() <= params.epsilon * exact[q] + 1e-12,
                "entry {}: estimate {} vs exact {} (ε = {})",
                q,
                outcome.estimate,
                exact[q],
                params.epsilon
            );
        }

        // Consistent churn, by contrast, leaves even `M^us` reuse
        // intact: a conflict-free fact joins no component.
        let insert = fact(w.db(), 7, 7);
        let report = w.tick(vec![insert], &[]).unwrap();
        prop_assert!(report.changed.iter().all(|&c| !c));
        let third = w
            .estimate(params, &RunBudget::unlimited(), &mut StdRng::seed_from_u64(est_seed ^ 9))
            .unwrap();
        prop_assert_eq!(third.tick_draws, 0);
        prop_assert!(third.reused.iter().all(|&r| r));
        prop_assert_eq!(third.outcome.queries, second.outcome.queries);
    }
}
