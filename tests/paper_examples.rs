//! Cross-crate integration tests reproducing the paper's worked examples
//! end to end through the facade crate.

use uocqa::core::counting;
use uocqa::core::exact::ExactSolver;
use uocqa::db::{Database, FdSet, FunctionalDependency, Schema, Value};
use uocqa::numeric::Ratio;
use uocqa::query::{parser::parse_query, QueryEvaluator};
use uocqa::repair::{GeneratorSpec, OperationalSemantics, RepairingTree, TreeLimits};

/// Example 3.6 / Figure 1: `D = {f1, f2, f3}` with `Σ = {A→B, C→B}`.
fn running_example() -> (Database, FdSet) {
    let mut schema = Schema::new();
    schema.add_relation("R", &["A", "B", "C"]).unwrap();
    let mut db = Database::with_schema(schema);
    for (a, b, c) in [("a1", "b1", "c1"), ("a1", "b2", "c2"), ("a2", "b1", "c2")] {
        db.insert_values("R", [Value::str(a), Value::str(b), Value::str(c)])
            .unwrap();
    }
    let mut sigma = FdSet::new();
    sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
    sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["C"], &["B"]).unwrap());
    (db, sigma)
}

/// Figure 2: blocks of sizes 3, 1, 2 under a single primary key.
fn figure2() -> (Database, FdSet) {
    let mut schema = Schema::new();
    schema.add_relation("R", &["A1", "A2"]).unwrap();
    let mut db = Database::with_schema(schema);
    for (a, b) in [
        ("a1", "b1"),
        ("a1", "b2"),
        ("a1", "b3"),
        ("a2", "b1"),
        ("a3", "b1"),
        ("a3", "b2"),
    ] {
        db.insert_values("R", [Value::str(a), Value::str(b)])
            .unwrap();
    }
    let mut sigma = FdSet::new();
    sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A1"], &["A2"]).unwrap());
    (db, sigma)
}

#[test]
fn figure1_tree_and_all_three_generators() {
    let (db, sigma) = running_example();
    let tree = RepairingTree::build(&db, &sigma, false, TreeLimits::default()).unwrap();
    assert_eq!(tree.node_count(), 12);
    assert_eq!(tree.leaf_count(), 9);
    assert_eq!(tree.candidate_repairs().len(), 5);

    // Section 4, uniform sequences: every leaf has π = 1/9.
    let chain = GeneratorSpec::uniform_sequences()
        .build_chain(&db, &sigma, TreeLimits::default())
        .unwrap();
    for (_, p) in chain.leaf_distribution() {
        assert_eq!(p, Ratio::from_u64(1, 9));
    }

    // Section 4, uniform repairs: five reachable leaves with π = 1/5, and
    // ORep = {∅, {f1}, {f2}, {f3}, {f1,f3}} each with probability 1/5.
    let chain = GeneratorSpec::uniform_repairs()
        .build_chain(&db, &sigma, TreeLimits::default())
        .unwrap();
    assert_eq!(chain.reachable_leaves().len(), 5);
    let semantics = OperationalSemantics::from_chain(&chain);
    assert_eq!(semantics.repair_count(), 5);
    assert!(semantics
        .repairs()
        .iter()
        .all(|r| r.probability == Ratio::from_u64(1, 5)));
    let repair_sizes: Vec<usize> = {
        let mut sizes: Vec<usize> = semantics.repairs().iter().map(|r| r.repair.len()).collect();
        sizes.sort_unstable();
        sizes
    };
    assert_eq!(repair_sizes, vec![0, 1, 1, 1, 2]);

    // Section 4, uniform operations: root edges 1/5, depth-2 edges 1/3.
    let chain = GeneratorSpec::uniform_operations()
        .build_chain(&db, &sigma, TreeLimits::default())
        .unwrap();
    for &child in chain.tree().children(chain.tree().root()) {
        assert_eq!(chain.edge_probability(child), &Ratio::from_u64(1, 5));
    }
}

#[test]
fn figure2_counting_and_relative_frequencies() {
    let (db, sigma) = figure2();
    let sizes = counting::block_sizes(&db, &sigma, &db.all_facts()).unwrap();
    assert_eq!(counting::count_candidate_repairs(&sizes).to_u64(), Some(12));
    assert_eq!(
        counting::count_complete_sequences(&sizes).to_u64(),
        Some(99)
    );
    assert_eq!(
        counting::count_candidate_repairs_singleton(&sizes).to_u64(),
        Some(6)
    );

    let solver = ExactSolver::new(&db, &sigma);
    let query = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
    let evaluator = QueryEvaluator::new(query);
    let candidate = [Value::str("b1")];
    assert_eq!(
        solver.rrfreq(&evaluator, &candidate, false).unwrap(),
        Ratio::from_u64(1, 4)
    );
    assert_eq!(
        solver.srfreq(&evaluator, &candidate, false).unwrap(),
        Ratio::from_u64(24, 99)
    );
    assert_eq!(
        solver.rrfreq(&evaluator, &candidate, true).unwrap(),
        Ratio::from_u64(1, 3)
    );
}

#[test]
fn intro_example_emp_alice_tom() {
    // The introduction's data-integration example: Emp(1, Alice) and
    // Emp(1, Tom) violating the key on the first attribute.  Under every
    // uniform semantics, each of the three repairs {Alice}, {Tom}, ∅ is a
    // candidate; under uniform repairs each has probability 1/3.
    let mut schema = Schema::new();
    schema.add_relation("Emp", &["id", "name"]).unwrap();
    let mut db = Database::with_schema(schema);
    db.insert_values("Emp", [Value::int(1), Value::str("Alice")])
        .unwrap();
    db.insert_values("Emp", [Value::int(1), Value::str("Tom")])
        .unwrap();
    let mut sigma = FdSet::new();
    sigma.add(FunctionalDependency::from_names(db.schema(), "Emp", &["id"], &["name"]).unwrap());
    let solver = ExactSolver::new(&db, &sigma);
    let semantics = solver.semantics(GeneratorSpec::uniform_repairs()).unwrap();
    assert_eq!(semantics.repair_count(), 3);
    let query = parse_query(db.schema(), "Ans() :- Emp(1, 'Alice')").unwrap();
    let evaluator = QueryEvaluator::new(query);
    assert_eq!(
        semantics.entailment_probability(&db, &evaluator),
        Ratio::from_u64(1, 3)
    );
}

#[test]
fn running_example_multi_query_batch_golden_case() {
    // The running example (Figure 1) as a *multi-query* golden case: the
    // batched exact pass and the batched FPRAS answer a bank of three
    // queries from one traversal / one sampling loop.
    //
    // Under M^{uo,1} (singleton removals — the supported generator for
    // these non-key FDs, Theorem 7.5) the walk from D branches uniformly
    // over the removals of the conflicting facts, giving the repair
    // distribution {f1,f3} ↦ 1/3, {f2} ↦ 1/3, {f1} ↦ 1/6, {f3} ↦ 1/6.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uocqa::core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};

    let (db, sigma) = running_example();
    let texts_and_golden = [
        // Some surviving fact with B = b1 (f1 or f3): 1/3 + 1/6 + 1/6.
        ("Ans() :- R(x, 'b1', y)", Ratio::from_u64(2, 3)),
        // Some surviving fact with A = a1 (f1 or f2): 1/3 + 1/3 + 1/6.
        ("Ans() :- R('a1', x, y)", Ratio::from_u64(5, 6)),
        // Both a b1-fact and a b2-fact survive: no repair has both.
        ("Ans() :- R(x, 'b1', y), R(z, 'b2', w)", Ratio::zero()),
    ];
    let evaluators: Vec<QueryEvaluator> = texts_and_golden
        .iter()
        .map(|(t, _)| QueryEvaluator::new(parse_query(db.schema(), t).unwrap()))
        .collect();
    let refs: Vec<(&QueryEvaluator, &[Value])> =
        evaluators.iter().map(|e| (e, &[] as &[Value])).collect();
    let spec = GeneratorSpec::uniform_operations().with_singleton_only();

    // Exact, batched: one pass over ⟦D⟧ answers the whole bank.
    let exact = ExactSolver::new(&db, &sigma)
        .answer_probabilities(spec, &refs)
        .unwrap();
    for ((_, golden), exact) in texts_and_golden.iter().zip(&exact) {
        assert_eq!(exact, golden);
    }

    // Approximate, batched: one sampling loop, estimates within the
    // additive ε, and bit-identical to the single-query runs.
    let bank: Vec<BatchQuery<'_>> = evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();
    let estimator = BatchEstimator::new(&db, &sigma, spec).unwrap();
    let params = ApproximationParams::new(0.05, 0.05)
        .unwrap()
        .with_mode(EstimatorMode::FixedAdditive);
    let estimates = estimator
        .estimate_batch(&bank, params, &mut StdRng::seed_from_u64(22))
        .unwrap();
    for (i, ((_, golden), estimate)) in texts_and_golden.iter().zip(&estimates).enumerate() {
        assert!(
            (estimate.value - golden.to_f64()).abs() <= 0.05,
            "query {i}: golden {} ≈ {:.4}, estimate {:.4}",
            golden,
            golden.to_f64(),
            estimate.value
        );
        let single = estimator
            .estimator()
            .estimate(
                bank[i].evaluator,
                bank[i].candidate,
                params,
                &mut StdRng::seed_from_u64(22),
            )
            .unwrap();
        assert_eq!(
            estimates[i], single,
            "query {i} diverged from single-query run"
        );
    }
    // The impossible conjunction is estimated at exactly zero.
    assert_eq!(estimates[2].successes, 0);
}

#[test]
fn proposition_d6_closed_form_matches_enumeration() {
    use uocqa::workload::proposition_d6_database;
    for n in 2..=6usize {
        let (db, sigma) = proposition_d6_database(n);
        let query = parse_query(db.schema(), "Ans() :- R(0, 0, 0)").unwrap();
        let evaluator = QueryEvaluator::new(query);
        let exact = ExactSolver::new(&db, &sigma)
            .answer_probability(GeneratorSpec::uniform_operations(), &evaluator, &[])
            .unwrap();
        let mut closed_form = Ratio::one();
        for p in 1..n as u64 {
            closed_form = &closed_form * &Ratio::from_u64(p, 2 * p + 1);
        }
        assert_eq!(exact, closed_form, "n = {n}");
        // Proposition D.6: 0 < P ≤ 1/2^{n−1}.
        assert!(!exact.is_zero());
        assert!(exact <= Ratio::from_u64(1, 1 << (n - 1)), "n = {n}");
    }
}
