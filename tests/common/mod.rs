//! Shared fixtures and assert helpers for the integration test suites.
//!
//! Every test binary compiles this module independently and uses a
//! different subset of it, hence the file-wide `dead_code` allowance.

#![allow(dead_code)]

use std::collections::BTreeSet;

use uocqa::db::{ConflictIndex, Database, FactId, FdSet, FunctionalDependency, Schema, Value};
use uocqa::query::{LineageBank, QueryEvaluator};
use uocqa::repair::GeneratorSpec;

/// All six generator specifications of the paper: the three uniform
/// semantics, each with pair+singleton and singleton-only operations.
pub fn all_specs() -> [GeneratorSpec; 6] {
    [
        GeneratorSpec::uniform_repairs(),
        GeneratorSpec::uniform_repairs().with_singleton_only(),
        GeneratorSpec::uniform_sequences(),
        GeneratorSpec::uniform_sequences().with_singleton_only(),
        GeneratorSpec::uniform_operations(),
        GeneratorSpec::uniform_operations().with_singleton_only(),
    ]
}

/// Builds a primary-key database (single relation `R(A, B)`, key `A → B`)
/// from a block-size profile.
pub fn block_database(profile: &[usize]) -> (Database, FdSet) {
    let mut schema = Schema::new();
    schema.add_relation("R", &["A", "B"]).unwrap();
    let mut db = Database::with_schema(schema);
    for (block, &size) in profile.iter().enumerate() {
        for row in 0..size {
            db.insert_values("R", [Value::int(block as i64), Value::int(row as i64)])
                .unwrap();
        }
    }
    let mut sigma = FdSet::new();
    sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
    (db, sigma)
}

/// Builds a general-FD database over `R(A, B, C)` with `A → B` from a list
/// of (a, b) pairs; the third attribute is a unique payload.
pub fn fd_database(pairs: &[(u8, u8)]) -> (Database, FdSet) {
    let mut schema = Schema::new();
    schema.add_relation("R", &["A", "B", "C"]).unwrap();
    let mut db = Database::with_schema(schema);
    for (i, (a, b)) in pairs.iter().enumerate() {
        db.insert_values(
            "R",
            [
                Value::int(i64::from(*a % 3)),
                Value::int(i64::from(*b % 3)),
                Value::int(i as i64),
            ],
        )
        .unwrap();
    }
    let mut sigma = FdSet::new();
    sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
    (db, sigma)
}

/// Builds a two-relation database with overlapping **non-key** FDs
/// (`R : A → B`, `R : C → B` and `S : A → B`) from value tuples; a unique
/// payload attribute keeps facts distinct, so no FD is a key and conflict
/// structures span both relations.
pub fn multi_fd_database(rows: &[(u8, u8, u8, u8)]) -> (Database, FdSet) {
    let mut schema = Schema::new();
    schema.add_relation("R", &["A", "B", "C", "P"]).unwrap();
    schema.add_relation("S", &["A", "B", "P"]).unwrap();
    let mut db = Database::with_schema(schema);
    for (i, (a, b, c, which)) in rows.iter().enumerate() {
        let (a, b, c) = (
            Value::int(i64::from(*a % 3)),
            Value::int(i64::from(*b % 3)),
            Value::int(i64::from(*c % 3)),
        );
        if which % 2 == 0 {
            db.insert_values("R", [a, b, c, Value::int(i as i64)])
                .unwrap();
        } else {
            db.insert_values("S", [a, b, Value::int(i as i64)]).unwrap();
        }
    }
    let mut sigma = FdSet::new();
    sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
    sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["C"], &["B"]).unwrap());
    sigma.add(FunctionalDependency::from_names(db.schema(), "S", &["A"], &["B"]).unwrap());
    (db, sigma)
}

/// A Boolean membership query `Ans() :- R(0, 0)` over the block database.
pub fn parse_membership(db: &Database) -> QueryEvaluator {
    let q = uocqa::query::parser::parse_query(db.schema(), "Ans() :- R(0, 0)").unwrap();
    QueryEvaluator::new(q)
}

/// Rebuilds a fresh database holding exactly the live facts of `db`, in
/// insertion (= ascending live id) order, together with the id map:
/// `map[scratch_position] = windowed_id`.  Because ids are assigned
/// densely in insertion order, the map is an order-preserving bijection
/// from the windowed database's live ids onto `0..live_count` — the
/// ground-truth universe the windowed state is compared against.
pub fn scratch_rebuild(db: &Database) -> (Database, Vec<FactId>) {
    let mut scratch = Database::with_schema(db.schema().clone());
    let mut map = Vec::with_capacity(db.live_count());
    for (id, fact) in db.iter() {
        scratch.insert(fact).unwrap();
        map.push(id);
    }
    (scratch, map)
}

/// Maps a windowed-database fact id to its position in the scratch
/// rebuild (`map` as produced by [`scratch_rebuild`]).
pub fn remap(map: &[FactId], id: FactId) -> FactId {
    let position = map
        .binary_search(&id)
        .expect("windowed id is live and therefore in the scratch map");
    FactId::new(position)
}

/// Asserts the delta-maintained conflict index over the windowed
/// database equals, under the id remap, the index built from scratch
/// over the rebuilt window.
pub fn assert_conflict_matches_scratch(
    windowed: &ConflictIndex,
    scratch: &ConflictIndex,
    map: &[FactId],
    context: &str,
) {
    let mut remapped: BTreeSet<(FactId, FactId)> = windowed
        .pairs()
        .iter()
        .map(|&(a, b)| {
            let (a, b) = (remap(map, a), remap(map, b));
            (a.min(b), a.max(b))
        })
        .collect();
    let from_scratch: BTreeSet<(FactId, FactId)> = scratch
        .pairs()
        .iter()
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .collect();
    assert_eq!(remapped, from_scratch, "conflict pairs diverged: {context}");
    remapped.clear();
    let conflicting: BTreeSet<FactId> = windowed
        .conflicting_facts()
        .iter()
        .map(|&f| remap(map, f))
        .collect();
    let scratch_conflicting: BTreeSet<FactId> =
        scratch.conflicting_facts().iter().copied().collect();
    assert_eq!(
        conflicting, scratch_conflicting,
        "conflicting fact sets diverged: {context}"
    );
}

/// The canonical (sorted) witness id-sets of one bank entry, remapped
/// through `map` when given — `None` for a fallback entry.
pub fn canonical_witnesses(
    bank: &LineageBank,
    entry: usize,
    map: Option<&[FactId]>,
) -> Option<BTreeSet<Vec<FactId>>> {
    bank.witnesses_of(entry).map(|witnesses| {
        witnesses
            .iter()
            .map(|w| {
                let mut ids: Vec<FactId> = match map {
                    Some(map) => w.iter().map(|id| remap(map, id)).collect(),
                    None => w.iter().collect(),
                };
                ids.sort_unstable();
                ids
            })
            .collect()
    })
}

/// Asserts the delta-maintained bank over the windowed database holds,
/// entry by entry and under the id remap, the same witness sets as the
/// bank compiled from scratch over the rebuilt window.
pub fn assert_bank_matches_scratch(
    windowed: &LineageBank,
    scratch: &LineageBank,
    map: &[FactId],
    context: &str,
) {
    assert_eq!(
        windowed.len(),
        scratch.len(),
        "bank sizes diverged: {context}"
    );
    for entry in 0..windowed.len() {
        assert_eq!(
            windowed.is_fallback(entry),
            scratch.is_fallback(entry),
            "fallback status of entry {entry} diverged: {context}"
        );
        assert_eq!(
            canonical_witnesses(windowed, entry, Some(map)),
            canonical_witnesses(scratch, entry, None),
            "witness sets of entry {entry} diverged: {context}"
        );
    }
}
