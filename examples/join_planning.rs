//! Plan-based witness enumeration: join plans, relation indexes, and the
//! shared bank compile.
//!
//! Every compiled lineage starts with witness *enumeration* — finding all
//! homomorphism images of a query in the full database.  This example
//! shows the three layers the plan-based pipeline adds: the greedy join
//! plan of a [`uocqa::query::QueryEvaluator`] (structural bound-coverage
//! order, or cost-based order over the live statistics of the database's
//! [`uocqa::db::RelationIndex`] via
//! [`uocqa::query::QueryEvaluator::with_stats`], both introspectable
//! through [`uocqa::query::PlanExplain`]), and the shared scan trie of
//! [`uocqa::query::LineageBank::compile`] that factors the common atom
//! prefixes and suffix subtrees of an overlapping-join bank into ~one
//! enumeration pass, compared against the unplanned
//! one-backtracking-pass-per-entry baseline.
//!
//! ```text
//! cargo run --release --example join_planning
//! ```

use std::time::Instant;

use uocqa::query::{parser::parse_query, LineageBank, QueryEvaluator};
use uocqa::workload::{queries::overlapping_join_bank, MultiFdWorkload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 5 000-fact multi-FD instance: two relations R0/R1(A, B, C, P).
    let (db, _sigma) = MultiFdWorkload::scaling(5_000, 42).generate();
    println!(
        "database: {} facts, {} posting entries in the relation index",
        db.len(),
        db.relation_index().posting_entries()
    );

    // The planner reorders atoms by bound coverage: the constant-anchored
    // atom leads, then everything joined through its variables becomes an
    // indexed lookup.
    let query = parse_query(db.schema(), "Ans(v) :- R0(x, v, y, p), R0(3, v, z, q)")?;
    let structural = QueryEvaluator::new(query.clone());
    let order: Vec<usize> = structural.plan().atom_order().collect();
    println!(
        "structural free plan: atom order {order:?}, {} of {} steps indexed",
        structural.plan().indexed_steps(),
        structural.plan().len(),
    );
    println!("{}", structural.plan().explain());

    // The cost-based planner consults the live relation-index statistics
    // instead: shortest constant-bound posting run first, variable-bound
    // positions discounted by their distinct counts.  `explain` reports
    // the per-step and cumulative cardinality estimates it planned with.
    let costed = QueryEvaluator::with_stats(query, &db)?;
    let costed_order: Vec<usize> = costed.plan().atom_order().collect();
    println!(
        "cost-based free plan: atom order {costed_order:?}, {} of {} steps indexed",
        costed.plan().indexed_steps(),
        costed.plan().len(),
    );
    println!("{}", costed.plan().explain());
    let answer_order: Vec<usize> = costed.answer_plan().atom_order().collect();
    println!(
        "answer plan (v prebound): atom order {answer_order:?}, {} of {} steps indexed",
        costed.answer_plan().indexed_steps(),
        costed.answer_plan().len(),
    );
    // A bank of 64 overlapping joins sharing a two-atom prefix: the
    // shared scan trie enumerates the prefix once for the whole bank,
    // and canonicalised suffix subtrees recur across entries fill once
    // and replay everywhere else.
    let queries = overlapping_join_bank(&db, 64, 2, 7)?;
    let evaluators: Vec<QueryEvaluator> = queries
        .into_iter()
        .map(|q| QueryEvaluator::with_stats(q, &db))
        .collect::<Result<_, _>>()?;
    let refs: Vec<(&QueryEvaluator, &[uocqa::db::Value])> = evaluators
        .iter()
        .map(|e| (e, &[] as &[uocqa::db::Value]))
        .collect();

    let start = Instant::now();
    let (shared, stats) = LineageBank::compile_instrumented(
        &db,
        &refs,
        uocqa::query::lineage::DEFAULT_WITNESS_CAP,
        &uocqa::query::CompileBudget::unlimited(),
    )?;
    let shared_ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "shared compile: {} enumeration steps over {} trie nodes, \
         {} shared subtrees replayed {} times",
        stats.steps, stats.trie_nodes, stats.shared_subtrees, stats.replays,
    );
    let start = Instant::now();
    let baseline = LineageBank::compile_unplanned(&db, &refs)?;
    let baseline_ms = start.elapsed().as_secs_f64() * 1e3;

    assert_eq!(shared.witness_count(), baseline.witness_count());
    println!(
        "bank of {}: {} distinct witnesses; shared compile {shared_ms:.2} ms, \
         unplanned per-entry baseline {baseline_ms:.2} ms ({:.1}x)",
        shared.len(),
        shared.witness_count(),
        baseline_ms / shared_ms.max(1e-9),
    );
    Ok(())
}
