//! Probabilistic cleaning of a large sensor-registry table under a primary
//! key: approximate operational consistent answers at a scale where exact
//! enumeration is hopeless (thousands of candidate repairs per block,
//! astronomically many overall).
//!
//! The example also cross-checks the estimator against the analytically
//! known exact value for the uniform-repairs semantics: the probability
//! that a specific reading of a sensor with `m` conflicting readings
//! survives is exactly `1/(m+1)`.
//!
//! ```text
//! cargo run --release --example sensor_cleaning
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uocqa::core::fpras::{ApproximationParams, OcqaEstimator};
use uocqa::db::{Database, FdSet, FunctionalDependency, Schema, Value};
use uocqa::query::{parser::parse_query, QueryEvaluator};
use uocqa::repair::GeneratorSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sensor(sensor_id, location): each sensor should be installed at one
    // location, but the registry accumulated conflicting entries.
    let mut schema = Schema::new();
    schema.add_relation("Sensor", &["sensor", "location"])?;
    let mut db = Database::with_schema(schema);
    let mut sigma = FdSet::new();
    sigma.add(FunctionalDependency::from_names(
        db.schema(),
        "Sensor",
        &["sensor"],
        &["location"],
    )?);

    let mut rng = StdRng::seed_from_u64(99);
    let sensors = 400usize;
    let mut conflicting_readings_of_s0 = 0usize;
    for sensor in 0..sensors {
        // Between 1 and 6 recorded locations per sensor.
        let readings = rng.random_range(1..=6);
        if sensor == 0 {
            conflicting_readings_of_s0 = readings;
        }
        for r in 0..readings {
            db.insert_values(
                "Sensor",
                [
                    Value::int(sensor as i64),
                    Value::str(format!("site-{sensor}-{r}")),
                ],
            )?;
        }
    }
    println!(
        "sensor registry: {} facts over {} sensors, consistent: {}",
        db.len(),
        sensors,
        sigma.satisfied_by_database(&db)
    );

    let estimator = OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_repairs())?;
    let params = ApproximationParams::new(0.05, 0.05)?;
    let mut rng = StdRng::seed_from_u64(7);

    // How likely is it that sensor 0 is really at its first recorded site?
    let query = parse_query(db.schema(), "Ans() :- Sensor(0, 'site-0-0')")?;
    let evaluator = QueryEvaluator::new(query);
    let estimate = estimator.estimate(&evaluator, &[], params, &mut rng)?;
    let exact = 1.0 / (conflicting_readings_of_s0 as f64 + 1.0);
    println!(
        "\nP[sensor 0 is at site-0-0]  estimate {:.4}  (exact {:.4}, {} samples, ε = 0.05)",
        estimate.value, exact, estimate.samples
    );

    // Which location should we report for sensor 1?  Rank its candidate
    // locations by answer probability.
    let query = parse_query(db.schema(), "Ans(loc) :- Sensor(1, loc)")?;
    let evaluator = QueryEvaluator::new(query);
    println!("\ncandidate locations for sensor 1, ranked by probability:");
    let candidates: Vec<Value> = db
        .active_domain()
        .into_iter()
        .filter(|v| v.as_str().is_some_and(|s| s.starts_with("site-1-")))
        .collect();
    let mut ranked = Vec::new();
    for location in candidates {
        let estimate = estimator.estimate(
            &evaluator,
            std::slice::from_ref(&location),
            params,
            &mut rng,
        )?;
        ranked.push((location, estimate.value));
    }
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (location, probability) in ranked {
        println!("  {location}: {probability:.4}");
    }
    println!("\n(each location of a sensor with m readings has survival probability 1/(m+1))");
    Ok(())
}
