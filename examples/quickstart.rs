//! Quickstart: exact and approximate uniform operational CQA on a small
//! inconsistent database.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use uocqa::core::exact::ExactSolver;
use uocqa::core::fpras::{ApproximationParams, OcqaEstimator};
use uocqa::db::{Database, FdSet, FunctionalDependency, Schema, Value};
use uocqa::query::{parser::parse_query, QueryEvaluator};
use uocqa::repair::GeneratorSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Schema and constraints: employees with a primary key on `id`.
    let mut schema = Schema::new();
    schema.add_relation("Emp", &["id", "name", "dept"])?;
    let mut db = Database::with_schema(schema);
    let mut sigma = FdSet::new();
    sigma.add(FunctionalDependency::from_names(
        db.schema(),
        "Emp",
        &["id"],
        &["name", "dept"],
    )?);

    // 2. An inconsistent instance: two sources disagree about employee 1,
    //    three about employee 2.
    for (id, name, dept) in [
        (1, "Alice", "R&D"),
        (1, "Tom", "R&D"),
        (2, "Carol", "Sales"),
        (2, "Carol", "Support"),
        (2, "Caroline", "Sales"),
        (3, "Dave", "R&D"),
    ] {
        db.insert_values("Emp", [Value::int(id), Value::str(name), Value::str(dept)])?;
    }
    println!(
        "database is consistent: {}",
        sigma.satisfied_by_database(&db)
    );

    // 3. A query: which employees work in R&D?
    let query = parse_query(db.schema(), "Ans(n) :- Emp(x, n, 'R&D')")?;
    let evaluator = QueryEvaluator::new(query);

    // 4. Exact operational consistent answers under the uniform-repairs
    //    semantics (the database is small, so exact enumeration is fine).
    let solver = ExactSolver::new(&db, &sigma);
    let semantics = solver.semantics(GeneratorSpec::uniform_repairs())?;
    println!("\nexact operational consistent answers (uniform repairs):");
    for (tuple, probability) in semantics.consistent_answers(&db, &evaluator)? {
        println!(
            "  {} -> probability {} ≈ {:.4}",
            tuple[0],
            probability,
            probability.to_f64()
        );
    }

    // 5. The same answers, approximated with the FPRAS of Theorem 5.1(2)
    //    (ε = 0.05, δ = 0.05) — the path that scales to large databases.
    let estimator = OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_repairs())?;
    let params = ApproximationParams::new(0.05, 0.05)?;
    let mut rng = StdRng::seed_from_u64(42);
    println!("\napproximate answers (FPRAS, ε = 0.05):");
    for name in ["Alice", "Tom", "Dave"] {
        let estimate = estimator.estimate(&evaluator, &[Value::str(name)], params, &mut rng)?;
        println!(
            "  {name} -> {:.4}  ({} samples)",
            estimate.value, estimate.samples
        );
    }
    Ok(())
}
