//! Adaptive batched estimation: one shared repair stream, per-query
//! Dagum–Karp–Luby–Ross stopping targets, early retirement.
//!
//! A skewed question bank over an inconsistent sensor table: most
//! questions concern well-supported readings (high answer probability,
//! cheap to certify), one concerns a heavily contradicted reading (low
//! probability, needs a long stream).  A fixed shared budget would make
//! every question pay for the hardest one; the adaptive batch
//! (`BatchEstimator::estimate_stopping_batch`) retires each question the
//! moment its own success target `Υ(ε, δ/k)` is reached, shrinking the
//! per-draw work, and only the rare question rides the stream to the end.
//!
//! ```text
//! cargo run --example adaptive_batch
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use uocqa::core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
use uocqa::db::{Database, FdSet, FunctionalDependency, Schema, Value};
use uocqa::query::{parser::parse_query, QueryEvaluator};
use uocqa::repair::GeneratorSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One sensor ("hub") is contradicted by a crowd of later readings:
    // its "ok" status survives repairing only rarely.  The other sensors
    // have a single contradiction each.
    let mut schema = Schema::new();
    schema.add_relation("Reading", &["sensor", "status", "ts"])?;
    let mut db = Database::with_schema(schema);
    let mut sigma = FdSet::new();
    sigma.add(FunctionalDependency::from_names(
        db.schema(),
        "Reading",
        &["sensor"],
        &["status"],
    )?);
    db.insert_values("Reading", [Value::int(0), Value::str("ok"), Value::int(0)])?;
    for ts in 1..40 {
        // 39 conflicting "fault" reports against the hub's lone "ok".
        db.insert_values(
            "Reading",
            [Value::int(0), Value::str("fault"), Value::int(ts)],
        )?;
    }
    for sensor in 1..4 {
        db.insert_values(
            "Reading",
            [
                Value::int(sensor),
                Value::str("ok"),
                Value::int(100 + sensor),
            ],
        )?;
        db.insert_values(
            "Reading",
            [
                Value::int(sensor),
                Value::str("fault"),
                Value::int(200 + sensor),
            ],
        )?;
    }

    // The bank: one rare question (the hub), three cheap ones.
    let texts = [
        "Ans() :- Reading(0, 'ok', x)",
        "Ans() :- Reading(1, 'ok', x)",
        "Ans() :- Reading(2, 'ok', x)",
        "Ans() :- Reading(3, 'ok', x)",
    ];
    let evaluators: Vec<QueryEvaluator> = texts
        .iter()
        .map(|t| parse_query(db.schema(), t).map(QueryEvaluator::new))
        .collect::<Result<_, _>>()?;
    let bank: Vec<BatchQuery<'_>> = evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();

    // Non-key FD ⇒ uniform operations with singleton removals
    // (Theorem 7.5).  OptimalStopping routes `estimate_batch` through the
    // batched stopping rule: per-query targets Υ(ε, δ/4) over one shared
    // walk stream, retirement on convergence.
    let spec = GeneratorSpec::uniform_operations().with_singleton_only();
    let estimator = BatchEstimator::new(&db, &sigma, spec)?;
    let params = ApproximationParams::new(0.1, 0.05)?.with_mode(EstimatorMode::OptimalStopping {
        max_samples: 2_000_000,
    });
    let estimates =
        estimator.estimate_stopping_batch(&bank, params, &mut StdRng::seed_from_u64(7))?;

    println!("adaptive batched stopping rule (ε = 0.1, δ = 0.05, δ/k per query):");
    for (text, estimate) in texts.iter().zip(&estimates) {
        println!(
            "  {text}\n    estimate {:.4} after {} samples ({} successes{})",
            estimate.value,
            estimate.samples,
            estimate.successes,
            if estimate.truncated {
                ", TRUNCATED — no (ε, δ) guarantee"
            } else {
                ""
            }
        );
    }
    let stream = estimates.iter().map(|e| e.samples).max().unwrap_or(0);
    let evaluations: u64 = estimates.iter().map(|e| e.samples).sum();
    println!(
        "shared stream: {stream} draws; query evaluations performed: {evaluations} \
         (a fixed loop of the same length would perform {})",
        stream * bank.len() as u64
    );
    Ok(())
}
