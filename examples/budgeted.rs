//! Budgeted, cancellable estimation with graceful degradation.
//!
//! An interactive dashboard can't let a consistency probe run forever: it
//! hands the estimator a [`RunBudget`] — a draw cap, a wall-clock
//! deadline, a cancellation token wired to a "stop" button — and takes
//! whatever the stream has proven when the budget runs out.  This example
//! walks the full lifecycle over an inconsistent sensor table:
//!
//! 1. an **unconstrained** budget (bit-identical to the unbudgeted path),
//! 2. a **draw cap** cutting the stream mid-flight, with each query
//!    reporting the achieved `(ε′, δ/k)` bound at its actual draw count,
//! 3. **resuming** the interrupted run to convergence with the same RNG
//!    (bit-identical to never having been interrupted),
//! 4. a **cancellation token** tripped by draw index, standing in for a
//!    user-initiated stop.
//!
//! ```text
//! cargo run --example budgeted
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use uocqa::core::budget::{BudgetStatus, CancelToken, RunBudget};
use uocqa::core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
use uocqa::db::{Database, FdSet, FunctionalDependency, Schema, Value};
use uocqa::query::{parser::parse_query, QueryEvaluator};
use uocqa::repair::GeneratorSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The adaptive-batch sensor table: one heavily contradicted hub (its
    // lone "ok" reading survives repairing rarely) plus lightly
    // conflicted sensors that certify quickly.
    let mut schema = Schema::new();
    schema.add_relation("Reading", &["sensor", "status", "ts"])?;
    let mut db = Database::with_schema(schema);
    let mut sigma = FdSet::new();
    sigma.add(FunctionalDependency::from_names(
        db.schema(),
        "Reading",
        &["sensor"],
        &["status"],
    )?);
    db.insert_values("Reading", [Value::int(0), Value::str("ok"), Value::int(0)])?;
    for ts in 1..20 {
        db.insert_values(
            "Reading",
            [Value::int(0), Value::str("fault"), Value::int(ts)],
        )?;
    }
    for sensor in 1..4 {
        db.insert_values(
            "Reading",
            [Value::int(sensor), Value::str("ok"), Value::int(100)],
        )?;
        db.insert_values(
            "Reading",
            [Value::int(sensor), Value::str("fault"), Value::int(101)],
        )?;
    }

    let questions: Vec<QueryEvaluator> = (0..4)
        .map(|sensor| {
            let text = format!("Ans() :- Reading({sensor}, 'ok', t)");
            parse_query(db.schema(), &text).map(QueryEvaluator::new)
        })
        .collect::<Result<_, _>>()?;
    let bank: Vec<BatchQuery<'_>> = questions.iter().map(|q| BatchQuery::new(q, &[])).collect();

    let estimator = BatchEstimator::new(
        &db,
        &sigma,
        GeneratorSpec::uniform_operations().with_singleton_only(),
    )?;
    let params = ApproximationParams::new(0.2, 0.1)?.with_mode(EstimatorMode::OptimalStopping {
        max_samples: 500_000,
    });

    // 1. Unconstrained budget: same stream, same outcome, plus per-query
    //    status and achieved-bound reporting.
    let full = estimator.estimate_stopping_batch_with_budget(
        &bank,
        params,
        &RunBudget::unlimited(),
        &mut StdRng::seed_from_u64(7),
    )?;
    println!("— unconstrained budget ({} draws) —", full.total_draws);
    for (sensor, q) in full.queries.iter().enumerate() {
        println!(
            "  sensor {sensor}: P ≈ {:.4}  [{:?} after {} draws]",
            q.estimate, q.status, q.samples
        );
    }

    // 2. A draw cap at a tenth of the converged stream: converged
    //    queries keep their values, live ones degrade gracefully to the
    //    achieved bound at the truncated counts.
    let cap = (full.total_draws / 10).max(1);
    let mut rng = StdRng::seed_from_u64(7);
    let capped = estimator.estimate_stopping_batch_with_budget(
        &bank,
        params,
        &RunBudget::unlimited().with_max_draws(cap),
        &mut rng,
    )?;
    println!("— draw cap {cap} —");
    for (sensor, q) in capped.queries.iter().enumerate() {
        match q.achieved.relative_epsilon {
            Some(eps) => println!(
                "  sensor {sensor}: P ≈ {:.4}  [{:?}; achieved ε′ = {eps:.3} \
                 with probability ≥ {:.2}]",
                q.estimate,
                q.status,
                1.0 - q.achieved.delta
            ),
            None => println!(
                "  sensor {sensor}: P ≈ {:.4}  [{:?}; too few successes for a \
                 relative bound, additive ε′ = {:.3}]",
                q.estimate, q.status, q.achieved.additive_epsilon
            ),
        }
    }

    // 3. Resume with the remaining budget: the same RNG continues the
    //    stream, and the concatenated run equals the uninterrupted one.
    let resumed = estimator.estimate_stopping_batch_resume(
        &bank,
        params,
        &RunBudget::unlimited(),
        &capped,
        &mut rng,
    )?;
    let identical = resumed
        .queries
        .iter()
        .zip(&full.queries)
        .all(|(r, f)| (r.estimate, r.samples) == (f.estimate, f.samples));
    println!("— resumed to convergence: bit-identical to uninterrupted = {identical} —");
    assert!(identical);

    // 4. A cancellation token, as a stop button would trip it.  Here it
    //    fires deterministically at draw 100; `CancelToken::cancel` (or
    //    the shared `flag()`) does the same from another thread.
    let cancelled = estimator.estimate_stopping_batch_with_budget(
        &bank,
        params,
        &RunBudget::unlimited().with_cancel_token(CancelToken::tripped_at_draw(100)),
        &mut StdRng::seed_from_u64(7),
    )?;
    let still_live = cancelled
        .queries
        .iter()
        .filter(|q| q.status == BudgetStatus::Cancelled)
        .count();
    println!(
        "— cancelled at draw {}: {still_live} of {} queries still in flight —",
        cancelled.total_draws,
        cancelled.queries.len()
    );
    Ok(())
}
