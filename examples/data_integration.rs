//! The data-integration scenario from the paper's introduction, scaled up:
//! several sources disagree on key *and* non-key attributes, the resulting
//! constraint set has two keys per relation (so it is *not* a primary-key
//! instance), and the uniform-operations semantics — the only one the paper
//! proves approximable in this regime (Theorem 7.1(2)) — is used to rank
//! answers by the probability that they survive repairing.
//!
//! ```text
//! cargo run --release --example data_integration
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uocqa::core::fpras::{ApproximationParams, OcqaEstimator};
use uocqa::core::CoreError;
use uocqa::db::{Database, FdSet, FunctionalDependency, Schema, Value};
use uocqa::query::{parser::parse_query, QueryEvaluator};
use uocqa::repair::GeneratorSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Employees integrated from several sources.  Both `id` and `badge`
    // are meant to identify an employee, giving two keys:
    //   Emp : id    -> badge, name
    //   Emp : badge -> id, name
    let mut schema = Schema::new();
    schema.add_relation("Emp", &["id", "badge", "name"])?;
    let mut db = Database::with_schema(schema);
    let mut sigma = FdSet::new();
    sigma.add(FunctionalDependency::from_names(
        db.schema(),
        "Emp",
        &["id"],
        &["badge", "name"],
    )?);
    sigma.add(FunctionalDependency::from_names(
        db.schema(),
        "Emp",
        &["badge"],
        &["id", "name"],
    )?);

    // The paper's own two-fact example first.
    db.insert_values("Emp", [Value::int(1), Value::int(101), Value::str("Alice")])?;
    db.insert_values("Emp", [Value::int(1), Value::int(101), Value::str("Tom")])?;

    // Then a few hundred synthetic integration records with occasional
    // disagreements on id/badge/name.
    let mut rng = StdRng::seed_from_u64(2026);
    for person in 2..120i64 {
        let sources = rng.random_range(1..=3);
        for s in 0..sources {
            let id = person;
            // 15 % of the extra source records disagree about the badge,
            // 20 % about the name spelling.
            let badge = if s > 0 && rng.random_bool(0.15) {
                1000 + person
            } else {
                100 + person
            };
            let name = if s > 0 && rng.random_bool(0.2) {
                format!("person-{person}-alt")
            } else {
                format!("person-{person}")
            };
            db.insert_values("Emp", [Value::int(id), Value::int(badge), Value::str(name)])?;
        }
    }
    println!(
        "integrated database: {} facts, consistent: {}",
        db.len(),
        sigma.satisfied_by_database(&db)
    );

    // Uniform repairs / sequences are not available here — the constraints
    // are keys but not primary keys — and the library says so explicitly.
    match OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_repairs()) {
        Err(CoreError::Unsupported { .. }) => {
            println!("uniform repairs: unsupported for two keys per relation (open problem in the paper)")
        }
        Err(other) => println!("unexpected error: {other}"),
        Ok(_) => println!("unexpected: uniform repairs accepted a non-primary-key instance"),
    }

    // Uniform operations work for arbitrary keys (Theorem 7.1(2)).
    let estimator = OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_operations())?;
    let params = ApproximationParams::new(0.1, 0.05)?;
    let mut rng = StdRng::seed_from_u64(7);

    println!("\nhow reliable is each reading of employee 1's name?");
    for name in ["Alice", "Tom"] {
        let query = parse_query(db.schema(), &format!("Ans() :- Emp(1, b, '{name}')"))?;
        let evaluator = QueryEvaluator::new(query);
        let estimate = estimator.estimate(&evaluator, &[], params, &mut rng)?;
        println!(
            "  P[{name} survives repairing] ≈ {:.3}   ({} samples)",
            estimate.value, estimate.samples
        );
    }

    println!("\nconflict-free employees keep probability ≈ 1:");
    let query = parse_query(db.schema(), "Ans() :- Emp(x, y, 'person-2')")?;
    let evaluator = QueryEvaluator::new(query);
    let estimate = estimator.estimate(&evaluator, &[], params, &mut rng)?;
    println!("  P[person-2 survives] ≈ {:.3}", estimate.value);
    Ok(())
}
