//! The running example of the paper (Example 3.6 / Figure 1 / Section 4),
//! reproduced end to end: the repairing Markov chain, the three uniform
//! generators, and the resulting operational semantics.
//!
//! ```text
//! cargo run --example paper_example
//! ```

use uocqa::db::{Database, FdSet, FunctionalDependency, Schema, Value};
use uocqa::query::{parser::parse_query, QueryEvaluator};
use uocqa::repair::{GeneratorSpec, OperationalSemantics, TreeLimits};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // D = {f1, f2, f3} over R(A, B, C), Σ = {R: A → B, R: C → B}.
    let mut schema = Schema::new();
    schema.add_relation("R", &["A", "B", "C"])?;
    let mut db = Database::with_schema(schema);
    for (a, b, c) in [("a1", "b1", "c1"), ("a1", "b2", "c2"), ("a2", "b1", "c2")] {
        db.insert_values("R", [Value::str(a), Value::str(b), Value::str(c)])?;
    }
    let mut sigma = FdSet::new();
    sigma.add(FunctionalDependency::from_names(
        db.schema(),
        "R",
        &["A"],
        &["B"],
    )?);
    sigma.add(FunctionalDependency::from_names(
        db.schema(),
        "R",
        &["C"],
        &["B"],
    )?);

    println!("database D:");
    for (id, fact) in db.iter() {
        println!("  {id} = {}", fact.display(db.schema()));
    }

    for spec in [
        GeneratorSpec::uniform_sequences(),
        GeneratorSpec::uniform_repairs(),
        GeneratorSpec::uniform_operations(),
    ] {
        let chain = spec.build_chain(&db, &sigma, TreeLimits::default())?;
        let tree = chain.tree();
        println!("\n=== {} ===", spec.short_name());
        println!(
            "repairing tree: {} sequences, {} complete",
            tree.node_count(),
            tree.leaf_count()
        );
        print!(
            "root transition probabilities (p1..p{}):",
            tree.children(tree.root()).len()
        );
        for &child in tree.children(tree.root()) {
            print!(
                " {}={}",
                tree.operation(child).expect("child edges are labelled"),
                chain.edge_probability(child)
            );
        }
        println!();
        let semantics = OperationalSemantics::from_chain(&chain);
        println!("operational repairs and probabilities:");
        for entry in semantics.repairs() {
            println!(
                "  {} with probability {}",
                db.render_subset(&entry.repair),
                entry.probability
            );
        }
    }

    // Operational CQA for an atomic query: does some kept fact have B = b1?
    let query = parse_query(db.schema(), "Ans() :- R(x, 'b1', y)")?;
    let evaluator = QueryEvaluator::new(query);
    println!("\nP_M,Q(D, ()) for Q = Ans() :- R(x, b1, y):");
    for spec in [
        GeneratorSpec::uniform_repairs(),
        GeneratorSpec::uniform_sequences(),
        GeneratorSpec::uniform_operations(),
    ] {
        let chain = spec.build_chain(&db, &sigma, TreeLimits::default())?;
        let semantics = OperationalSemantics::from_chain(&chain);
        let p = semantics.entailment_probability(&db, &evaluator);
        println!("  {}: {} ≈ {:.4}", spec.short_name(), p, p.to_f64());
    }
    Ok(())
}
