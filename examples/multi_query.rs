//! Batched multi-query estimation: sample operational repairs once,
//! answer a whole bank of queries per draw.
//!
//! A monitoring dashboard asks many questions about the same inconsistent
//! database ("is sensor 3 still trusted?", "do rooms A and B agree?", …).
//! Running one FPRAS per question repeats the expensive part — drawing
//! operational repairs — once per question.  [`uocqa::core::fpras::BatchEstimator`]
//! compiles all questions into one shared [`uocqa::query::LineageBank`]
//! and drives a single sampling loop; each sampled repair updates every
//! per-question counter in one word-level pass, and the estimates are
//! bit-identical to the single-query runs under the same seed.
//!
//! ```text
//! cargo run --example multi_query
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use uocqa::core::exact::ExactSolver;
use uocqa::core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
use uocqa::db::{Database, FdSet, FunctionalDependency, Schema, Value};
use uocqa::query::{parser::parse_query, QueryEvaluator};
use uocqa::repair::GeneratorSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sensor readings with a non-key FD: each sensor reports one status
    // per room, but the payload timestamp keeps duplicate reports apart.
    let mut schema = Schema::new();
    schema.add_relation("Reading", &["sensor", "status", "ts"])?;
    let mut db = Database::with_schema(schema);
    let mut sigma = FdSet::new();
    sigma.add(FunctionalDependency::from_names(
        db.schema(),
        "Reading",
        &["sensor"],
        &["status"],
    )?);
    for (sensor, status, ts) in [
        (1, "ok", 100),
        (1, "fault", 101),
        (2, "ok", 102),
        (2, "ok", 103),
        (3, "fault", 104),
        (3, "ok", 105),
        (3, "fault", 106),
    ] {
        db.insert_values(
            "Reading",
            [Value::int(sensor), Value::str(status), Value::int(ts)],
        )?;
    }

    // The question bank: one Boolean query per sensor, plus a join.
    let texts = [
        "Ans() :- Reading(1, 'ok', x)",
        "Ans() :- Reading(2, 'ok', x)",
        "Ans() :- Reading(3, 'fault', x)",
        "Ans() :- Reading(x, 'fault', y), Reading(z, 'fault', w)",
    ];
    let evaluators: Vec<QueryEvaluator> = texts
        .iter()
        .map(|t| parse_query(db.schema(), t).map(QueryEvaluator::new))
        .collect::<Result<_, _>>()?;
    let bank: Vec<BatchQuery<'_>> = evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();

    // One shared sampling loop answers all four questions per draw; the
    // FD is not a key, so the supported generator is uniform operations
    // with singleton removals (Theorem 7.5).
    let spec = GeneratorSpec::uniform_operations().with_singleton_only();
    let estimator = BatchEstimator::new(&db, &sigma, spec)?;
    let params = ApproximationParams::new(0.05, 0.05)?.with_mode(EstimatorMode::FixedAdditive);
    let estimates = estimator.estimate_batch(&bank, params, &mut StdRng::seed_from_u64(42))?;

    // Exact ground truth (the instance is tiny), also batched: one pass
    // over the operational semantics for the whole bank.
    let refs: Vec<(&QueryEvaluator, &[Value])> =
        evaluators.iter().map(|e| (e, &[] as &[Value])).collect();
    let exact = ExactSolver::new(&db, &sigma).answer_probabilities(spec, &refs)?;

    println!("batched estimates ({} samples each):", estimates[0].samples);
    for ((text, estimate), exact) in texts.iter().zip(&estimates).zip(&exact) {
        println!(
            "  {text}\n    estimate {:.4}, exact {} ≈ {:.4}",
            estimate.value,
            exact,
            exact.to_f64()
        );
    }
    Ok(())
}
