//! Graph homomorphism counting and the fixed target graph of the
//! ♯H-Coloring reduction (Appendix B.1).

use ucqa_numeric::Natural;

use crate::UndirectedGraph;

/// A target graph for H-colouring: an undirected graph that may carry
/// self-loops (unlike [`UndirectedGraph`], which is simple).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetGraph {
    nodes: usize,
    adjacency: Vec<Vec<bool>>,
}

impl TargetGraph {
    /// Creates a target graph with `nodes` nodes and no edges.
    pub fn new(nodes: usize) -> Self {
        TargetGraph {
            nodes,
            adjacency: vec![vec![false; nodes]; nodes],
        }
    }

    /// Adds an (undirected) edge; `u == v` adds a self-loop.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        self.adjacency[u][v] = true;
        self.adjacency[v][u] = true;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Returns `true` iff `{u, v}` (or the self-loop on `u` when `u == v`)
    /// is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adjacency[u][v]
    }

    /// The fixed graph `H` used in the proof of Theorem 5.1(1): nodes
    /// `{0, 1, ?}` (encoded 0, 1, 2) with every edge and self-loop present
    /// **except** the self-loop on node 1.
    ///
    /// By the Dyer–Greenhill dichotomy this `H` makes ♯H-Coloring ♯P-hard:
    /// its single connected component is neither an isolated node, nor a
    /// complete graph with all loops, nor a complete bipartite graph
    /// without loops.
    pub fn hardness_gadget() -> Self {
        let mut h = TargetGraph::new(3);
        for u in 0..3 {
            for v in u..3 {
                if !(u == 1 && v == 1) {
                    h.add_edge(u, v);
                }
            }
        }
        h
    }
}

/// Counts the homomorphisms from `source` to `target`, i.e. the mappings
/// `h : V(G) → V(H)` such that every edge of `G` maps to an edge of `H`.
pub fn count_homomorphisms(source: &UndirectedGraph, target: &TargetGraph) -> Natural {
    let mut assignment = vec![usize::MAX; source.node_count()];
    let mut count = Natural::zero();
    search(source, target, 0, &mut assignment, &mut count);
    count
}

fn search(
    source: &UndirectedGraph,
    target: &TargetGraph,
    node: usize,
    assignment: &mut [usize],
    count: &mut Natural,
) {
    if node == source.node_count() {
        *count = &*count + &Natural::one();
        return;
    }
    for image in 0..target.node_count() {
        let compatible = source
            .neighbours(node)
            .filter(|&n| n < node)
            .all(|n| target.has_edge(assignment[n], image));
        if compatible {
            assignment[node] = image;
            search(source, target, node + 1, assignment, count);
            assignment[node] = usize::MAX;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardness_gadget_shape() {
        let h = TargetGraph::hardness_gadget();
        assert_eq!(h.node_count(), 3);
        assert!(h.has_edge(0, 0));
        assert!(h.has_edge(2, 2));
        assert!(!h.has_edge(1, 1));
        assert!(h.has_edge(0, 1));
        assert!(h.has_edge(1, 2));
        assert!(h.has_edge(0, 2));
    }

    #[test]
    fn homomorphisms_into_complete_loopless_graph_are_proper_colourings() {
        // hom(G, K_q without loops) = number of proper q-colourings.
        let mut k3 = TargetGraph::new(3);
        for u in 0..3 {
            for v in (u + 1)..3 {
                k3.add_edge(u, v);
            }
        }
        // A triangle has 3! = 6 proper 3-colourings.
        let triangle = UndirectedGraph::cycle(3);
        assert_eq!(count_homomorphisms(&triangle, &k3).to_u64(), Some(6));
        // A path on 3 nodes has 3·2·2 = 12 proper 3-colourings.
        let path = UndirectedGraph::path(3);
        assert_eq!(count_homomorphisms(&path, &k3).to_u64(), Some(12));
    }

    #[test]
    fn homomorphisms_into_single_looped_node() {
        let mut loop_node = TargetGraph::new(1);
        loop_node.add_edge(0, 0);
        let g = UndirectedGraph::cycle(4);
        assert_eq!(count_homomorphisms(&g, &loop_node).to_u64(), Some(1));
    }

    #[test]
    fn isolated_nodes_multiply_by_target_size() {
        let h = TargetGraph::hardness_gadget();
        let g = UndirectedGraph::new(4); // no edges
        assert_eq!(count_homomorphisms(&g, &h).to_u64(), Some(81));
    }

    #[test]
    fn hardness_gadget_count_for_single_edge() {
        // For a single edge {u, v}: all 9 assignments except (1,1) → 8.
        let g = UndirectedGraph::from_edges(2, &[(0, 1)]);
        let h = TargetGraph::hardness_gadget();
        assert_eq!(count_homomorphisms(&g, &h).to_u64(), Some(8));
    }
}
