//! # `ucqa-graphs`
//!
//! The graph-theoretic and propositional substrate behind the paper's
//! hardness results (Appendices B and E), built from scratch:
//!
//! * [`UndirectedGraph`] — simple undirected graphs with the notions the
//!   proofs use (degree, connectivity, non-trivial connectivity).
//! * [`independent_sets`] — exact counting of (non-empty) independent sets,
//!   the quantity `♯IS` of Proposition B.4 / Lemma B.5.
//! * [`homomorphism`] — graph homomorphism counting and the fixed graph `H`
//!   of the ♯H-Coloring reduction (Appendix B.1).
//! * [`edge_coloring`] — the constructive Misra–Gries proof of Vizing's
//!   theorem: a (Δ+1)-edge-colouring in polynomial time, required by the
//!   Proposition 5.5 construction.
//! * [`dnf`] — positive 2DNF formulas and ♯Pos2DNF (Appendix E.1).
//! * [`reductions`] — the reduction gadgets themselves: the ♯H-Coloring
//!   database `D_G`, the independent-set database of Proposition 5.5, the
//!   FD gadget `D_F` of Lemma 5.6, the ♯Pos2DNF database `D_φ`, and the
//!   oracle-style Turing-reduction drivers `HOM` and `SAT`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dnf;
pub mod edge_coloring;
pub mod homomorphism;
pub mod independent_sets;
pub mod reductions;
mod undirected;

pub use dnf::Positive2Dnf;
pub use undirected::UndirectedGraph;
