//! Simple undirected graphs.

use std::collections::BTreeSet;

/// A simple undirected graph over nodes `0..n` (no self-loops, no parallel
/// edges).
///
/// This is the ambient structure of all the reductions in Appendices B
/// and E; nodes are plain indices so that graphs translate directly into
/// database constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndirectedGraph {
    adjacency: Vec<BTreeSet<usize>>,
}

impl UndirectedGraph {
    /// Creates a graph with `nodes` isolated nodes.
    pub fn new(nodes: usize) -> Self {
        UndirectedGraph {
            adjacency: vec![BTreeSet::new(); nodes],
        }
    }

    /// Creates a graph from an edge list.
    ///
    /// # Panics
    /// Panics if an edge references a node `≥ nodes` or is a self-loop.
    pub fn from_edges(nodes: usize, edges: &[(usize, usize)]) -> Self {
        let mut graph = UndirectedGraph::new(nodes);
        for &(u, v) in edges {
            graph.add_edge(u, v);
        }
        graph
    }

    /// The complete graph on `nodes` nodes.
    pub fn complete(nodes: usize) -> Self {
        let mut graph = UndirectedGraph::new(nodes);
        for u in 0..nodes {
            for v in (u + 1)..nodes {
                graph.add_edge(u, v);
            }
        }
        graph
    }

    /// The cycle `C_n` (requires `nodes ≥ 3`).
    pub fn cycle(nodes: usize) -> Self {
        assert!(nodes >= 3, "a cycle needs at least three nodes");
        let mut graph = UndirectedGraph::new(nodes);
        for u in 0..nodes {
            graph.add_edge(u, (u + 1) % nodes);
        }
        graph
    }

    /// The path `P_n` on `nodes` nodes.
    pub fn path(nodes: usize) -> Self {
        let mut graph = UndirectedGraph::new(nodes);
        for u in 1..nodes {
            graph.add_edge(u - 1, u);
        }
        graph
    }

    /// Adds an undirected edge `{u, v}`.
    ///
    /// # Panics
    /// Panics on out-of-range nodes or self-loops.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.node_count() && v < self.node_count(),
            "node out of range"
        );
        assert_ne!(u, v, "self-loops are not allowed");
        self.adjacency[u].insert(v);
        self.adjacency[v].insert(u);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Returns `true` iff `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adjacency[u].contains(&v)
    }

    /// The neighbours of `u`.
    pub fn neighbours(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.adjacency[u].iter().copied()
    }

    /// The degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adjacency[u].len()
    }

    /// The maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// The edges as canonical `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::with_capacity(self.edge_count());
        for (u, neighbours) in self.adjacency.iter().enumerate() {
            for &v in neighbours {
                if u < v {
                    edges.push((u, v));
                }
            }
        }
        edges
    }

    /// Returns `true` iff the graph is connected (vacuously for ≤ 1 nodes).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut visited = vec![false; n];
        let mut stack = vec![0usize];
        visited[0] = true;
        let mut seen = 1;
        while let Some(u) = stack.pop() {
            for &v in &self.adjacency[u] {
                if !visited[v] {
                    visited[v] = true;
                    seen += 1;
                    stack.push(v);
                }
            }
        }
        seen == n
    }

    /// Returns `true` iff the graph has at least two nodes and is connected
    /// (the "non-trivially connected" notion of Appendix B.3).
    pub fn is_non_trivially_connected(&self) -> bool {
        self.node_count() >= 2 && self.is_connected()
    }

    /// The connected components as sorted node lists.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let n = self.node_count();
        let mut visited = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if visited[start] {
                continue;
            }
            let mut component = Vec::new();
            let mut stack = vec![start];
            visited[start] = true;
            while let Some(u) = stack.pop() {
                component.push(u);
                for &v in &self.adjacency[u] {
                    if !visited[v] {
                        visited[v] = true;
                        stack.push(v);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }

    /// The subgraph induced by `nodes`, with nodes renumbered `0..k` in the
    /// order given.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> UndirectedGraph {
        let index_of: std::collections::HashMap<usize, usize> = nodes
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let mut graph = UndirectedGraph::new(nodes.len());
        for (new_u, &old_u) in nodes.iter().enumerate() {
            for &old_v in &self.adjacency[old_u] {
                if let Some(&new_v) = index_of.get(&old_v) {
                    if new_u < new_v {
                        graph.add_edge(new_u, new_v);
                    }
                }
            }
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_basic_queries() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.edges(), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn standard_graph_families() {
        assert_eq!(UndirectedGraph::complete(5).edge_count(), 10);
        assert_eq!(UndirectedGraph::cycle(5).edge_count(), 5);
        assert_eq!(UndirectedGraph::path(5).edge_count(), 4);
        assert_eq!(UndirectedGraph::complete(4).max_degree(), 3);
    }

    #[test]
    fn connectivity() {
        let mut g = UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        assert!(!g.is_non_trivially_connected());
        assert_eq!(g.connected_components().len(), 2);
        g.add_edge(1, 2);
        assert!(g.is_connected());
        assert!(g.is_non_trivially_connected());
        assert!(UndirectedGraph::new(1).is_connected());
        assert!(!UndirectedGraph::new(1).is_non_trivially_connected());
        assert!(UndirectedGraph::new(0).is_connected());
    }

    #[test]
    fn induced_subgraph_renumbers_nodes() {
        let g = UndirectedGraph::cycle(5);
        let sub = g.induced_subgraph(&[0, 1, 2]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        let mut g = UndirectedGraph::new(2);
        g.add_edge(1, 1);
    }
}
