//! Exact counting of independent sets.
//!
//! `♯IS` is the counting problem the inapproximability results of
//! Proposition 5.5 / Theorem E.1(3) bootstrap from (via reference \[22\] of the paper).
//! Exact counting is ♯P-hard in general; the branching algorithm below
//! (`IS(G) = IS(G − v) + IS(G − N[v])` on a maximum-degree vertex, with
//! connected-component decomposition) is exponential in the worst case but
//! entirely adequate for the instance sizes used to validate the
//! reductions.

use ucqa_numeric::Natural;

use crate::UndirectedGraph;

/// Counts all independent sets of `graph`, including the empty set.
pub fn count_independent_sets(graph: &UndirectedGraph) -> Natural {
    // Work on a mutable "alive" mask; recursion branches on a vertex of
    // maximum degree, which keeps the branching tree small.
    let alive: Vec<usize> = (0..graph.node_count()).collect();
    count_on(graph, &alive)
}

/// Counts the non-empty independent sets of `graph` — the quantity
/// `♯IS_{≠∅}` of Appendix E.3.
pub fn count_nonempty_independent_sets(graph: &UndirectedGraph) -> Natural {
    &count_independent_sets(graph) - &Natural::one()
}

fn count_on(graph: &UndirectedGraph, alive: &[usize]) -> Natural {
    if alive.is_empty() {
        return Natural::one();
    }
    // Decompose into connected components of the induced subgraph: the
    // count multiplies across components.
    let induced = graph.induced_subgraph(alive);
    let components = induced.connected_components();
    if components.len() > 1 {
        let mut product = Natural::one();
        for component in components {
            let original: Vec<usize> = component.iter().map(|&i| alive[i]).collect();
            product = &product * &count_on(graph, &original);
        }
        return product;
    }
    // A single component: an isolated vertex doubles the count; otherwise
    // branch on a vertex of maximum degree.
    if alive.len() == 1 {
        return Natural::from_u64(2);
    }
    let branch_vertex = alive
        .iter()
        .copied()
        .max_by_key(|&v| graph.neighbours(v).filter(|n| alive.contains(n)).count())
        .expect("non-empty alive set");

    // Exclude the branch vertex.
    let without: Vec<usize> = alive
        .iter()
        .copied()
        .filter(|&v| v != branch_vertex)
        .collect();
    let excluded = count_on(graph, &without);
    // Include it: drop its closed neighbourhood.
    let closed: Vec<usize> = alive
        .iter()
        .copied()
        .filter(|&v| v != branch_vertex && !graph.has_edge(v, branch_vertex))
        .collect();
    let included = count_on(graph, &closed);
    &excluded + &included
}

/// Enumerates the independent sets explicitly (as sorted node lists).
/// Exponential output; intended for tests on small graphs.
pub fn enumerate_independent_sets(graph: &UndirectedGraph) -> Vec<Vec<usize>> {
    let mut results = Vec::new();
    let mut current = Vec::new();
    enumerate_from(graph, 0, &mut current, &mut results);
    results
}

fn enumerate_from(
    graph: &UndirectedGraph,
    next: usize,
    current: &mut Vec<usize>,
    results: &mut Vec<Vec<usize>>,
) {
    if next == graph.node_count() {
        results.push(current.clone());
        return;
    }
    // Exclude `next`.
    enumerate_from(graph, next + 1, current, results);
    // Include `next` when compatible.
    if current.iter().all(|&v| !graph.has_edge(v, next)) {
        current.push(next);
        enumerate_from(graph, next + 1, current, results);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_counts_for_standard_graphs() {
        // Path P_n has F(n+2) independent sets (Fibonacci).
        assert_eq!(
            count_independent_sets(&UndirectedGraph::path(1)).to_u64(),
            Some(2)
        );
        assert_eq!(
            count_independent_sets(&UndirectedGraph::path(2)).to_u64(),
            Some(3)
        );
        assert_eq!(
            count_independent_sets(&UndirectedGraph::path(3)).to_u64(),
            Some(5)
        );
        assert_eq!(
            count_independent_sets(&UndirectedGraph::path(4)).to_u64(),
            Some(8)
        );
        assert_eq!(
            count_independent_sets(&UndirectedGraph::path(5)).to_u64(),
            Some(13)
        );
        // Complete graph K_n has n + 1 independent sets.
        assert_eq!(
            count_independent_sets(&UndirectedGraph::complete(6)).to_u64(),
            Some(7)
        );
        // Cycle C_n has Lucas numbers L_n.
        assert_eq!(
            count_independent_sets(&UndirectedGraph::cycle(5)).to_u64(),
            Some(11)
        );
        assert_eq!(
            count_independent_sets(&UndirectedGraph::cycle(6)).to_u64(),
            Some(18)
        );
        // Empty graph on n nodes: 2^n.
        assert_eq!(
            count_independent_sets(&UndirectedGraph::new(10)).to_u64(),
            Some(1024)
        );
    }

    #[test]
    fn nonempty_count_is_one_less() {
        let g = UndirectedGraph::cycle(5);
        assert_eq!(count_nonempty_independent_sets(&g).to_u64(), Some(10));
    }

    #[test]
    fn counting_matches_enumeration_on_random_like_graphs() {
        let graphs = [
            UndirectedGraph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 5)]),
            UndirectedGraph::from_edges(
                7,
                &[
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (3, 4),
                    (4, 5),
                    (5, 6),
                    (6, 0),
                    (0, 3),
                    (2, 5),
                ],
            ),
            UndirectedGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]),
        ];
        for graph in &graphs {
            let enumerated = enumerate_independent_sets(graph);
            // Every enumerated set really is independent.
            for set in &enumerated {
                for (i, &u) in set.iter().enumerate() {
                    for &v in &set[i + 1..] {
                        assert!(!graph.has_edge(u, v));
                    }
                }
            }
            assert_eq!(
                count_independent_sets(graph).to_u64(),
                Some(enumerated.len() as u64)
            );
        }
    }
}
