//! The paper's hardness-reduction constructions.
//!
//! Each reduction builds a database (and fixed constraint set + query) from
//! a combinatorial object and relates a counting quantity on that object to
//! a relative frequency / repair count on the database:
//!
//! * [`HColoringReduction`] — Theorem 5.1(1) (reused by Theorems 6.1(1) and
//!   7.1(1)): `♯H-Coloring(G) = 3^{|V|} · (1 − rrfreq_{Σ,Q}(D_G, ()))`.
//! * [`IndependentSetReduction`] — Proposition 5.5: a bounded-degree graph
//!   `G` becomes a database whose conflict graph is isomorphic to `G` via a
//!   Vizing `(Δ+1)`-edge colouring, so `|CORep(D_G, Σ_K)| = |IS(G)|`.
//! * [`FdGadget`] — Lemma 5.6: one extra "poison" fact plus an extra FD
//!   give `|CORep(D_F, Σ_F)| = |CORep(D, Σ_K)| + 1` and
//!   `rrfreq_{Σ_F,Q_F}(D_F, ()) = 1 / (|CORep(D, Σ_K)| + 1)`.
//! * [`Pos2DnfReduction`] — Theorems E.1(1), E.8(1), E.11:
//!   `♯Pos2DNF(φ) = 2^{|var(φ)|} · rrfreq¹_{Σ,Q}(D_φ, ())`.
//!
//! The reductions are *oracle-style* (polynomial-time Turing reductions):
//! the driver functions take a closure playing the role of the
//! `RRFreq`/`SRFreq` oracle, so they can be run both with the exact solvers
//! (validating the reduction) and with the FPRAS (reproducing the
//! approximability-transfer arguments).

use std::sync::Arc;

use ucqa_db::{ConflictGraph, Database, FactId, FdSet, FunctionalDependency, Schema, Value};
use ucqa_numeric::{Natural, Ratio};
use ucqa_query::{parser::parse_query, ConjunctiveQuery};

use crate::edge_coloring::misra_gries_edge_coloring;
use crate::{Positive2Dnf, UndirectedGraph};

/// The ♯H-Coloring reduction of Theorem 5.1(1).
#[derive(Debug, Clone)]
pub struct HColoringReduction {
    schema: Arc<Schema>,
    sigma: FdSet,
    query: ConjunctiveQuery,
}

impl Default for HColoringReduction {
    fn default() -> Self {
        Self::new()
    }
}

impl HColoringReduction {
    /// Builds the fixed schema `{V/2, E/2, T/1}`, the single primary key
    /// `V : A → B`, and the Boolean query
    /// `Ans() :- E(x, y), V(x, z), V(y, z), T(z)`.
    pub fn new() -> Self {
        let mut schema = Schema::new();
        schema.add_relation("V", &["A", "B"]).expect("fresh schema");
        schema.add_relation("E", &["S", "T"]).expect("fresh schema");
        schema.add_relation("T", &["X"]).expect("fresh schema");
        let schema = Arc::new(schema);
        let mut sigma = FdSet::new();
        sigma.add(
            FunctionalDependency::from_names(&schema, "V", &["A"], &["B"])
                .expect("V has attributes A and B"),
        );
        let query = parse_query(&schema, "Ans() :- E(x, y), V(x, z), V(y, z), T(z)")
            .expect("fixed query is well-formed");
        HColoringReduction {
            schema,
            sigma,
            query,
        }
    }

    /// The constraint set `Σ` (a single primary key).
    pub fn sigma(&self) -> &FdSet {
        &self.sigma
    }

    /// The fixed Boolean conjunctive query `Q`.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// Encodes an undirected graph `G` as the database `D_G`:
    /// `{V(u, 0), V(u, 1) | u ∈ V_G} ∪ {E(u, v) | {u,v} ∈ E_G} ∪ {T(1)}`.
    pub fn database(&self, graph: &UndirectedGraph) -> Database {
        let mut db = Database::new(Arc::clone(&self.schema));
        for u in 0..graph.node_count() {
            let node = Value::str(format!("u{u}"));
            db.insert_values("V", [node.clone(), Value::int(0)])
                .expect("schema matches");
            db.insert_values("V", [node, Value::int(1)])
                .expect("schema matches");
        }
        for (u, v) in graph.edges() {
            db.insert_values(
                "E",
                [Value::str(format!("u{u}")), Value::str(format!("u{v}"))],
            )
            .expect("schema matches");
        }
        db.insert_values("T", [Value::int(1)])
            .expect("schema matches");
        db
    }

    /// The `HOM` driver: computes `♯hom(G, H) = 3^{|V_G|} · (1 − r)` where
    /// `r` is the value returned by the `RRFreq(Σ, Q)` oracle on `D_G`.
    ///
    /// With the exact oracle the result is exactly the homomorphism count;
    /// with an FPRAS oracle it is a `(1 ± ε)`-approximation scaled by
    /// `3^{|V_G|}`.
    pub fn hom_count_via_oracle<F>(&self, graph: &UndirectedGraph, oracle: F) -> Ratio
    where
        F: FnOnce(&Database, &ConjunctiveQuery) -> Ratio,
    {
        let db = self.database(graph);
        let r = oracle(&db, &self.query);
        let total = Ratio::from_natural(Natural::from_u64(3).pow(graph.node_count() as u32));
        &total * &(&Ratio::one() - &r)
    }
}

/// The independent-set reduction of Proposition 5.5.
#[derive(Debug, Clone)]
pub struct IndependentSetReduction {
    arity: usize,
    schema: Arc<Schema>,
    sigma: FdSet,
}

impl IndependentSetReduction {
    /// Builds the schema `{R/(Δ+1)}` and the key set
    /// `Σ_K = {R : A_i → att(R) | i ∈ [Δ+1]}` for graphs of maximum degree
    /// at most `max_degree`.
    pub fn new(max_degree: usize) -> Self {
        let arity = max_degree + 1;
        let mut schema = Schema::new();
        schema
            .add_relation_with_arity("R", arity)
            .expect("fresh schema");
        let schema = Arc::new(schema);
        let relation = schema.relation_id("R").expect("R was just added");
        let mut sigma = FdSet::new();
        for i in 0..arity {
            sigma.add(
                FunctionalDependency::key(&schema, relation, [ucqa_db::AttributeId::new(i)])
                    .expect("attribute index within arity"),
            );
        }
        IndependentSetReduction {
            arity,
            schema,
            sigma,
        }
    }

    /// The key set `Σ_K`.
    pub fn sigma(&self) -> &FdSet {
        &self.sigma
    }

    /// Encodes a graph of maximum degree `≤ Δ` as a database `D_G` with one
    /// fact per node, using a Vizing `(Δ+1)`-edge colouring so that two
    /// facts conflict iff the corresponding nodes are adjacent.
    ///
    /// # Panics
    /// Panics if the graph's maximum degree exceeds the `max_degree` this
    /// reduction was built for.
    pub fn database(&self, graph: &UndirectedGraph) -> Database {
        assert!(
            graph.max_degree() < self.arity,
            "graph degree {} exceeds the reduction's bound {}",
            graph.max_degree(),
            self.arity - 1
        );
        let coloring = misra_gries_edge_coloring(graph);
        let mut db = Database::new(Arc::clone(&self.schema));
        let mut fresh = 0usize;
        for v in 0..graph.node_count() {
            let mut values = Vec::with_capacity(self.arity);
            for position in 0..self.arity {
                // If v has an incident edge coloured `position`, share that
                // edge's constant with the other endpoint; otherwise use a
                // fresh constant.
                let edge = graph
                    .neighbours(v)
                    .find(|&w| coloring.color(v, w) == Some(position));
                match edge {
                    Some(w) => {
                        let (a, b) = if v < w { (v, w) } else { (w, v) };
                        values.push(Value::str(format!("e{a}_{b}")));
                    }
                    None => {
                        values.push(Value::str(format!("fresh{fresh}")));
                        fresh += 1;
                    }
                }
            }
            db.insert_values("R", values).expect("schema matches");
        }
        db
    }

    /// Checks that the conflict graph of `database(graph)` is isomorphic to
    /// `graph` under the identity mapping of node indices (Lemma B.6).
    pub fn conflict_graph_matches(&self, graph: &UndirectedGraph, db: &Database) -> bool {
        let cg = ConflictGraph::build(db, &self.sigma);
        if cg.node_count() != graph.node_count() || cg.edge_count() != graph.edge_count() {
            return false;
        }
        graph
            .edges()
            .into_iter()
            .all(|(u, v)| cg.neighbours(FactId::new(u)).contains(&FactId::new(v)))
    }
}

/// The FD gadget of Lemma 5.6.
#[derive(Debug, Clone)]
pub struct FdGadget {
    schema: Arc<Schema>,
    sigma: FdSet,
    query: ConjunctiveQuery,
    arity: usize,
}

impl FdGadget {
    /// Builds the gadget for source databases over a single relation of the
    /// given arity constrained by keys: the target relation `R'` has two
    /// extra leading attributes, every source key becomes a (non-key) FD,
    /// and the extra FD `R' : A → B` makes the poison fact conflict with
    /// everything.
    pub fn new(source_arity: usize, source_sigma: &FdSet) -> Self {
        let arity = source_arity + 2;
        let mut schema = Schema::new();
        let mut attributes: Vec<String> = vec!["A".to_string(), "B".to_string()];
        attributes.extend((1..=source_arity).map(|i| format!("A{i}")));
        let attribute_refs: Vec<&str> = attributes.iter().map(String::as_str).collect();
        schema
            .add_relation("Rp", &attribute_refs)
            .expect("fresh schema");
        let schema = Arc::new(schema);
        let relation = schema.relation_id("Rp").expect("Rp was just added");

        let mut sigma = FdSet::new();
        for (_, fd) in source_sigma.iter() {
            let shift = |attrs: &std::collections::BTreeSet<ucqa_db::AttributeId>| {
                attrs
                    .iter()
                    .map(|a| ucqa_db::AttributeId::new(a.index() + 2))
                    .collect::<Vec<_>>()
            };
            sigma.add(
                FunctionalDependency::new(&schema, relation, shift(fd.lhs()), shift(fd.rhs()))
                    .expect("shifted attributes stay within the larger arity"),
            );
        }
        sigma.add(
            FunctionalDependency::from_names(&schema, "Rp", &["A"], &["B"])
                .expect("Rp has attributes A and B"),
        );

        // Q_F: Ans() :- R'(x, x, …, x).
        let variables = vec!["x"; arity].join(", ");
        let query = parse_query(&schema, &format!("Ans() :- Rp({variables})"))
            .expect("fixed query is well-formed");

        FdGadget {
            schema,
            sigma,
            query,
            arity,
        }
    }

    /// The FD set `Σ_F`.
    pub fn sigma(&self) -> &FdSet {
        &self.sigma
    }

    /// The Boolean query `Q_F` asking for an all-equal tuple.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// Builds `D_F` from a source database: every source fact
    /// `R(a₁,…,aₙ)` becomes `R'(a, b, a₁,…,aₙ)`, plus the poison fact
    /// `R'(a, a, …, a)`.
    pub fn database(&self, source: &Database) -> Database {
        let mut db = Database::new(Arc::clone(&self.schema));
        let marker_a = Value::str("⊤a");
        let marker_b = Value::str("⊤b");
        for (_, fact) in source.iter() {
            let mut values = Vec::with_capacity(self.arity);
            values.push(marker_a.clone());
            values.push(marker_b.clone());
            values.extend(fact.values().iter().cloned());
            db.insert_values("Rp", values).expect("schema matches");
        }
        db.insert_values("Rp", vec![marker_a; self.arity])
            .expect("schema matches");
        db
    }

    /// The transfer step of Lemma 5.6: recovers `|CORep(D, Σ_K)|` from the
    /// value of the `RRFreq(Σ_F, Q_F)` oracle on `D_F` via
    /// `|CORep(D, Σ_K)| = 1 / rrfreq − 1` (exact oracle), and via the
    /// truncated estimator `1 / max{p, r̃} − 1` (approximate oracle), where
    /// `p` is a guard against division by very small estimates.
    pub fn corep_count_via_oracle<F>(&self, source: &Database, oracle: F) -> Ratio
    where
        F: FnOnce(&Database, &ConjunctiveQuery) -> Ratio,
    {
        let db = self.database(source);
        let r = oracle(&db, &self.query);
        assert!(
            !r.is_zero(),
            "RRFreq of the gadget query is always positive"
        );
        &r.recip() - &Ratio::one()
    }
}

/// The ♯Pos2DNF reduction of Theorem E.1(1).
#[derive(Debug, Clone)]
pub struct Pos2DnfReduction {
    schema: Arc<Schema>,
    sigma: FdSet,
    query: ConjunctiveQuery,
}

impl Default for Pos2DnfReduction {
    fn default() -> Self {
        Self::new()
    }
}

impl Pos2DnfReduction {
    /// Builds the fixed schema `{V/2, C/2, T/1}`, the primary key
    /// `V : A → B`, and the Boolean query
    /// `Ans() :- C(x, y), V(x, z), V(y, z), T(z)`.
    pub fn new() -> Self {
        let mut schema = Schema::new();
        schema.add_relation("V", &["A", "B"]).expect("fresh schema");
        schema.add_relation("C", &["S", "T"]).expect("fresh schema");
        schema.add_relation("T", &["X"]).expect("fresh schema");
        let schema = Arc::new(schema);
        let mut sigma = FdSet::new();
        sigma.add(
            FunctionalDependency::from_names(&schema, "V", &["A"], &["B"])
                .expect("V has attributes A and B"),
        );
        let query = parse_query(&schema, "Ans() :- C(x, y), V(x, z), V(y, z), T(z)")
            .expect("fixed query is well-formed");
        Pos2DnfReduction {
            schema,
            sigma,
            query,
        }
    }

    /// The constraint set `Σ` (a single primary key).
    pub fn sigma(&self) -> &FdSet {
        &self.sigma
    }

    /// The fixed Boolean conjunctive query `Q`.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// Encodes a positive 2DNF formula `φ` as the database `D_φ`.
    pub fn database(&self, formula: &Positive2Dnf) -> Database {
        let mut db = Database::new(Arc::clone(&self.schema));
        for x in 0..formula.variable_count() {
            let var = Value::str(format!("x{x}"));
            db.insert_values("V", [var.clone(), Value::int(0)])
                .expect("schema matches");
            db.insert_values("V", [var, Value::int(1)])
                .expect("schema matches");
        }
        for &(x, y) in formula.clauses() {
            db.insert_values(
                "C",
                [Value::str(format!("x{x}")), Value::str(format!("x{y}"))],
            )
            .expect("schema matches");
        }
        db.insert_values("T", [Value::int(1)])
            .expect("schema matches");
        db
    }

    /// The `SAT` driver: `♯Pos2DNF(φ) = 2^{|var(φ)|} · r`, where `r` is the
    /// value returned by the `RRFreq¹(Σ, Q)` oracle on `D_φ`.
    pub fn sat_count_via_oracle<F>(&self, formula: &Positive2Dnf, oracle: F) -> Ratio
    where
        F: FnOnce(&Database, &ConjunctiveQuery) -> Ratio,
    {
        let db = self.database(formula);
        let r = oracle(&db, &self.query);
        let total = Ratio::from_natural(formula.assignment_count());
        &total * &r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homomorphism::{count_homomorphisms, TargetGraph};
    use crate::independent_sets::count_independent_sets;
    use ucqa_core::ExactSolver;
    use ucqa_query::QueryEvaluator;

    #[test]
    fn h_coloring_reduction_matches_brute_force() {
        let reduction = HColoringReduction::new();
        let h = TargetGraph::hardness_gadget();
        let graphs = [
            UndirectedGraph::from_edges(2, &[(0, 1)]),
            UndirectedGraph::path(3),
            UndirectedGraph::cycle(3),
            UndirectedGraph::cycle(4),
            UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 2)]),
        ];
        for graph in &graphs {
            let expected = count_homomorphisms(graph, &h);
            let sigma = reduction.sigma().clone();
            let via_reduction = reduction.hom_count_via_oracle(graph, |db, query| {
                let solver = ExactSolver::new(db, &sigma);
                let evaluator = QueryEvaluator::new(query.clone());
                solver.rrfreq(&evaluator, &[], false).unwrap()
            });
            assert_eq!(
                via_reduction,
                Ratio::from_natural(expected.clone()),
                "graph with {} nodes / {} edges",
                graph.node_count(),
                graph.edge_count()
            );
        }
    }

    #[test]
    fn h_coloring_reduction_also_works_for_srfreq_and_uniform_operations() {
        // Theorems 6.1(1) and 7.1(1): the same construction works because
        // rrfreq = srfreq = P_{M^uo,Q} on D_G.
        let reduction = HColoringReduction::new();
        let h = TargetGraph::hardness_gadget();
        let graph = UndirectedGraph::cycle(3);
        let expected = Ratio::from_natural(count_homomorphisms(&graph, &h));
        let sigma = reduction.sigma().clone();

        let via_srfreq = reduction.hom_count_via_oracle(&graph, |db, query| {
            let solver = ExactSolver::new(db, &sigma);
            let evaluator = QueryEvaluator::new(query.clone());
            solver.srfreq(&evaluator, &[], false).unwrap()
        });
        assert_eq!(via_srfreq, expected);

        let via_uo = reduction.hom_count_via_oracle(&graph, |db, query| {
            let solver = ExactSolver::new(db, &sigma);
            let evaluator = QueryEvaluator::new(query.clone());
            solver
                .answer_probability(
                    ucqa_repair::GeneratorSpec::uniform_operations(),
                    &evaluator,
                    &[],
                )
                .unwrap()
        });
        assert_eq!(via_uo, expected);
    }

    #[test]
    fn independent_set_reduction_preserves_the_conflict_graph() {
        let graphs = [
            UndirectedGraph::path(4),
            UndirectedGraph::cycle(5),
            UndirectedGraph::complete(4),
            UndirectedGraph::from_edges(
                6,
                &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)],
            ),
        ];
        for graph in &graphs {
            let reduction = IndependentSetReduction::new(graph.max_degree());
            let db = reduction.database(graph);
            assert_eq!(db.len(), graph.node_count());
            assert!(reduction.conflict_graph_matches(graph, &db));
        }
    }

    #[test]
    fn independent_set_reduction_corep_count_equals_is_count() {
        // Lemma 5.4 + Lemma B.6: |CORep(D_G, Σ_K)| = |IS(G)| for
        // non-trivially connected G.
        for graph in [
            UndirectedGraph::path(4),
            UndirectedGraph::cycle(5),
            UndirectedGraph::complete(4),
        ] {
            let reduction = IndependentSetReduction::new(graph.max_degree());
            let db = reduction.database(&graph);
            let solver = ExactSolver::new(&db, reduction.sigma());
            let corep = solver.candidate_repair_count(false).unwrap();
            let is_count = count_independent_sets(&graph);
            assert_eq!(corep, is_count, "graph {graph:?}");
        }
    }

    #[test]
    fn fd_gadget_adds_exactly_one_repair() {
        // Source: the independent-set database of a 5-cycle (11 repairs).
        let graph = UndirectedGraph::cycle(5);
        let reduction = IndependentSetReduction::new(graph.max_degree());
        let source = reduction.database(&graph);
        let source_solver = ExactSolver::new(&source, reduction.sigma());
        let source_count = source_solver.candidate_repair_count(false).unwrap();

        let gadget = FdGadget::new(
            source
                .schema()
                .arity(source.schema().relation_id("R").unwrap()),
            reduction.sigma(),
        );
        let target = gadget.database(&source);
        let target_solver = ExactSolver::new(&target, gadget.sigma());
        let target_count = target_solver.candidate_repair_count(false).unwrap();
        assert_eq!(target_count, &source_count + &Natural::one());

        // rrfreq(D_F, Q_F) = 1 / (|CORep(D, Σ_K)| + 1).
        let evaluator = QueryEvaluator::new(gadget.query().clone());
        let rrfreq = target_solver.rrfreq(&evaluator, &[], false).unwrap();
        assert_eq!(
            rrfreq,
            Ratio::new(Natural::one(), &source_count + &Natural::one())
        );

        // The oracle-style driver recovers the source repair count.
        let sigma = gadget.sigma().clone();
        let recovered = gadget.corep_count_via_oracle(&source, |db, query| {
            let solver = ExactSolver::new(db, &sigma);
            let evaluator = QueryEvaluator::new(query.clone());
            solver.rrfreq(&evaluator, &[], false).unwrap()
        });
        assert_eq!(recovered, Ratio::from_natural(source_count));
    }

    #[test]
    fn pos2dnf_reduction_matches_brute_force() {
        let reduction = Pos2DnfReduction::new();
        let formulas = [
            Positive2Dnf::new(3, vec![(0, 1), (1, 2)]),
            Positive2Dnf::new(4, vec![(0, 3)]),
            Positive2Dnf::new(4, vec![(0, 1), (2, 3), (0, 3)]),
            Positive2Dnf::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]),
        ];
        for formula in &formulas {
            let expected = formula.count_satisfying_assignments();
            let sigma = reduction.sigma().clone();
            let via_reduction = reduction.sat_count_via_oracle(formula, |db, query| {
                let solver = ExactSolver::new(db, &sigma);
                let evaluator = QueryEvaluator::new(query.clone());
                solver.rrfreq(&evaluator, &[], true).unwrap()
            });
            assert_eq!(via_reduction, Ratio::from_natural(expected));
        }
    }

    #[test]
    fn pos2dnf_reduction_also_works_under_uniform_sequences_and_operations() {
        // Theorems E.8(1) and E.11 reuse the construction: srfreq¹ and
        // P_{M^{uo,1},Q} coincide with rrfreq¹ on D_φ.
        let reduction = Pos2DnfReduction::new();
        let formula = Positive2Dnf::new(3, vec![(0, 1), (1, 2)]);
        let sigma = reduction.sigma().clone();
        let db = reduction.database(&formula);
        let solver = ExactSolver::new(&db, &sigma);
        let evaluator = QueryEvaluator::new(reduction.query().clone());
        let rrfreq1 = solver.rrfreq(&evaluator, &[], true).unwrap();
        let srfreq1 = solver.srfreq(&evaluator, &[], true).unwrap();
        let uo1 = solver
            .answer_probability(
                ucqa_repair::GeneratorSpec::uniform_operations().with_singleton_only(),
                &evaluator,
                &[],
            )
            .unwrap();
        assert_eq!(rrfreq1, srfreq1);
        assert_eq!(rrfreq1, uo1);
    }
}
