//! Positive 2DNF formulas and ♯Pos2DNF (Appendix E.1).

use std::collections::BTreeSet;

use ucqa_numeric::Natural;

/// A positive 2DNF formula `φ = C₁ ∨ … ∨ Cₙ`, where every clause `Cᵢ` is a
/// conjunction of two positive variables.
///
/// Variables are identified by indices `0..variable_count`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Positive2Dnf {
    variable_count: usize,
    clauses: Vec<(usize, usize)>,
}

impl Positive2Dnf {
    /// Creates a formula over `variable_count` variables with the given
    /// clauses (pairs of variable indices).
    ///
    /// # Panics
    /// Panics if a clause references a variable out of range.
    pub fn new(variable_count: usize, clauses: Vec<(usize, usize)>) -> Self {
        for &(x, y) in &clauses {
            assert!(
                x < variable_count && y < variable_count,
                "clause variable out of range"
            );
        }
        Positive2Dnf {
            variable_count,
            clauses,
        }
    }

    /// Number of variables (`|var(φ)|`).
    pub fn variable_count(&self) -> usize {
        self.variable_count
    }

    /// The clauses of the formula.
    pub fn clauses(&self) -> &[(usize, usize)] {
        &self.clauses
    }

    /// The variables that actually occur in some clause.
    pub fn occurring_variables(&self) -> BTreeSet<usize> {
        self.clauses.iter().flat_map(|&(x, y)| [x, y]).collect()
    }

    /// Evaluates the formula under an assignment (indexed by variable).
    ///
    /// # Panics
    /// Panics if the assignment has the wrong length.
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        assert_eq!(
            assignment.len(),
            self.variable_count,
            "assignment length mismatch"
        );
        self.clauses
            .iter()
            .any(|&(x, y)| assignment[x] && assignment[y])
    }

    /// Counts the satisfying assignments (`♯Pos2DNF`) by exhaustive
    /// enumeration — exponential, used as ground truth for the reduction.
    pub fn count_satisfying_assignments(&self) -> Natural {
        let n = self.variable_count;
        assert!(
            n <= 30,
            "exhaustive counting is limited to 30 variables; use the reduction for more"
        );
        let mut count = 0u64;
        for bits in 0u64..(1u64 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            if self.evaluate(&assignment) {
                count += 1;
            }
        }
        Natural::from_u64(count)
    }

    /// The total number of assignments, `2^{|var(φ)|}`.
    pub fn assignment_count(&self) -> Natural {
        Natural::from_u64(2).pow(self.variable_count as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_and_counting() {
        // φ = (x0 ∧ x1) ∨ (x1 ∧ x2) over 3 variables.
        let phi = Positive2Dnf::new(3, vec![(0, 1), (1, 2)]);
        assert!(phi.evaluate(&[true, true, false]));
        assert!(!phi.evaluate(&[true, false, true]));
        // Satisfying assignments: x1 must be true and (x0 ∨ x2):
        // {110, 011, 111} plus… enumerate: 110 ✓, 011 ✓, 111 ✓ → 3.
        assert_eq!(phi.count_satisfying_assignments().to_u64(), Some(3));
        assert_eq!(phi.assignment_count().to_u64(), Some(8));
        assert_eq!(phi.occurring_variables().len(), 3);
    }

    #[test]
    fn single_clause_formula() {
        let phi = Positive2Dnf::new(4, vec![(0, 3)]);
        // x0 ∧ x3 true, x1 and x2 free → 4 satisfying assignments.
        assert_eq!(phi.count_satisfying_assignments().to_u64(), Some(4));
    }

    #[test]
    fn empty_formula_is_unsatisfiable() {
        let phi = Positive2Dnf::new(3, vec![]);
        assert_eq!(phi.count_satisfying_assignments().to_u64(), Some(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_clause_rejected() {
        let _ = Positive2Dnf::new(2, vec![(0, 2)]);
    }
}
