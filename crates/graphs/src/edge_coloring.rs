//! Constructive Vizing edge colouring (Misra–Gries).
//!
//! The Proposition 5.5 construction turns a bounded-degree graph `G` into a
//! database `D_G` whose conflict graph is isomorphic to `G`; it needs a
//! proper edge colouring of `G` with `Δ + 1` colours, computed in
//! polynomial time.  The paper cites the constructive proof of Vizing's
//! theorem by Misra and Gries (reference \[20\] of the paper); this module implements that algorithm
//! (fan construction, `cd`-path inversion, fan rotation).

use std::collections::HashMap;

use crate::UndirectedGraph;

/// A proper edge colouring: adjacent edges receive distinct colours.
#[derive(Debug, Clone)]
pub struct EdgeColoring {
    colors: HashMap<(usize, usize), usize>,
    color_count: usize,
}

impl EdgeColoring {
    /// The colour of the edge `{u, v}`.
    pub fn color(&self, u: usize, v: usize) -> Option<usize> {
        self.colors.get(&canonical(u, v)).copied()
    }

    /// The number of colours available (Δ + 1).
    pub fn color_count(&self) -> usize {
        self.color_count
    }

    /// All `(edge, colour)` assignments.
    pub fn assignments(&self) -> impl Iterator<Item = ((usize, usize), usize)> + '_ {
        self.colors.iter().map(|(&e, &c)| (e, c))
    }

    /// Checks that the colouring is proper and total for `graph`.
    pub fn is_proper_for(&self, graph: &UndirectedGraph) -> bool {
        for (u, v) in graph.edges() {
            let Some(color) = self.color(u, v) else {
                return false;
            };
            for w in graph.neighbours(u) {
                if w != v && self.color(u, w) == Some(color) {
                    return false;
                }
            }
            for w in graph.neighbours(v) {
                if w != u && self.color(v, w) == Some(color) {
                    return false;
                }
            }
        }
        true
    }
}

fn canonical(u: usize, v: usize) -> (usize, usize) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Internal mutable colouring state with per-vertex colour indexes.
struct State {
    /// `incident[v][c]` = the neighbour reached from `v` by the edge
    /// coloured `c`, if any.
    incident: Vec<Vec<Option<usize>>>,
    colors: HashMap<(usize, usize), usize>,
}

impl State {
    fn new(nodes: usize, color_count: usize) -> Self {
        State {
            incident: vec![vec![None; color_count]; nodes],
            colors: HashMap::new(),
        }
    }

    fn color_of(&self, u: usize, v: usize) -> Option<usize> {
        self.colors.get(&canonical(u, v)).copied()
    }

    fn is_free(&self, v: usize, color: usize) -> bool {
        self.incident[v][color].is_none()
    }

    fn free_color(&self, v: usize) -> usize {
        self.incident[v]
            .iter()
            .position(Option::is_none)
            .expect("with Δ+1 colours every vertex has a free colour")
    }

    fn set_color(&mut self, u: usize, v: usize, color: usize) {
        if let Some(old) = self.color_of(u, v) {
            self.incident[u][old] = None;
            self.incident[v][old] = None;
        }
        self.colors.insert(canonical(u, v), color);
        self.incident[u][color] = Some(v);
        self.incident[v][color] = Some(u);
    }

    fn unset_color(&mut self, u: usize, v: usize) {
        if let Some(old) = self.colors.remove(&canonical(u, v)) {
            self.incident[u][old] = None;
            self.incident[v][old] = None;
        }
    }

    /// Inverts the maximal path starting at `u` that alternates the colours
    /// `d` and `c` (the `cd_u` path of the Misra–Gries procedure).
    fn invert_cd_path(&mut self, u: usize, c: usize, d: usize) {
        if c == d {
            return;
        }
        // Collect the path first (each vertex has at most one edge per
        // colour, so the walk is deterministic and cannot revisit).
        let mut path: Vec<(usize, usize, usize)> = Vec::new();
        let mut current = u;
        let mut color = d;
        while let Some(next) = self.incident[current][color] {
            path.push((current, next, color));
            current = next;
            color = if color == d { c } else { d };
        }
        // Remove and re-add with swapped colours.
        for &(a, b, _) in &path {
            self.unset_color(a, b);
        }
        for &(a, b, old) in &path {
            let new = if old == d { c } else { d };
            self.set_color(a, b, new);
        }
    }
}

/// Computes a proper `(Δ + 1)`-edge colouring of `graph` with the
/// Misra–Gries algorithm.
pub fn misra_gries_edge_coloring(graph: &UndirectedGraph) -> EdgeColoring {
    let color_count = graph.max_degree() + 1;
    let mut state = State::new(graph.node_count(), color_count.max(1));

    for (u, v) in graph.edges() {
        // 1. Build a maximal fan of u starting at v.
        let mut fan = vec![v];
        loop {
            let last = *fan.last().expect("fan starts non-empty");
            let mut extended = false;
            for color in 0..color_count {
                if !state.is_free(last, color) {
                    continue;
                }
                if let Some(w) = state.incident[u][color] {
                    if !fan.contains(&w) {
                        fan.push(w);
                        extended = true;
                        break;
                    }
                }
            }
            if !extended {
                break;
            }
        }

        // 2. Pick the free colours and invert the cd path through u.
        let c = state.free_color(u);
        let d = state.free_color(*fan.last().expect("fan is non-empty"));
        state.invert_cd_path(u, c, d);

        // 3. Find the shortest fan prefix ending at a vertex on which d is
        //    now free and which is still a fan, then rotate it.
        let mut chosen = None;
        'outer: for (j, &w) in fan.iter().enumerate() {
            if !state.is_free(w, d) {
                continue;
            }
            for i in 0..j {
                let next_color = state
                    .color_of(u, fan[i + 1])
                    .expect("fan edges beyond the first are coloured");
                if !state.is_free(fan[i], next_color) {
                    continue 'outer;
                }
            }
            chosen = Some(j);
            break;
        }
        let j = chosen.expect("Misra–Gries invariant: a rotatable fan prefix exists");

        // Rotate: shift colours towards the fan start, freeing (u, fan[j]).
        // Collect the target colours first, then clear all affected edges,
        // then reassign — assigning in place would momentarily give two
        // edges at `u` the same colour and corrupt the per-vertex index.
        let shifted: Vec<usize> = (0..j)
            .map(|i| {
                state
                    .color_of(u, fan[i + 1])
                    .expect("fan edges beyond the first are coloured")
            })
            .collect();
        for &w in fan.iter().take(j + 1) {
            state.unset_color(u, w);
        }
        for (i, &color) in shifted.iter().enumerate() {
            state.set_color(u, fan[i], color);
        }
        state.set_color(u, fan[j], d);
    }

    EdgeColoring {
        colors: state.colors,
        color_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(graph: &UndirectedGraph) {
        let coloring = misra_gries_edge_coloring(graph);
        assert!(
            coloring.is_proper_for(graph),
            "colouring is not proper for {graph:?}"
        );
        assert_eq!(coloring.color_count(), graph.max_degree() + 1);
        for ((u, v), color) in coloring.assignments() {
            assert!(graph.has_edge(u, v));
            assert!(color <= graph.max_degree());
        }
        assert_eq!(coloring.assignments().count(), graph.edge_count());
    }

    #[test]
    fn standard_graphs_are_colored_properly() {
        check(&UndirectedGraph::path(2));
        check(&UndirectedGraph::path(7));
        check(&UndirectedGraph::cycle(5));
        check(&UndirectedGraph::cycle(6));
        check(&UndirectedGraph::complete(4));
        check(&UndirectedGraph::complete(6));
        check(&UndirectedGraph::complete(7));
    }

    #[test]
    fn petersen_graph_is_colored_properly() {
        let petersen = UndirectedGraph::from_edges(
            10,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 0), // outer cycle
                (5, 7),
                (7, 9),
                (9, 6),
                (6, 8),
                (8, 5), // inner star
                (0, 5),
                (1, 6),
                (2, 7),
                (3, 8),
                (4, 9), // spokes
            ],
        );
        check(&petersen);
    }

    #[test]
    fn pseudo_random_graphs_are_colored_properly() {
        // A couple of deterministic "random-looking" graphs built from a
        // simple linear congruential sequence.
        for seed in [1u64, 7, 13, 99] {
            let nodes = 16usize;
            let mut graph = UndirectedGraph::new(nodes);
            let mut x = seed;
            for _ in 0..40 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (x >> 17) as usize % nodes;
                let v = (x >> 41) as usize % nodes;
                if u != v {
                    graph.add_edge(u, v);
                }
            }
            check(&graph);
        }
    }

    #[test]
    fn empty_and_single_edge_graphs() {
        check(&UndirectedGraph::new(3));
        check(&UndirectedGraph::from_edges(2, &[(0, 1)]));
    }
}
