//! Error types for the operational repair machinery.

use std::fmt;

use ucqa_db::DbError;

/// Errors raised while building repairing trees, Markov chains, or
/// operational semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairError {
    /// The explicit repairing tree would exceed the configured node limit.
    ///
    /// The number of repairing sequences is exponential in the database
    /// size; exact construction is only intended for small instances.
    TreeTooLarge {
        /// The configured limit that was exceeded.
        limit: usize,
    },
    /// An operation was applied that is not justified at the current step.
    UnjustifiedOperation {
        /// Position of the offending operation in the sequence (0-based).
        position: usize,
    },
    /// An operation refers to a fact outside the database's universe.
    FactOutOfRange {
        /// The offending fact index.
        index: usize,
        /// The size of the database universe.
        universe: usize,
    },
    /// An error from the underlying database layer (e.g. the constraint
    /// class required by a generator is not met).
    Db(DbError),
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::TreeTooLarge { limit } => write!(
                f,
                "the repairing tree exceeds the configured limit of {limit} nodes; \
                 use the sampling-based algorithms for databases of this size"
            ),
            RepairError::UnjustifiedOperation { position } => {
                write!(f, "operation at position {position} is not justified")
            }
            RepairError::FactOutOfRange { index, universe } => write!(
                f,
                "operation refers to fact #{index}, but the database has only {universe} facts"
            ),
            RepairError::Db(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RepairError {}

impl From<DbError> for RepairError {
    fn from(e: DbError) -> Self {
        RepairError::Db(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RepairError::TreeTooLarge { limit: 10_000 };
        assert!(e.to_string().contains("10000"));
        let e = RepairError::UnjustifiedOperation { position: 3 };
        assert!(e.to_string().contains('3'));
    }
}
