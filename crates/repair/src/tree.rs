//! The explicit repairing tree: `RS(D, Σ)` arranged as a rooted tree.

use std::collections::HashMap;

use ucqa_db::{Database, FactId, FactSet, FdSet, ViolationSet};

use crate::{
    operation::{justified_operations_into, OperationScratch},
    Operation, RepairError, RepairingSequence,
};

/// Identifier of a node of a [`RepairingTree`].
///
/// Nodes are allocated in depth-first preorder with children visited in the
/// canonical operation order, so `NodeId` order *is* the depth-first
/// traversal order — the ordering `≺` used to pick canonical sequences for
/// the uniform-repairs generator (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Limits guarding the exponential tree construction.
#[derive(Debug, Clone, Copy)]
pub struct TreeLimits {
    /// Maximum number of tree nodes to materialise.
    pub max_nodes: usize,
}

impl Default for TreeLimits {
    fn default() -> Self {
        TreeLimits {
            max_nodes: 2_000_000,
        }
    }
}

/// Buffers shared across the whole depth-first expansion.
#[derive(Debug, Default)]
struct ExpandScratch {
    violations: ViolationSet,
    live: Vec<FactId>,
    operations: OperationScratch,
}

#[derive(Debug, Clone)]
struct Node {
    parent: Option<NodeId>,
    /// Operation labelling the edge from the parent (None for the root).
    operation: Option<Operation>,
    /// The sub-database reached by this sequence, i.e. `s(D)`.
    subset: FactSet,
    children: Vec<NodeId>,
    depth: usize,
}

/// The tree of all `(D, Σ)`-repairing sequences.
///
/// * The root is the empty sequence `ε`.
/// * The children of a node `s` are its justified extensions
///   `Ops_s(D, Σ)`, in canonical operation order.
/// * The leaves are exactly the complete sequences `CRS(D, Σ)`.
///
/// With `singleton_only = true`, only single-fact removals are considered,
/// yielding the tree over `RS¹(D, Σ)` with leaves `CRS¹(D, Σ)`.
///
/// The tree is exponential in `|D|`; construction is guarded by
/// [`TreeLimits`].
#[derive(Debug, Clone)]
pub struct RepairingTree {
    nodes: Vec<Node>,
    leaves: Vec<NodeId>,
    singleton_only: bool,
}

impl RepairingTree {
    /// Builds the repairing tree of `db` w.r.t. `sigma`.
    pub fn build(
        db: &Database,
        sigma: &FdSet,
        singleton_only: bool,
        limits: TreeLimits,
    ) -> Result<Self, RepairError> {
        let mut tree = RepairingTree {
            nodes: Vec::new(),
            leaves: Vec::new(),
            singleton_only,
        };
        let root_subset = db.all_facts();
        tree.nodes.push(Node {
            parent: None,
            operation: None,
            subset: root_subset,
            children: Vec::new(),
            depth: 0,
        });
        // Recursive depth-first expansion (depth is bounded by |D|, since
        // every operation removes at least one fact); children are created
        // in canonical operation order, so node ids follow DFS preorder.
        // The violation-scan and dedup buffers are shared across the whole
        // expansion (each node recomputes before it reads, and only needs
        // its materialised operation list afterwards).
        let mut scratch = ExpandScratch::default();
        tree.expand(NodeId(0), db, sigma, limits.max_nodes, &mut scratch)?;
        Ok(tree)
    }

    fn expand(
        &mut self,
        node: NodeId,
        db: &Database,
        sigma: &FdSet,
        max_nodes: usize,
        scratch: &mut ExpandScratch,
    ) -> Result<(), RepairError> {
        let subset = self.nodes[node.index()].subset.clone();
        scratch
            .violations
            .recompute(db, sigma, &subset, &mut scratch.live);
        let mut operations = Vec::new();
        justified_operations_into(
            &scratch.violations,
            self.singleton_only,
            &mut scratch.operations,
            &mut operations,
        );
        if operations.is_empty() {
            self.leaves.push(node);
            return Ok(());
        }
        for op in operations {
            if self.nodes.len() >= max_nodes {
                return Err(RepairError::TreeTooLarge { limit: max_nodes });
            }
            let child_subset = op.applied_to(&subset);
            let child = NodeId(self.nodes.len() as u32);
            let depth = self.nodes[node.index()].depth + 1;
            self.nodes.push(Node {
                parent: Some(node),
                operation: Some(op),
                subset: child_subset,
                children: Vec::new(),
                depth,
            });
            self.nodes[node.index()].children.push(child);
            self.expand(child, db, sigma, max_nodes, scratch)?;
        }
        Ok(())
    }

    /// The root node (the empty sequence `ε`).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of nodes, i.e. `|RS(D, Σ)|` (or `|RS¹(D, Σ)|`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether this tree was built over singleton operations only.
    pub fn singleton_only(&self) -> bool {
        self.singleton_only
    }

    /// The children of a node, in canonical operation order.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].children
    }

    /// The parent of a node (None for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// The operation labelling the edge into `node` (None for the root).
    pub fn operation(&self, node: NodeId) -> Option<&Operation> {
        self.nodes[node.index()].operation.as_ref()
    }

    /// The sub-database `s(D)` reached by the sequence of `node`.
    pub fn subset(&self, node: NodeId) -> &FactSet {
        &self.nodes[node.index()].subset
    }

    /// The length of the sequence of `node`.
    pub fn depth(&self, node: NodeId) -> usize {
        self.nodes[node.index()].depth
    }

    /// Returns `true` iff `node` is a leaf (a complete sequence).
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.nodes[node.index()].children.is_empty()
    }

    /// The leaves, i.e. `CRS(D, Σ)`, in DFS (≺) order.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Number of leaves, i.e. `|CRS(D, Σ)|`.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Reconstructs the [`RepairingSequence`] of a node by walking to the
    /// root.
    pub fn sequence(&self, node: NodeId) -> RepairingSequence {
        let mut ops = Vec::with_capacity(self.depth(node));
        let mut current = node;
        while let Some(parent) = self.parent(current) {
            ops.push(
                self.operation(current)
                    .expect("non-root nodes always carry an operation")
                    .clone(),
            );
            current = parent;
        }
        ops.reverse();
        RepairingSequence::from_operations(ops)
    }

    /// Iterates over all node ids in DFS preorder.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// For every node `s`, the number of leaves of the subtree rooted at
    /// `s` — the quantity `|CRS_s(D, Σ)|` used by the uniform-sequences
    /// generator.
    pub fn subtree_leaf_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.nodes.len()];
        // Children have larger ids than their parent (DFS preorder), so a
        // reverse scan accumulates bottom-up.
        for index in (0..self.nodes.len()).rev() {
            if self.nodes[index].children.is_empty() {
                counts[index] = 1;
            } else {
                counts[index] = self.nodes[index]
                    .children
                    .iter()
                    .map(|c| counts[c.index()])
                    .sum();
            }
        }
        counts
    }

    /// The canonical leaves: for each distinct result `s(D)`, the ≺-least
    /// (i.e. DFS-first) complete sequence producing it.  Returns a boolean
    /// marker per node (true only for canonical leaves).
    pub fn canonical_leaf_markers(&self) -> Vec<bool> {
        let mut seen: HashMap<&FactSet, NodeId> = HashMap::new();
        let mut markers = vec![false; self.nodes.len()];
        // `self.leaves` is already in DFS order; the first occurrence of a
        // result subset wins.
        for &leaf in &self.leaves {
            let subset = &self.nodes[leaf.index()].subset;
            if !seen.contains_key(subset) {
                seen.insert(subset, leaf);
                markers[leaf.index()] = true;
            }
        }
        markers
    }

    /// For every node `s`, the number of canonical leaves in the subtree
    /// rooted at `s` — the quantity `|CanCRS_s(D, Σ)|` used by the
    /// uniform-repairs generator.
    pub fn canonical_subtree_leaf_counts(&self) -> Vec<u64> {
        let markers = self.canonical_leaf_markers();
        let mut counts = vec![0u64; self.nodes.len()];
        for index in (0..self.nodes.len()).rev() {
            if self.nodes[index].children.is_empty() {
                counts[index] = u64::from(markers[index]);
            } else {
                counts[index] = self.nodes[index]
                    .children
                    .iter()
                    .map(|c| counts[c.index()])
                    .sum();
            }
        }
        counts
    }

    /// The distinct results of complete sequences, i.e. the candidate
    /// repairs `CORep(D, Σ)` (or `CORep¹(D, Σ)`), in first-seen (≺) order.
    pub fn candidate_repairs(&self) -> Vec<FactSet> {
        let mut seen = HashMap::new();
        let mut repairs = Vec::new();
        for &leaf in &self.leaves {
            let subset = &self.nodes[leaf.index()].subset;
            if !seen.contains_key(subset) {
                seen.insert(subset.clone(), ());
                repairs.push(subset.clone());
            }
        }
        repairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucqa_db::{Database, FunctionalDependency, Schema, Value};

    fn running_example() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B", "C"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::str("a1"), Value::str("b1"), Value::str("c1")])
            .unwrap();
        db.insert_values("R", [Value::str("a1"), Value::str("b2"), Value::str("c2")])
            .unwrap();
        db.insert_values("R", [Value::str("a2"), Value::str("b1"), Value::str("c2")])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["C"], &["B"]).unwrap());
        (db, sigma)
    }

    #[test]
    fn running_example_tree_matches_figure1() {
        let (db, sigma) = running_example();
        let tree = RepairingTree::build(&db, &sigma, false, TreeLimits::default()).unwrap();
        // Figure 1 has 12 nodes (ε + 11 sequences) and 9 leaves.
        assert_eq!(tree.node_count(), 12);
        assert_eq!(tree.leaf_count(), 9);
        assert_eq!(tree.children(tree.root()).len(), 5);
        // |CRS_ε| = 9, |CRS_{-f1}| = |CRS_{-f3}| = 3, the other three root
        // children are leaves.
        let counts = tree.subtree_leaf_counts();
        assert_eq!(counts[tree.root().index()], 9);
        let child_counts: Vec<u64> = tree
            .children(tree.root())
            .iter()
            .map(|c| counts[c.index()])
            .collect();
        assert_eq!(child_counts, vec![3, 1, 1, 1, 3]);
    }

    #[test]
    fn running_example_canonical_counts_match_section4() {
        let (db, sigma) = running_example();
        let tree = RepairingTree::build(&db, &sigma, false, TreeLimits::default()).unwrap();
        let counts = tree.canonical_subtree_leaf_counts();
        // |CanCRS_ε| = 5, and per root child: 3, 0, 1, 1, 0.
        assert_eq!(counts[tree.root().index()], 5);
        let child_counts: Vec<u64> = tree
            .children(tree.root())
            .iter()
            .map(|c| counts[c.index()])
            .collect();
        assert_eq!(child_counts, vec![3, 0, 1, 1, 0]);
        // The five candidate repairs of the example:
        // ∅, {f1}, {f2}, {f3}, {f1, f3}.
        let repairs = tree.candidate_repairs();
        assert_eq!(repairs.len(), 5);
        let sizes: Vec<usize> = {
            let mut sizes: Vec<usize> = repairs.iter().map(FactSet::len).collect();
            sizes.sort();
            sizes
        };
        assert_eq!(sizes, vec![0, 1, 1, 1, 2]);
    }

    #[test]
    fn singleton_tree_excludes_pair_removals() {
        let (db, sigma) = running_example();
        let tree = RepairingTree::build(&db, &sigma, true, TreeLimits::default()).unwrap();
        for node in tree.node_ids() {
            if let Some(op) = tree.operation(node) {
                assert!(op.is_singleton());
            }
        }
        // Singleton-only candidate repairs: {f1}, {f2}, {f3}, {f1,f3} but
        // not ∅ (the empty repair needs a final pair removal).
        let repairs = tree.candidate_repairs();
        assert_eq!(repairs.len(), 4);
        assert!(repairs.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn consistent_database_tree_is_a_single_leaf() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        let tree = RepairingTree::build(&db, &sigma, false, TreeLimits::default()).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.leaf_count(), 1);
        assert!(tree.is_leaf(tree.root()));
        assert_eq!(tree.candidate_repairs().len(), 1);
    }

    #[test]
    fn node_limit_is_enforced() {
        let (db, sigma) = running_example();
        let err = RepairingTree::build(&db, &sigma, false, TreeLimits { max_nodes: 4 });
        assert_eq!(err.unwrap_err(), RepairError::TreeTooLarge { limit: 4 });
    }

    #[test]
    fn sequences_reconstructed_from_leaves_are_valid_and_complete() {
        let (db, sigma) = running_example();
        let tree = RepairingTree::build(&db, &sigma, false, TreeLimits::default()).unwrap();
        for &leaf in tree.leaves() {
            let sequence = tree.sequence(leaf);
            let result = sequence.validate(&db, &sigma).unwrap();
            assert_eq!(&result, tree.subset(leaf));
            assert!(sequence.is_complete(&db, &sigma));
        }
    }

    #[test]
    fn root_sequence_is_empty() {
        let (db, sigma) = running_example();
        let tree = RepairingTree::build(&db, &sigma, false, TreeLimits::default()).unwrap();
        assert!(tree.sequence(tree.root()).is_empty());
        assert_eq!(tree.parent(tree.root()), None);
        assert_eq!(tree.operation(tree.root()), None);
    }
}
