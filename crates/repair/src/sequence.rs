//! Repairing sequences (Definition 3.4).

use std::fmt;

use ucqa_db::{Database, FactSet, FdSet, ViolationSet};

use crate::{operation::justified_operations_from, Operation, RepairError};

/// A sequence of operations `s = (op₁, …, opₙ)`.
///
/// A sequence is `(D, Σ)`-*repairing* if each `opᵢ` is justified on the
/// intermediate database `D^s_{i−1}` (Definition 3.4), and *complete* if its
/// result `s(D)` is consistent.  [`RepairingSequence::validate`] checks the
/// former; the constructors used by the tree builder and the samplers only
/// ever append justified operations, so in the common path validation is a
/// debug-time aid and a public API guard.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct RepairingSequence {
    operations: Vec<Operation>,
}

impl RepairingSequence {
    /// The empty sequence `ε` (always repairing by definition).
    pub fn empty() -> Self {
        RepairingSequence::default()
    }

    /// Constructs a sequence from operations without validation.
    pub fn from_operations(operations: Vec<Operation>) -> Self {
        RepairingSequence { operations }
    }

    /// The operations of the sequence in application order.
    pub fn operations(&self) -> &[Operation] {
        &self.operations
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.operations.len()
    }

    /// Returns `true` iff this is the empty sequence `ε`.
    pub fn is_empty(&self) -> bool {
        self.operations.is_empty()
    }

    /// Appends an operation, returning the extended sequence `s · op`.
    pub fn extended(&self, op: Operation) -> RepairingSequence {
        let mut operations = self.operations.clone();
        operations.push(op);
        RepairingSequence { operations }
    }

    /// Appends an operation in place.
    pub fn push(&mut self, op: Operation) {
        self.operations.push(op);
    }

    /// Returns `true` iff every operation removes a single fact.
    pub fn is_singleton_only(&self) -> bool {
        self.operations.iter().all(Operation::is_singleton)
    }

    /// The result `s(D)` of applying the sequence to the full database.
    pub fn result(&self, db: &Database) -> FactSet {
        self.result_from(db.all_facts())
    }

    /// The result of applying the sequence starting from an arbitrary
    /// subset (used when composing sequences).
    pub fn result_from(&self, mut subset: FactSet) -> FactSet {
        for op in &self.operations {
            op.apply(&mut subset);
        }
        subset
    }

    /// Returns `true` iff the sequence is complete, i.e. `s(D) ⊨ Σ`.
    pub fn is_complete(&self, db: &Database, sigma: &FdSet) -> bool {
        let result = self.result(db);
        ViolationSet::compute(db, sigma, &result).is_empty()
    }

    /// Checks that the sequence is `(D, Σ)`-repairing: every operation is
    /// justified at its step and only removes facts still present.
    ///
    /// Returns the result `s(D)` on success.
    pub fn validate(&self, db: &Database, sigma: &FdSet) -> Result<FactSet, RepairError> {
        let mut subset = db.all_facts();
        for (position, op) in self.operations.iter().enumerate() {
            for &fact in op.facts() {
                if fact.index() >= db.len() {
                    return Err(RepairError::FactOutOfRange {
                        index: fact.index(),
                        universe: db.len(),
                    });
                }
            }
            let violations = ViolationSet::compute(db, sigma, &subset);
            if !op.is_justified_with(&violations) {
                return Err(RepairError::UnjustifiedOperation { position });
            }
            op.apply(&mut subset);
        }
        Ok(subset)
    }

    /// Enumerates the justified extensions of this sequence, i.e. the set
    /// `Ops_s(D, Σ)` restricted to the operations themselves.
    pub fn available_operations(
        &self,
        db: &Database,
        sigma: &FdSet,
        singleton_only: bool,
    ) -> Vec<Operation> {
        let result = self.result(db);
        let violations = ViolationSet::compute(db, sigma, &result);
        justified_operations_from(&violations, singleton_only)
    }

    /// Renders the sequence as the paper does, e.g. `-f1,-{f2,f3}` (the
    /// empty sequence renders as `ε`).
    pub fn render(&self) -> String {
        if self.operations.is_empty() {
            return "ε".to_string();
        }
        self.operations
            .iter()
            .map(Operation::render)
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl fmt::Debug for RepairingSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl fmt::Display for RepairingSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucqa_db::{Database, FactId, FunctionalDependency, Schema, Value};

    fn running_example() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B", "C"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::str("a1"), Value::str("b1"), Value::str("c1")])
            .unwrap();
        db.insert_values("R", [Value::str("a1"), Value::str("b2"), Value::str("c2")])
            .unwrap();
        db.insert_values("R", [Value::str("a2"), Value::str("b1"), Value::str("c2")])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["C"], &["B"]).unwrap());
        (db, sigma)
    }

    #[test]
    fn empty_sequence_is_repairing_but_incomplete_on_inconsistent_db() {
        let (db, sigma) = running_example();
        let s = RepairingSequence::empty();
        assert!(s.is_empty());
        assert_eq!(s.render(), "ε");
        assert!(s.validate(&db, &sigma).is_ok());
        assert!(!s.is_complete(&db, &sigma));
        assert_eq!(s.result(&db).len(), 3);
    }

    #[test]
    fn paper_sequence_f1_then_pair_is_complete() {
        // s = -f1, -{f2, f3} is a complete repairing sequence with result ∅.
        let (db, sigma) = running_example();
        let s = RepairingSequence::from_operations(vec![
            Operation::remove_one(FactId::new(0)),
            Operation::remove_pair(FactId::new(1), FactId::new(2)),
        ]);
        let result = s.validate(&db, &sigma).unwrap();
        assert!(result.is_empty());
        assert!(s.is_complete(&db, &sigma));
        assert!(!s.is_singleton_only());
        assert_eq!(s.render(), "-f0,-{f1,f2}");
    }

    #[test]
    fn unjustified_operation_detected() {
        let (db, sigma) = running_example();
        // Removing f2 first makes the database consistent; a further removal
        // of f1 is not justified.
        let s = RepairingSequence::from_operations(vec![
            Operation::remove_one(FactId::new(1)),
            Operation::remove_one(FactId::new(0)),
        ]);
        assert_eq!(
            s.validate(&db, &sigma),
            Err(RepairError::UnjustifiedOperation { position: 1 })
        );
        // Removing the non-conflicting pair {f1, f3} first is unjustified.
        let s = RepairingSequence::from_operations(vec![Operation::remove_pair(
            FactId::new(0),
            FactId::new(2),
        )]);
        assert_eq!(
            s.validate(&db, &sigma),
            Err(RepairError::UnjustifiedOperation { position: 0 })
        );
    }

    #[test]
    fn out_of_range_fact_detected() {
        let (db, sigma) = running_example();
        let s = RepairingSequence::from_operations(vec![Operation::remove_one(FactId::new(7))]);
        assert!(matches!(
            s.validate(&db, &sigma),
            Err(RepairError::FactOutOfRange { .. })
        ));
    }

    #[test]
    fn available_operations_shrink_along_the_sequence() {
        let (db, sigma) = running_example();
        let s = RepairingSequence::empty();
        assert_eq!(s.available_operations(&db, &sigma, false).len(), 5);
        let s = s.extended(Operation::remove_one(FactId::new(0)));
        // After removing f1, only the φ2 violation {f2, f3} remains:
        // -f2, -f3, -{f2,f3}.
        assert_eq!(s.available_operations(&db, &sigma, false).len(), 3);
        assert_eq!(s.available_operations(&db, &sigma, true).len(), 2);
        let s = s.extended(Operation::remove_one(FactId::new(1)));
        assert!(s.available_operations(&db, &sigma, false).is_empty());
        assert!(s.is_complete(&db, &sigma));
    }

    #[test]
    fn extended_does_not_mutate_original() {
        let s = RepairingSequence::empty();
        let s2 = s.extended(Operation::remove_one(FactId::new(0)));
        assert_eq!(s.len(), 0);
        assert_eq!(s2.len(), 1);
    }
}
