//! The uniform repairing Markov-chain generators (Section 4, Appendix A).
//!
//! A repairing Markov-chain generator `M_Σ` maps every database `D` to a
//! `(D, Σ)`-repairing Markov chain.  The paper studies three "uniform"
//! generators, each optionally restricted to singleton operations:
//!
//! * **Uniform repairs** `M^ur_Σ` — the leaf distribution is uniform over
//!   the candidate repairs `CORep(D, Σ)`.  Realised by routing all
//!   probability to *canonical* complete sequences (Definition A.1).
//! * **Uniform sequences** `M^us_Σ` — the leaf distribution is uniform over
//!   the complete sequences `CRS(D, Σ)` (Definition A.3).
//! * **Uniform operations** `M^uo_Σ` — every available operation at a step
//!   is equally likely (Definition A.5).
//!
//! This module constructs the chains *exactly* (rational probabilities over
//! the explicit tree); it is exponential in `|D|` and intended for small
//! instances, tests, and as ground truth for the polynomial samplers in
//! `ucqa-core`.

use std::fmt;

use ucqa_db::{Database, FdSet};
use ucqa_numeric::Ratio;

use crate::{RepairError, RepairingMarkovChain, RepairingTree, TreeLimits};

/// The three uniform semantics studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UniformSemantics {
    /// `M^ur_Σ`: uniform over candidate operational repairs.
    Repairs,
    /// `M^us_Σ`: uniform over complete repairing sequences.
    Sequences,
    /// `M^uo_Σ`: uniform over the operations available at each step.
    Operations,
}

impl fmt::Display for UniformSemantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UniformSemantics::Repairs => write!(f, "uniform-repairs"),
            UniformSemantics::Sequences => write!(f, "uniform-sequences"),
            UniformSemantics::Operations => write!(f, "uniform-operations"),
        }
    }
}

/// A fully specified uniform generator: a semantics plus the choice of
/// operation space (all justified operations, or singleton removals only —
/// the `M^{·,1}` variants of Section 7 and Appendix E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GeneratorSpec {
    /// Which uniform distribution the generator targets.
    pub semantics: UniformSemantics,
    /// Whether only single-fact removals are considered.
    pub singleton_only: bool,
}

impl GeneratorSpec {
    /// `M^ur_Σ`.
    pub fn uniform_repairs() -> Self {
        GeneratorSpec {
            semantics: UniformSemantics::Repairs,
            singleton_only: false,
        }
    }

    /// `M^us_Σ`.
    pub fn uniform_sequences() -> Self {
        GeneratorSpec {
            semantics: UniformSemantics::Sequences,
            singleton_only: false,
        }
    }

    /// `M^uo_Σ`.
    pub fn uniform_operations() -> Self {
        GeneratorSpec {
            semantics: UniformSemantics::Operations,
            singleton_only: false,
        }
    }

    /// The singleton-operation variant `M^{·,1}_Σ` of this generator.
    pub fn with_singleton_only(mut self) -> Self {
        self.singleton_only = true;
        self
    }

    /// A short name such as `M^uo` or `M^ur,1`, for reports.
    pub fn short_name(&self) -> String {
        let base = match self.semantics {
            UniformSemantics::Repairs => "M^ur",
            UniformSemantics::Sequences => "M^us",
            UniformSemantics::Operations => "M^uo",
        };
        if self.singleton_only {
            format!("{base},1")
        } else {
            base.to_string()
        }
    }

    /// Builds the exact `(D, Σ)`-repairing Markov chain of this generator.
    ///
    /// The chain is exponential in `|D|`; construction is guarded by
    /// `limits`.
    pub fn build_chain(
        &self,
        db: &Database,
        sigma: &FdSet,
        limits: TreeLimits,
    ) -> Result<RepairingMarkovChain, RepairError> {
        let tree = RepairingTree::build(db, sigma, self.singleton_only, limits)?;
        let probabilities = match self.semantics {
            UniformSemantics::Operations => uniform_operation_probabilities(&tree),
            UniformSemantics::Sequences => {
                proportional_probabilities(&tree, &tree.subtree_leaf_counts())
            }
            UniformSemantics::Repairs => {
                proportional_probabilities(&tree, &tree.canonical_subtree_leaf_counts())
            }
        };
        Ok(RepairingMarkovChain::new(tree, probabilities))
    }
}

/// Edge probabilities of `M^uo`: each child of a node with `k` children gets
/// probability `1/k`.
fn uniform_operation_probabilities(tree: &RepairingTree) -> Vec<Ratio> {
    let mut probabilities = vec![Ratio::one(); tree.node_count()];
    for node in tree.node_ids() {
        let children = tree.children(node);
        if children.is_empty() {
            continue;
        }
        let p = Ratio::from_u64(1, children.len() as u64);
        for &child in children {
            probabilities[child.index()] = p.clone();
        }
    }
    probabilities
}

/// Edge probabilities proportional to a per-node weight (the subtree leaf
/// counts for `M^us`, the canonical subtree leaf counts for `M^ur`):
/// `P(s, s') = weight(s') / weight(s)`, falling back to the uniform choice
/// `1/|children|` when `weight(s) = 0` (Definition A.1's "otherwise" case).
fn proportional_probabilities(tree: &RepairingTree, weights: &[u64]) -> Vec<Ratio> {
    let mut probabilities = vec![Ratio::one(); tree.node_count()];
    for node in tree.node_ids() {
        let children = tree.children(node);
        if children.is_empty() {
            continue;
        }
        let parent_weight = weights[node.index()];
        for &child in children {
            probabilities[child.index()] = if parent_weight == 0 {
                Ratio::from_u64(1, children.len() as u64)
            } else {
                Ratio::from_u64(weights[child.index()], parent_weight)
            };
        }
    }
    probabilities
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use ucqa_db::{Database, FactSet, FunctionalDependency, Schema, Value};

    fn running_example() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B", "C"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::str("a1"), Value::str("b1"), Value::str("c1")])
            .unwrap();
        db.insert_values("R", [Value::str("a1"), Value::str("b2"), Value::str("c2")])
            .unwrap();
        db.insert_values("R", [Value::str("a2"), Value::str("b1"), Value::str("c2")])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["C"], &["B"]).unwrap());
        (db, sigma)
    }

    fn root_child_probabilities(chain: &RepairingMarkovChain) -> Vec<Ratio> {
        chain
            .tree()
            .children(chain.tree().root())
            .iter()
            .map(|&c| chain.edge_probability(c).clone())
            .collect()
    }

    #[test]
    fn uniform_sequences_reproduces_section4_numbers() {
        // p1 = p5 = 3/9, p2 = p3 = p4 = 1/9; every leaf has π = 1/9.
        let (db, sigma) = running_example();
        let chain = GeneratorSpec::uniform_sequences()
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        assert_eq!(
            root_child_probabilities(&chain),
            vec![
                Ratio::from_u64(3, 9),
                Ratio::from_u64(1, 9),
                Ratio::from_u64(1, 9),
                Ratio::from_u64(1, 9),
                Ratio::from_u64(3, 9),
            ]
        );
        for (_, p) in chain.leaf_distribution() {
            assert_eq!(p, Ratio::from_u64(1, 9));
        }
        assert_eq!(chain.reachable_leaves().len(), 9);
    }

    #[test]
    fn uniform_repairs_reproduces_section4_numbers() {
        // p1 = 3/5, p2 = p5 = 0, p3 = p4 = 1/5; five reachable leaves with
        // π = 1/5 each, one per candidate repair.
        let (db, sigma) = running_example();
        let chain = GeneratorSpec::uniform_repairs()
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        assert_eq!(
            root_child_probabilities(&chain),
            vec![
                Ratio::from_u64(3, 5),
                Ratio::zero(),
                Ratio::from_u64(1, 5),
                Ratio::from_u64(1, 5),
                Ratio::zero(),
            ]
        );
        let reachable = chain.reachable_leaves();
        assert_eq!(reachable.len(), 5);
        // Each reachable leaf carries probability exactly 1/5, and their
        // results are pairwise distinct (one per operational repair).
        let mut results: BTreeMap<FactSet, Ratio> = BTreeMap::new();
        let probabilities = chain.path_probabilities();
        for leaf in reachable {
            let result = chain.tree().subset(leaf).clone();
            let p = probabilities[leaf.index()].clone();
            assert_eq!(p, Ratio::from_u64(1, 5));
            assert!(results.insert(result, p).is_none());
        }
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn uniform_operations_reproduces_section4_numbers() {
        // p1 = … = p5 = 1/5 and p6 = … = p11 = 1/3.
        let (db, sigma) = running_example();
        let chain = GeneratorSpec::uniform_operations()
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        assert_eq!(
            root_child_probabilities(&chain),
            vec![Ratio::from_u64(1, 5); 5]
        );
        for node in chain.tree().node_ids() {
            if chain.tree().depth(node) == 2 {
                assert_eq!(chain.edge_probability(node), &Ratio::from_u64(1, 3));
            }
        }
        assert!(chain.leaf_distribution_sums_to_one());
    }

    #[test]
    fn singleton_variants_produce_singleton_trees() {
        let (db, sigma) = running_example();
        for spec in [
            GeneratorSpec::uniform_repairs().with_singleton_only(),
            GeneratorSpec::uniform_sequences().with_singleton_only(),
            GeneratorSpec::uniform_operations().with_singleton_only(),
        ] {
            let chain = spec
                .build_chain(&db, &sigma, TreeLimits::default())
                .unwrap();
            assert!(chain.tree().singleton_only());
            assert!(chain.leaf_distribution_sums_to_one());
        }
    }

    #[test]
    fn short_names() {
        assert_eq!(GeneratorSpec::uniform_repairs().short_name(), "M^ur");
        assert_eq!(
            GeneratorSpec::uniform_operations()
                .with_singleton_only()
                .short_name(),
            "M^uo,1"
        );
        assert_eq!(UniformSemantics::Sequences.to_string(), "uniform-sequences");
    }
}
