//! Operational repairs, `⟦D⟧_M`, and answer probabilities
//! (Definitions 3.7 and 3.8).

use std::collections::BTreeMap;

use ucqa_db::{Database, FactSet, Value};
use ucqa_numeric::Ratio;
use ucqa_query::QueryEvaluator;

use crate::RepairingMarkovChain;

/// A single entry of the operational semantics `⟦D⟧_M`: an operational
/// repair together with its probability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairProbability {
    /// The operational repair `D'` (as a subset of the original database).
    pub repair: FactSet,
    /// Its probability `P_{D,M}(D')`.
    pub probability: Ratio,
}

/// The operational semantics of a database w.r.t. a repairing Markov chain:
/// the set of operational repairs with their probabilities, and the derived
/// answer probabilities (operational CQA).
#[derive(Debug, Clone)]
pub struct OperationalSemantics {
    repairs: Vec<RepairProbability>,
}

impl OperationalSemantics {
    /// Computes `⟦D⟧_M` from an (exact) repairing Markov chain: groups the
    /// reachable leaves by their result and sums their leaf probabilities
    /// (Definition 3.8).
    pub fn from_chain(chain: &RepairingMarkovChain) -> Self {
        let probabilities = chain.path_probabilities();
        let mut by_repair: BTreeMap<FactSet, Ratio> = BTreeMap::new();
        for &leaf in chain.tree().leaves() {
            let p = probabilities[leaf.index()].clone();
            if p.is_zero() {
                continue;
            }
            let entry = by_repair
                .entry(chain.tree().subset(leaf).clone())
                .or_insert_with(Ratio::zero);
            *entry = &*entry + &p;
        }
        let repairs = by_repair
            .into_iter()
            .map(|(repair, probability)| RepairProbability {
                repair,
                probability,
            })
            .collect();
        OperationalSemantics { repairs }
    }

    /// The operational repairs with their probabilities.
    pub fn repairs(&self) -> &[RepairProbability] {
        &self.repairs
    }

    /// Number of operational repairs `|ORep(D, M_Σ)|`.
    pub fn repair_count(&self) -> usize {
        self.repairs.len()
    }

    /// The total probability mass (should always be 1; exposed for
    /// diagnostics).
    pub fn total_probability(&self) -> Ratio {
        self.repairs.iter().map(|r| r.probability.clone()).sum()
    }

    /// The probability of `candidate` being an answer to the query over
    /// some operational repair, i.e. `P_{M,Q}(D, c̄)`: the sum of the
    /// probabilities of the repairs `D'` with `c̄ ∈ Q(D')`.
    pub fn answer_probability(
        &self,
        db: &Database,
        evaluator: &QueryEvaluator,
        candidate: &[Value],
    ) -> Result<Ratio, ucqa_query::QueryError> {
        let mut total = Ratio::zero();
        for entry in &self.repairs {
            if evaluator.has_answer(db, &entry.repair, candidate)? {
                total = &total + &entry.probability;
            }
        }
        Ok(total)
    }

    /// Batched [`OperationalSemantics::answer_probability`]: evaluates
    /// many `(query, candidate)` pairs in **one pass over the repairs**,
    /// so the exact ground truth for a query bank costs one enumeration of
    /// `⟦D⟧_M` instead of one per query.  This is the exact counterpart of
    /// the batched FPRAS drivers in `ucqa-core`.
    pub fn answer_probabilities(
        &self,
        db: &Database,
        queries: &[(&QueryEvaluator, &[Value])],
    ) -> Result<Vec<Ratio>, ucqa_query::QueryError> {
        let mut totals = vec![Ratio::zero(); queries.len()];
        for entry in &self.repairs {
            for (total, &(evaluator, candidate)) in totals.iter_mut().zip(queries) {
                if evaluator.has_answer(db, &entry.repair, candidate)? {
                    *total = &*total + &entry.probability;
                }
            }
        }
        Ok(totals)
    }

    /// The probability that the Boolean query is entailed by a random
    /// operational repair, i.e. `P_{M,Q}(D, ())`.
    pub fn entailment_probability(&self, db: &Database, evaluator: &QueryEvaluator) -> Ratio {
        let mut total = Ratio::zero();
        for entry in &self.repairs {
            if evaluator.entails(db, &entry.repair) {
                total = &total + &entry.probability;
            }
        }
        total
    }

    /// The full set of *operational consistent answers*: every tuple of
    /// values from the active domain (of the right arity) together with its
    /// answer probability.  Only tuples with non-zero probability are
    /// returned.
    ///
    /// This enumerates `|dom(D)|^{|x̄|}` candidate tuples and is intended
    /// for small instances and examples; large-scale use goes through
    /// [`OperationalSemantics::answer_probability`] for specific tuples.
    pub fn consistent_answers(
        &self,
        db: &Database,
        evaluator: &QueryEvaluator,
    ) -> Result<Vec<(Vec<Value>, Ratio)>, ucqa_query::QueryError> {
        let arity = evaluator.query().answer_vars().len();
        if arity == 0 {
            let p = self.entailment_probability(db, evaluator);
            return Ok(if p.is_zero() {
                Vec::new()
            } else {
                vec![(Vec::new(), p)]
            });
        }
        let domain: Vec<Value> = db.active_domain().into_iter().collect();
        let mut answers = Vec::new();
        let mut indices = vec![0usize; arity];
        loop {
            let candidate: Vec<Value> = indices.iter().map(|&i| domain[i].clone()).collect();
            let p = self.answer_probability(db, evaluator, &candidate)?;
            if !p.is_zero() {
                answers.push((candidate, p));
            }
            // Advance the mixed-radix counter.
            let mut position = arity;
            loop {
                if position == 0 {
                    return Ok(answers);
                }
                position -= 1;
                indices[position] += 1;
                if indices[position] < domain.len() {
                    break;
                }
                indices[position] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeneratorSpec, TreeLimits};
    use ucqa_db::{Database, FdSet, FunctionalDependency, Schema};
    use ucqa_query::parser::parse_query;

    fn running_example() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B", "C"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::str("a1"), Value::str("b1"), Value::str("c1")])
            .unwrap();
        db.insert_values("R", [Value::str("a1"), Value::str("b2"), Value::str("c2")])
            .unwrap();
        db.insert_values("R", [Value::str("a2"), Value::str("b1"), Value::str("c2")])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["C"], &["B"]).unwrap());
        (db, sigma)
    }

    #[test]
    fn uniform_repairs_semantics_matches_paper() {
        // ORep(D, M^ur) = {∅, {f1}, {f2}, {f3}, {f1,f3}} each with
        // probability 1/5.
        let (db, sigma) = running_example();
        let chain = GeneratorSpec::uniform_repairs()
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        let semantics = OperationalSemantics::from_chain(&chain);
        assert_eq!(semantics.repair_count(), 5);
        assert!(semantics.total_probability().is_one());
        for entry in semantics.repairs() {
            assert_eq!(entry.probability, Ratio::from_u64(1, 5));
        }
    }

    #[test]
    fn uniform_sequences_semantics_weights_repairs_by_sequence_count() {
        // Under M^us each of the 9 complete sequences has probability 1/9;
        // the empty repair is reached by 2 sequences, {f2} and {f3} by 2
        // each, {f1} by 2, and {f1,f3} by 1.
        let (db, sigma) = running_example();
        let chain = GeneratorSpec::uniform_sequences()
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        let semantics = OperationalSemantics::from_chain(&chain);
        assert_eq!(semantics.repair_count(), 5);
        assert!(semantics.total_probability().is_one());
        let mut probabilities: Vec<Ratio> = semantics
            .repairs()
            .iter()
            .map(|r| r.probability.clone())
            .collect();
        probabilities.sort();
        assert_eq!(
            probabilities,
            vec![
                Ratio::from_u64(1, 9),
                Ratio::from_u64(2, 9),
                Ratio::from_u64(2, 9),
                Ratio::from_u64(2, 9),
                Ratio::from_u64(2, 9),
            ]
        );
    }

    #[test]
    fn answer_probability_for_atomic_query() {
        // Q: Ans() :- R(x, 'b1', y) — entailed by every repair containing
        // f1 or f3.  Under M^ur these are {f1}, {f3}, {f1,f3} → 3/5.
        let (db, sigma) = running_example();
        let chain = GeneratorSpec::uniform_repairs()
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        let semantics = OperationalSemantics::from_chain(&chain);
        let q = parse_query(db.schema(), "Ans() :- R(x, 'b1', y)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        assert_eq!(
            semantics.entailment_probability(&db, &evaluator),
            Ratio::from_u64(3, 5)
        );
        assert_eq!(
            semantics.answer_probability(&db, &evaluator, &[]).unwrap(),
            Ratio::from_u64(3, 5)
        );
    }

    #[test]
    fn consistent_answers_enumerates_non_boolean_queries() {
        // Q(x): Ans(x) :- R(a1, x, y): only f1 (b1) and f2 (b2) match; the
        // probability of b1 is the probability of repairs containing f1.
        let (db, sigma) = running_example();
        let chain = GeneratorSpec::uniform_repairs()
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        let semantics = OperationalSemantics::from_chain(&chain);
        let q = parse_query(db.schema(), "Ans(x) :- R('a1', x, y)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let answers = semantics.consistent_answers(&db, &evaluator).unwrap();
        let as_map: BTreeMap<String, Ratio> = answers
            .into_iter()
            .map(|(tuple, p)| (tuple[0].to_string(), p))
            .collect();
        // Repairs containing f1: {f1}, {f1,f3} → 2/5; containing f2: {f2} → 1/5.
        assert_eq!(as_map.get("b1"), Some(&Ratio::from_u64(2, 5)));
        assert_eq!(as_map.get("b2"), Some(&Ratio::from_u64(1, 5)));
        assert_eq!(as_map.len(), 2);
    }

    #[test]
    fn boolean_query_with_zero_probability_yields_no_answers() {
        let (db, sigma) = running_example();
        let chain = GeneratorSpec::uniform_repairs()
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        let semantics = OperationalSemantics::from_chain(&chain);
        // No repair contains both f1 and f2 (they conflict).
        let q = parse_query(db.schema(), "Ans() :- R(x, 'b1', 'c1'), R(x, 'b2', y)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let answers = semantics.consistent_answers(&db, &evaluator).unwrap();
        assert!(answers.is_empty());
    }
}
