//! Repairing Markov chains (Definition 3.5).

use ucqa_numeric::Ratio;

use crate::{NodeId, RepairingTree};

/// A `(D, Σ)`-repairing Markov chain: the repairing tree together with a
/// probability on every edge, such that the probabilities of the edges
/// leaving any non-leaf node sum to 1 (Definition 3.5).
///
/// Probabilities are exact rationals; the chain therefore reproduces the
/// paper's worked probabilities exactly.
#[derive(Debug, Clone)]
pub struct RepairingMarkovChain {
    tree: RepairingTree,
    /// `edge_probability[v]` is `P(parent(v), v)`; the root entry is 1.
    edge_probability: Vec<Ratio>,
}

impl RepairingMarkovChain {
    /// Wraps a tree with edge probabilities.
    ///
    /// `edge_probability[v]` must be the probability of the edge from the
    /// parent of `v` into `v` (the root entry is ignored and normalised to
    /// 1).  The constructor validates that, for every non-leaf node, the
    /// probabilities of the outgoing edges sum to exactly 1.
    ///
    /// # Panics
    /// Panics if the vector length does not match the number of tree nodes
    /// or if some node's outgoing probabilities do not sum to 1 — these are
    /// programming errors of a generator, not data errors.
    pub fn new(tree: RepairingTree, mut edge_probability: Vec<Ratio>) -> Self {
        assert_eq!(
            edge_probability.len(),
            tree.node_count(),
            "one edge probability per node is required"
        );
        edge_probability[tree.root().index()] = Ratio::one();
        for node in tree.node_ids() {
            let children = tree.children(node);
            if children.is_empty() {
                continue;
            }
            let sum: Ratio = children
                .iter()
                .map(|c| edge_probability[c.index()].clone())
                .sum();
            assert!(
                sum.is_one(),
                "outgoing probabilities of node {node:?} sum to {sum}, not 1"
            );
        }
        RepairingMarkovChain {
            tree,
            edge_probability,
        }
    }

    /// The underlying repairing tree.
    pub fn tree(&self) -> &RepairingTree {
        &self.tree
    }

    /// The probability of the edge from `node`'s parent into `node`
    /// (1 for the root).
    pub fn edge_probability(&self, node: NodeId) -> &Ratio {
        &self.edge_probability[node.index()]
    }

    /// The leaf distribution `π`: for every leaf, the product of the edge
    /// probabilities along the unique path from the root.
    ///
    /// Returned as a vector indexed by node id (non-leaf entries are the
    /// path products as well, which is occasionally useful for
    /// diagnostics).
    pub fn path_probabilities(&self) -> Vec<Ratio> {
        let mut probabilities = vec![Ratio::one(); self.tree.node_count()];
        // Parents precede children in id order (DFS preorder).
        for node in self.tree.node_ids() {
            if let Some(parent) = self.tree.parent(node) {
                probabilities[node.index()] =
                    &probabilities[parent.index()] * &self.edge_probability[node.index()];
            }
        }
        probabilities
    }

    /// The leaf distribution `π` restricted to leaves, as `(leaf, π(leaf))`
    /// pairs in DFS order.
    pub fn leaf_distribution(&self) -> Vec<(NodeId, Ratio)> {
        let probabilities = self.path_probabilities();
        self.tree
            .leaves()
            .iter()
            .map(|&leaf| (leaf, probabilities[leaf.index()].clone()))
            .collect()
    }

    /// The reachable leaves `RL(T)`: leaves with non-zero probability.
    pub fn reachable_leaves(&self) -> Vec<NodeId> {
        self.leaf_distribution()
            .into_iter()
            .filter(|(_, p)| !p.is_zero())
            .map(|(leaf, _)| leaf)
            .collect()
    }

    /// Checks that the leaf distribution sums to 1 (it always does for a
    /// well-formed chain; exposed for tests and diagnostics).
    pub fn leaf_distribution_sums_to_one(&self) -> bool {
        let total: Ratio = self.leaf_distribution().into_iter().map(|(_, p)| p).sum();
        total.is_one()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeLimits;
    use ucqa_db::{Database, FdSet, FunctionalDependency, Schema, Value};

    fn running_example() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B", "C"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::str("a1"), Value::str("b1"), Value::str("c1")])
            .unwrap();
        db.insert_values("R", [Value::str("a1"), Value::str("b2"), Value::str("c2")])
            .unwrap();
        db.insert_values("R", [Value::str("a2"), Value::str("b1"), Value::str("c2")])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["C"], &["B"]).unwrap());
        (db, sigma)
    }

    fn uniform_child_probabilities(tree: &RepairingTree) -> Vec<Ratio> {
        let mut probs = vec![Ratio::one(); tree.node_count()];
        for node in tree.node_ids() {
            let children = tree.children(node);
            for &child in children {
                probs[child.index()] = Ratio::from_u64(1, children.len() as u64);
            }
        }
        probs
    }

    #[test]
    fn uniform_operations_chain_has_consistent_leaf_distribution() {
        let (db, sigma) = running_example();
        let tree = RepairingTree::build(&db, &sigma, false, TreeLimits::default()).unwrap();
        let probs = uniform_child_probabilities(&tree);
        let chain = RepairingMarkovChain::new(tree, probs);
        assert!(chain.leaf_distribution_sums_to_one());
        assert_eq!(chain.reachable_leaves().len(), 9);
        // Leaves under -f1 or -f3 have probability 1/5 · 1/3 = 1/15; the
        // three leaves directly under the root have probability 1/5.
        let dist = chain.leaf_distribution();
        let mut values: Vec<Ratio> = dist.into_iter().map(|(_, p)| p).collect();
        values.sort();
        assert_eq!(values[0], Ratio::from_u64(1, 15));
        assert_eq!(values[8], Ratio::from_u64(1, 5));
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn invalid_probabilities_are_rejected() {
        let (db, sigma) = running_example();
        let tree = RepairingTree::build(&db, &sigma, false, TreeLimits::default()).unwrap();
        let probs = vec![Ratio::from_u64(1, 2); tree.node_count()];
        let _ = RepairingMarkovChain::new(tree, probs);
    }

    #[test]
    fn zero_probability_edges_make_leaves_unreachable() {
        let (db, sigma) = running_example();
        let tree = RepairingTree::build(&db, &sigma, false, TreeLimits::default()).unwrap();
        // Root sends everything to its first child; deeper nodes stay
        // uniform.
        let mut probs = uniform_child_probabilities(&tree);
        let root_children: Vec<NodeId> = tree.children(tree.root()).to_vec();
        for (i, child) in root_children.iter().enumerate() {
            probs[child.index()] = if i == 0 { Ratio::one() } else { Ratio::zero() };
        }
        let chain = RepairingMarkovChain::new(tree, probs);
        assert!(chain.leaf_distribution_sums_to_one());
        // Only the three leaves in the first child's subtree stay reachable.
        assert_eq!(chain.reachable_leaves().len(), 3);
    }
}
