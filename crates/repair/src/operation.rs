//! Operations `−F` and justifiedness.

use std::fmt;

use ucqa_db::{ConflictIndex, Database, FactId, FactSet, FdSet, LiveOps, ViolationSet};

/// A repairing operation `−F`: removes a non-empty set `F` of facts
/// (Definition 3.1).
///
/// For functional dependencies a justified operation removes either a
/// single fact or a pair of facts that jointly violate an FD
/// (Definition 3.3), so `F` always has one or two elements.  The fact ids
/// are kept sorted, which gives operations a canonical form and a total
/// order; that order is what induces the deterministic child ordering of
/// the repairing tree (and hence the canonical-sequence choice `≺` used by
/// the uniform-repairs generator).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Operation {
    facts: Vec<FactId>,
}

impl Operation {
    /// The operation `−f` removing a single fact.
    pub fn remove_one(fact: FactId) -> Self {
        Operation { facts: vec![fact] }
    }

    /// The operation `−{f, g}` removing a pair of distinct facts.
    ///
    /// # Panics
    /// Panics if `f == g`.
    pub fn remove_pair(f: FactId, g: FactId) -> Self {
        assert_ne!(f, g, "a pair operation must remove two distinct facts");
        let (a, b) = if f < g { (f, g) } else { (g, f) };
        Operation { facts: vec![a, b] }
    }

    /// The facts removed by this operation, sorted.
    pub fn facts(&self) -> &[FactId] {
        &self.facts
    }

    /// Returns `true` iff this operation removes exactly one fact.
    pub fn is_singleton(&self) -> bool {
        self.facts.len() == 1
    }

    /// Returns `true` iff this operation removes `fact`.
    pub fn removes(&self, fact: FactId) -> bool {
        self.facts.contains(&fact)
    }

    /// Applies the operation to a subset, removing its facts.
    pub fn apply(&self, subset: &mut FactSet) {
        for &fact in &self.facts {
            subset.remove(fact);
        }
    }

    /// Returns a copy of `subset` with the operation applied.
    pub fn applied_to(&self, subset: &FactSet) -> FactSet {
        let mut result = subset.clone();
        self.apply(&mut result);
        result
    }

    /// Returns `true` iff this operation is `(D', Σ)`-justified for the
    /// sub-database `subset = D'` (Definition 3.3): there is a violation
    /// `(φ, {f, g}) ∈ V(D', Σ)` with `F ⊆ {f, g}`.
    pub fn is_justified(&self, db: &Database, sigma: &FdSet, subset: &FactSet) -> bool {
        let violations = ViolationSet::compute(db, sigma, subset);
        self.is_justified_with(&violations)
    }

    /// Justifiedness check against a precomputed violation set of the
    /// current sub-database.
    pub fn is_justified_with(&self, violations: &ViolationSet) -> bool {
        match self.facts.as_slice() {
            [f] => violations.iter().any(|v| v.involves(*f)),
            [f, g] => violations
                .iter()
                .any(|v| v.pair() == (*f, *g) || v.pair() == (*g, *f)),
            _ => false,
        }
    }

    /// Renders the operation as the paper does, e.g. `-f1` or `-{f1,f2}`.
    pub fn render(&self) -> String {
        match self.facts.as_slice() {
            [f] => format!("-{f}"),
            facts => {
                let inner: Vec<String> = facts.iter().map(|f| f.to_string()).collect();
                format!("-{{{}}}", inner.join(","))
            }
        }
    }
}

impl fmt::Debug for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Enumerates the justified operations available on the sub-database
/// `subset = D'`, i.e. the operations `op` such that `s · op` extends a
/// repairing sequence `s` with `s(D) = D'` (the children `Ops_s(D, Σ)` of a
/// tree node).
///
/// With `singleton_only = true`, only operations removing a single fact are
/// returned — the operation space of the `M^{·,1}` generators (Section 7 /
/// Appendix E).
///
/// The result is sorted in the canonical operation order and free of
/// duplicates; it is empty iff `D' ⊨ Σ`.
pub fn justified_operations(
    db: &Database,
    sigma: &FdSet,
    subset: &FactSet,
    singleton_only: bool,
) -> Vec<Operation> {
    let violations = ViolationSet::compute(db, sigma, subset);
    justified_operations_from(&violations, singleton_only)
}

/// As [`justified_operations`], but from a precomputed violation set of the
/// current sub-database.
pub fn justified_operations_from(
    violations: &ViolationSet,
    singleton_only: bool,
) -> Vec<Operation> {
    let mut scratch = OperationScratch::default();
    let mut ops = Vec::new();
    justified_operations_into(violations, singleton_only, &mut scratch, &mut ops);
    ops
}

/// Reusable buffers for [`justified_operations_into`], so repeated
/// enumeration (the tree builder's per-node loop) only allocates the
/// [`Operation`] values themselves.
#[derive(Debug, Default, Clone)]
pub struct OperationScratch {
    facts: Vec<FactId>,
    pairs: Vec<(FactId, FactId)>,
}

/// As [`justified_operations_from`], writing into a reused output vector
/// (cleared first) and deduplicating through the reused `scratch` buffers.
pub fn justified_operations_into(
    violations: &ViolationSet,
    singleton_only: bool,
    scratch: &mut OperationScratch,
    out: &mut Vec<Operation>,
) {
    out.clear();
    violations.conflicting_facts_into(&mut scratch.facts);
    for &fact in &scratch.facts {
        out.push(Operation::remove_one(fact));
    }
    if !singleton_only {
        violations.conflicting_pairs_into(&mut scratch.pairs);
        for &(f, g) in &scratch.pairs {
            out.push(Operation::remove_pair(f, g));
        }
    }
    // The `_into` variants already deduplicate facts and pairs, so the
    // operations are distinct; only the canonical order remains.
    out.sort_unstable();
}

/// The justified operations of the sub-database tracked by a
/// [`LiveOps`] cursor over a precomputed [`ConflictIndex`] — the
/// incremental counterpart of [`justified_operations`], in canonical
/// operation order.
pub fn justified_operations_from_index(
    index: &ConflictIndex,
    live: &LiveOps,
    singleton_only: bool,
) -> Vec<Operation> {
    let mut ops: Vec<Operation> = live
        .live_singles()
        .iter()
        .map(|&fact| Operation::remove_one(fact))
        .collect();
    if !singleton_only {
        ops.extend(
            live.live_pairs(index)
                .map(|(f, g)| Operation::remove_pair(f, g)),
        );
    }
    ops.sort_unstable();
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucqa_db::{Database, FunctionalDependency, Schema, Value};

    /// The running example of the paper (Example 3.6).
    fn running_example() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B", "C"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::str("a1"), Value::str("b1"), Value::str("c1")])
            .unwrap();
        db.insert_values("R", [Value::str("a1"), Value::str("b2"), Value::str("c2")])
            .unwrap();
        db.insert_values("R", [Value::str("a2"), Value::str("b1"), Value::str("c2")])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["C"], &["B"]).unwrap());
        (db, sigma)
    }

    #[test]
    fn canonical_form_and_rendering() {
        let op = Operation::remove_pair(FactId::new(3), FactId::new(1));
        assert_eq!(op.facts(), &[FactId::new(1), FactId::new(3)]);
        assert_eq!(op.render(), "-{f1,f3}");
        assert_eq!(Operation::remove_one(FactId::new(0)).render(), "-f0");
        assert!(op.removes(FactId::new(3)));
        assert!(!op.removes(FactId::new(2)));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn pair_of_equal_facts_panics() {
        let _ = Operation::remove_pair(FactId::new(1), FactId::new(1));
    }

    #[test]
    fn apply_removes_facts() {
        let mut subset = FactSet::full(4);
        Operation::remove_pair(FactId::new(0), FactId::new(2)).apply(&mut subset);
        assert_eq!(subset.len(), 2);
        assert!(!subset.contains(FactId::new(0)));
        assert!(subset.contains(FactId::new(1)));
    }

    #[test]
    fn running_example_root_operations_match_figure1() {
        // The root of Figure 1 has five children:
        // -f1, -{f1,f2}, -f2, -{f2,f3}, -f3.
        let (db, sigma) = running_example();
        let ops = justified_operations(&db, &sigma, &db.all_facts(), false);
        let rendered: Vec<String> = ops.iter().map(Operation::render).collect();
        assert_eq!(rendered, vec!["-f0", "-{f0,f1}", "-f1", "-{f1,f2}", "-f2"]);
        // Singleton-only variant keeps just the three single-fact removals.
        let ops1 = justified_operations(&db, &sigma, &db.all_facts(), true);
        assert_eq!(ops1.len(), 3);
        assert!(ops1.iter().all(Operation::is_singleton));
    }

    #[test]
    fn justifiedness_checks() {
        let (db, sigma) = running_example();
        let full = db.all_facts();
        // f1 and f3 (ids 0 and 2) do not form a violating pair.
        assert!(!Operation::remove_pair(FactId::new(0), FactId::new(2))
            .is_justified(&db, &sigma, &full));
        assert!(
            Operation::remove_pair(FactId::new(0), FactId::new(1)).is_justified(&db, &sigma, &full)
        );
        assert!(Operation::remove_one(FactId::new(2)).is_justified(&db, &sigma, &full));
        // After removing f2 (id 1) the database is consistent: nothing is
        // justified any more.
        let mut subset = full.clone();
        subset.remove(FactId::new(1));
        assert!(!Operation::remove_one(FactId::new(0)).is_justified(&db, &sigma, &subset));
        assert!(justified_operations(&db, &sigma, &subset, false).is_empty());
    }

    #[test]
    fn index_backed_enumeration_matches_rescan_enumeration() {
        let (db, sigma) = running_example();
        let index = ConflictIndex::build(&db, &sigma);
        let mut live = LiveOps::new();
        live.reset_full(&index);
        for singleton_only in [false, true] {
            assert_eq!(
                justified_operations_from_index(&index, &live, singleton_only),
                justified_operations(&db, &sigma, &db.all_facts(), singleton_only)
            );
        }
        // After removing f1 the two enumerations must still agree.
        live.remove_fact(&index, FactId::new(0));
        let mut subset = db.all_facts();
        subset.remove(FactId::new(0));
        assert_eq!(
            justified_operations_from_index(&index, &live, false),
            justified_operations(&db, &sigma, &subset, false)
        );
    }

    #[test]
    fn buffered_enumeration_matches_allocating_enumeration() {
        let (db, sigma) = running_example();
        let violations = ViolationSet::compute(&db, &sigma, &db.all_facts());
        let mut scratch = OperationScratch::default();
        let mut ops = Vec::new();
        for singleton_only in [false, true] {
            justified_operations_into(&violations, singleton_only, &mut scratch, &mut ops);
            assert_eq!(ops, justified_operations_from(&violations, singleton_only));
        }
    }

    #[test]
    fn operations_are_totally_ordered() {
        let mut ops = [
            Operation::remove_one(FactId::new(2)),
            Operation::remove_pair(FactId::new(0), FactId::new(1)),
            Operation::remove_one(FactId::new(0)),
        ];
        ops.sort();
        let rendered: Vec<String> = ops.iter().map(Operation::render).collect();
        assert_eq!(rendered, vec!["-f0", "-{f0,f1}", "-f2"]);
    }
}
