//! Non-uniform (trust-weighted) Markov-chain generators.
//!
//! The paper's framework (Section 3) allows *arbitrary* repairing
//! Markov-chain generators; the introduction motivates them with a data
//! integration scenario in which each fact comes from a source with a known
//! reliability.  This module provides a concrete non-uniform generator in
//! that spirit: at every repairing step each available justified operation
//! is weighted by the product of the *distrust* `1 − t` of the facts it
//! removes, and the weights are normalised into step probabilities.  (The
//! introduction's sketch normalises slightly differently — it gives the
//! pair removal the absolute probability `(1−t_f)(1−t_g)` and splits the
//! rest evenly — but it does not define a full generator; the
//! distrust-proportional rule used here extends naturally to steps with
//! many violations while preserving the intended behaviour that less
//! trusted facts are more likely to be removed.)  The generator is
//! exact-only: by Theorems 4.1 and 4.2, OCQA for arbitrary generators is
//! ♯P-hard and admits no FPRAS (unless RP = NP), so this module deliberately
//! offers no estimator — it builds the explicit chain, which is what the
//! paper's negative results say is the best one can do in general.

use std::collections::HashMap;

use ucqa_db::{Database, FactId};
use ucqa_numeric::Ratio;

use crate::{Operation, RepairError, RepairingMarkovChain, RepairingTree, TreeLimits};

/// Per-fact source reliabilities ("trust"), as exact rationals in `[0, 1]`.
///
/// Facts without an explicit entry get the default trust.
#[derive(Debug, Clone)]
pub struct TrustWeights {
    default: Ratio,
    by_fact: HashMap<FactId, Ratio>,
}

impl TrustWeights {
    /// Creates a weight table with the given default trust.
    ///
    /// # Panics
    /// Panics if the default trust exceeds 1.
    pub fn with_default(default: Ratio) -> Self {
        assert!(default <= Ratio::one(), "trust must be at most 1");
        TrustWeights {
            default,
            by_fact: HashMap::new(),
        }
    }

    /// The paper's introduction scenario: every source is 50 % reliable.
    pub fn half_trust() -> Self {
        TrustWeights::with_default(Ratio::from_u64(1, 2))
    }

    /// Sets the trust of one fact.
    ///
    /// # Panics
    /// Panics if the trust exceeds 1.
    pub fn set(&mut self, fact: FactId, trust: Ratio) -> &mut Self {
        assert!(trust <= Ratio::one(), "trust must be at most 1");
        self.by_fact.insert(fact, trust);
        self
    }

    /// The trust of a fact.
    pub fn trust(&self, fact: FactId) -> Ratio {
        self.by_fact
            .get(&fact)
            .cloned()
            .unwrap_or_else(|| self.default.clone())
    }

    /// The *distrust* `1 − trust` of a fact.
    pub fn distrust(&self, fact: FactId) -> Ratio {
        &Ratio::one() - &self.trust(fact)
    }

    /// The unnormalised weight of an operation: the product of the
    /// distrusts of the facts it removes.
    pub fn operation_weight(&self, operation: &Operation) -> Ratio {
        let mut weight = Ratio::one();
        for &fact in operation.facts() {
            weight = &weight * &self.distrust(fact);
        }
        weight
    }
}

/// A trust-weighted repairing Markov-chain generator (exact only).
///
/// At every step the available justified operations are weighted by
/// [`TrustWeights::operation_weight`] and normalised; if every available
/// operation has weight zero (all involved sources fully trusted, yet the
/// data is inconsistent), the step falls back to the uniform choice so the
/// chain remains well-formed.
#[derive(Debug, Clone)]
pub struct TrustWeightedGenerator {
    weights: TrustWeights,
    singleton_only: bool,
}

impl TrustWeightedGenerator {
    /// Creates a generator from per-fact trust weights.
    pub fn new(weights: TrustWeights) -> Self {
        TrustWeightedGenerator {
            weights,
            singleton_only: false,
        }
    }

    /// Restricts the generator to singleton removals.
    pub fn singleton_only(mut self) -> Self {
        self.singleton_only = true;
        self
    }

    /// The underlying weights.
    pub fn weights(&self) -> &TrustWeights {
        &self.weights
    }

    /// Builds the exact `(D, Σ)`-repairing Markov chain of this generator.
    pub fn build_chain(
        &self,
        db: &Database,
        sigma: &ucqa_db::FdSet,
        limits: TreeLimits,
    ) -> Result<RepairingMarkovChain, RepairError> {
        let tree = RepairingTree::build(db, sigma, self.singleton_only, limits)?;
        let mut probabilities = vec![Ratio::one(); tree.node_count()];
        for node in tree.node_ids() {
            let children = tree.children(node);
            if children.is_empty() {
                continue;
            }
            let weights: Vec<Ratio> = children
                .iter()
                .map(|&child| {
                    self.weights.operation_weight(
                        tree.operation(child).expect("child edges carry operations"),
                    )
                })
                .collect();
            let total: Ratio = weights.iter().sum();
            if total.is_zero() {
                let uniform = Ratio::from_u64(1, children.len() as u64);
                for &child in children {
                    probabilities[child.index()] = uniform.clone();
                }
            } else {
                for (&child, weight) in children.iter().zip(&weights) {
                    probabilities[child.index()] = weight / &total;
                }
            }
        }
        Ok(RepairingMarkovChain::new(tree, probabilities))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OperationalSemantics;
    use ucqa_db::{Database, FdSet, FunctionalDependency, Schema, Value};
    use ucqa_query::{parser::parse_query, QueryEvaluator};

    /// The introduction's scenario: Emp(1, Alice) and Emp(1, Tom) violating
    /// the key on the first attribute, both sources 50 % reliable.
    fn intro_example() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("Emp", &["id", "name"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("Emp", [Value::int(1), Value::str("Alice")])
            .unwrap();
        db.insert_values("Emp", [Value::int(1), Value::str("Tom")])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma
            .add(FunctionalDependency::from_names(db.schema(), "Emp", &["id"], &["name"]).unwrap());
        (db, sigma)
    }

    #[test]
    fn intro_example_probabilities_with_half_trust() {
        // Distrust-proportional weights with both sources 50 % reliable:
        // −Alice and −Tom each get weight 1/2, −{Alice, Tom} gets 1/4, so
        // the step probabilities are 2/5, 2/5, 1/5 and the repairs
        // {Tom}, {Alice}, ∅ carry those probabilities.
        let (db, sigma) = intro_example();
        let generator = TrustWeightedGenerator::new(TrustWeights::half_trust());
        let chain = generator
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        let semantics = OperationalSemantics::from_chain(&chain);
        assert!(semantics.total_probability().is_one());

        let by_size: Vec<(usize, Ratio)> = semantics
            .repairs()
            .iter()
            .map(|entry| (entry.repair.len(), entry.probability.clone()))
            .collect();
        for (size, probability) in by_size {
            match size {
                0 => assert_eq!(probability, Ratio::from_u64(1, 5)),
                1 => assert_eq!(probability, Ratio::from_u64(2, 5)),
                other => panic!("unexpected repair size {other}"),
            }
        }

        // The probability that "Alice" survives is 2/5 — strictly between
        // the extremes, as in the paper's motivating discussion.
        let query = parse_query(db.schema(), "Ans() :- Emp(1, 'Alice')").unwrap();
        let evaluator = QueryEvaluator::new(query);
        assert_eq!(
            semantics.entailment_probability(&db, &evaluator),
            Ratio::from_u64(2, 5)
        );
    }

    #[test]
    fn asymmetric_trust_shifts_the_distribution() {
        // Trust Alice's source at 90 % and Tom's at 10 %: Tom's fact is far
        // more likely to be removed, so Alice is far more likely to survive.
        let (db, sigma) = intro_example();
        let mut weights = TrustWeights::with_default(Ratio::from_u64(1, 2));
        weights.set(FactId::new(0), Ratio::from_u64(9, 10));
        weights.set(FactId::new(1), Ratio::from_u64(1, 10));
        let generator = TrustWeightedGenerator::new(weights);
        let chain = generator
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        let semantics = OperationalSemantics::from_chain(&chain);
        let alice = parse_query(db.schema(), "Ans() :- Emp(1, 'Alice')").unwrap();
        let tom = parse_query(db.schema(), "Ans() :- Emp(1, 'Tom')").unwrap();
        let p_alice = semantics.entailment_probability(&db, &QueryEvaluator::new(alice));
        let p_tom = semantics.entailment_probability(&db, &QueryEvaluator::new(tom));
        assert!(p_alice > p_tom);
        assert!(semantics.total_probability().is_one());
        // Weight of removing Alice ∝ 1/10, Tom ∝ 9/10, both ∝ 9/100:
        // normalised over 1/10 + 9/10 + 9/100 = 109/100.
        assert_eq!(p_alice, Ratio::from_u64(90, 109));
        assert_eq!(p_tom, Ratio::from_u64(10, 109));
    }

    #[test]
    fn fully_trusted_facts_fall_back_to_uniform_choices() {
        let (db, sigma) = intro_example();
        let generator = TrustWeightedGenerator::new(TrustWeights::with_default(Ratio::one()));
        let chain = generator
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        assert!(chain.leaf_distribution_sums_to_one());
        // All three root operations get probability 1/3.
        for &child in chain.tree().children(chain.tree().root()) {
            assert_eq!(chain.edge_probability(child), &Ratio::from_u64(1, 3));
        }
    }

    #[test]
    fn singleton_only_variant_never_removes_pairs() {
        let (db, sigma) = intro_example();
        let generator = TrustWeightedGenerator::new(TrustWeights::half_trust()).singleton_only();
        let chain = generator
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        assert!(chain.tree().singleton_only());
        let semantics = OperationalSemantics::from_chain(&chain);
        // Only the two singleton repairs remain, each with probability 1/2.
        assert_eq!(semantics.repair_count(), 2);
        for entry in semantics.repairs() {
            assert_eq!(entry.probability, Ratio::from_u64(1, 2));
        }
    }

    #[test]
    #[should_panic(expected = "at most 1")]
    fn trust_above_one_is_rejected() {
        let _ = TrustWeights::with_default(Ratio::from_u64(3, 2));
    }
}
