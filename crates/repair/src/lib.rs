//! # `ucqa-repair`
//!
//! The operational approach to consistent query answering (Section 3 of the
//! paper), specialised to functional dependencies:
//!
//! * [`Operation`] — fact deletions `−F` with `|F| ∈ {1, 2}`
//!   (Definition 3.1) and justifiedness (Definition 3.3).
//! * [`RepairingSequence`] — sequences of justified operations, their
//!   results, and completeness (Definition 3.4).
//! * [`RepairingTree`] — the explicit rooted tree whose nodes are the
//!   repairing sequences `RS(D, Σ)` and whose leaves are the complete
//!   sequences `CRS(D, Σ)`.
//! * [`RepairingMarkovChain`] — a repairing Markov chain (Definition 3.5):
//!   the tree together with edge probabilities, its leaf distribution and
//!   reachable leaves.
//! * [`generator`] — the uniform Markov-chain generators `M^ur`, `M^us`,
//!   `M^uo` of Section 4 / Appendix A, and their singleton-operation
//!   variants of Section 7 / Appendices D.4 and E.
//! * [`OperationalSemantics`] — operational repairs with probabilities
//!   `⟦D⟧_M` and answer probabilities `P_{M,Q}(D, c̄)`
//!   (Definitions 3.7 / 3.8).
//!
//! Everything in this crate is *exact*: probabilities are rational numbers
//! and the tree is materialised explicitly, which is exponential in `|D|`
//! by nature.  These exact constructions are what the paper's proofs reason
//! about and what the test-suite validates the polynomial samplers of
//! `ucqa-core` against; the samplers themselves never build the tree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod error;
pub mod generator;
pub mod operation;
pub mod semantics;
pub mod sequence;
pub mod tree;
pub mod weighted;

pub use chain::RepairingMarkovChain;
pub use error::RepairError;
pub use generator::{GeneratorSpec, UniformSemantics};
pub use operation::{
    justified_operations, justified_operations_from_index, Operation, OperationScratch,
};
pub use semantics::{OperationalSemantics, RepairProbability};
pub use sequence::RepairingSequence;
pub use tree::{NodeId, RepairingTree, TreeLimits};
pub use weighted::{TrustWeightedGenerator, TrustWeights};

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::{
        justified_operations, GeneratorSpec, Operation, OperationalSemantics, RepairError,
        RepairingMarkovChain, RepairingSequence, RepairingTree, TreeLimits, UniformSemantics,
    };
}
