//! # `ucqa-repair`
//!
//! The operational approach to consistent query answering (Section 3 of the
//! paper), specialised to functional dependencies:
//!
//! * [`Operation`] — fact deletions `−F` with `|F| ∈ {1, 2}`
//!   (Definition 3.1) and justifiedness (Definition 3.3).
//! * [`RepairingSequence`] — sequences of justified operations, their
//!   results, and completeness (Definition 3.4).
//! * [`RepairingTree`] — the explicit rooted tree whose nodes are the
//!   repairing sequences `RS(D, Σ)` and whose leaves are the complete
//!   sequences `CRS(D, Σ)`.
//! * [`RepairingMarkovChain`] — a repairing Markov chain (Definition 3.5):
//!   the tree together with edge probabilities, its leaf distribution and
//!   reachable leaves.
//! * [`generator`] — the uniform Markov-chain generators `M^ur`, `M^us`,
//!   `M^uo` of Section 4 / Appendix A, and their singleton-operation
//!   variants of Section 7 / Appendices D.4 and E.
//! * [`OperationalSemantics`] — operational repairs with probabilities
//!   `⟦D⟧_M` and answer probabilities `P_{M,Q}(D, c̄)`
//!   (Definitions 3.7 / 3.8).
//!
//! Everything in this crate is *exact*: probabilities are rational numbers
//! and the tree is materialised explicitly, which is exponential in `|D|`
//! by nature.  These exact constructions are what the paper's proofs reason
//! about and what the test-suite validates the polynomial samplers of
//! `ucqa-core` against; the samplers themselves never build the tree.
//!
//! ## How the pieces compose
//!
//! The entry point is a [`GeneratorSpec`]: one of the three uniform
//! semantics ([`UniformSemantics::Repairs`] `M^ur`,
//! [`UniformSemantics::Sequences`] `M^us`,
//! [`UniformSemantics::Operations`] `M^uo`), optionally restricted to
//! singleton operations (`M^{·,1}` of Section 7 / Appendix E).
//! `GeneratorSpec::build_chain` materialises the corresponding
//! [`RepairingMarkovChain`] over the explicit [`RepairingTree`] — guarded
//! by [`TreeLimits`], since the tree has `|CRS(D, Σ)|` leaves — and
//! [`OperationalSemantics::from_chain`] folds its leaf distribution into
//! the probability space `⟦D⟧_M` over operational repairs, from which
//! `answer_probability` / batched `answer_probabilities` integrate any
//! query's answer probability as an exact [`ucqa_numeric::Ratio`].
//!
//! Two invariants the test-suite leans on: every leaf distribution sums
//! to exactly `1` (checked per generator on randomised instances), and
//! the uniform generators reproduce the worked probabilities of the
//! paper's running example (`3/9, 1/9, …` — experiment E1) digit for
//! digit.  When a polynomial sampler in `ucqa-core` claims to realise a
//! generator's leaf distribution, the claim is validated against *this*
//! crate's enumeration on small instances.
//!
//! The crate also hosts [`TrustWeightedGenerator`], a beyond-the-paper
//! extension biasing operation choices by per-fact trust weights while
//! keeping the repairing-chain structure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod error;
pub mod generator;
pub mod operation;
pub mod semantics;
pub mod sequence;
pub mod tree;
pub mod weighted;

pub use chain::RepairingMarkovChain;
pub use error::RepairError;
pub use generator::{GeneratorSpec, UniformSemantics};
pub use operation::{
    justified_operations, justified_operations_from_index, Operation, OperationScratch,
};
pub use semantics::{OperationalSemantics, RepairProbability};
pub use sequence::RepairingSequence;
pub use tree::{NodeId, RepairingTree, TreeLimits};
pub use weighted::{TrustWeightedGenerator, TrustWeights};

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::{
        justified_operations, GeneratorSpec, Operation, OperationalSemantics, RepairError,
        RepairingMarkovChain, RepairingSequence, RepairingTree, TreeLimits, UniformSemantics,
    };
}
