//! End-to-end FPRAS drivers for uniform operational CQA.
//!
//! [`OcqaEstimator`] wires together a uniform generator specification, the
//! matching polynomial sampler, and a Monte-Carlo estimator, and enforces
//! the constraint-class requirements under which the paper proves each
//! combination approximable:
//!
//! | Generator | Pair + singleton ops | Singleton ops only |
//! |---|---|---|
//! | `M^ur` (uniform repairs)   | primary keys (Thm 5.1(2)); **no FPRAS** for FDs (Thm 5.1(3)); open for keys | primary keys (Thm E.1(2)) |
//! | `M^us` (uniform sequences) | primary keys (Thm 6.1(2)); open for keys/FDs | primary keys (Thm E.8(2)) |
//! | `M^uo` (uniform operations)| arbitrary keys (Thm 7.1(2)); open for FDs (Prop. D.6 rules out plain Monte-Carlo) | arbitrary FDs (Thm 7.5) |
//!
//! Requesting a combination outside this table yields
//! [`CoreError::Unsupported`] with the relevant theorem cited in the error
//! message.

use rand::Rng;

use ucqa_db::{ConflictIndex, Database, FactSet, FdSet, Value};
use ucqa_query::lineage::DEFAULT_WITNESS_CAP;
use ucqa_query::{BankLiveSet, BankScratch, CompiledLineage, LineageBank, QueryEvaluator};
use ucqa_repair::{GeneratorSpec, UniformSemantics};

use crate::bounds;
use crate::budget::{AchievedBound, EstimateOutcome, QueryOutcome, RunBudget};
use crate::montecarlo::{
    estimate_fixed, estimate_fixed_batch, estimate_fixed_batch_budgeted, estimate_fixed_budgeted,
    estimate_stopping_batch, estimate_stopping_batch_budgeted, BudgetedStoppingOutcome,
    StoppingBatchExperiment, StoppingRuleEstimator, StoppingRuleOutcome,
};
use crate::sample_operations::{OperationWalkSampler, WalkScratch};
use crate::sample_repairs::RepairSampler;
use crate::sample_sequences::SequenceSampler;
use crate::CoreError;

/// How many samples to draw, and under which guarantee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimatorMode {
    /// The Dagum–Karp–Luby–Ross optimal stopping rule with the given
    /// sample cut-off: a relative `(ε, δ)`-guarantee whenever the cut-off
    /// is not hit.  This is the default and the practical choice.
    OptimalStopping {
        /// Hard cap on the number of samples.
        max_samples: u64,
    },
    /// A fixed number of samples derived from the worst-case lower bounds
    /// of [`crate::bounds`] (relative guarantee).  Fails when the bound is
    /// too small to be useful.
    FixedFromLowerBound,
    /// A fixed number of samples for an *additive* `(ε, δ)`-guarantee.
    FixedAdditive,
    /// An explicit number of samples (no formal guarantee; useful for
    /// benchmarks).
    FixedSamples(u64),
}

/// Approximation parameters `(ε, δ)` plus the estimator mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproximationParams {
    /// Relative (or additive, depending on the mode) error bound.
    pub epsilon: f64,
    /// Failure probability.
    pub delta: f64,
    /// The estimator mode.
    pub mode: EstimatorMode,
}

impl ApproximationParams {
    /// Creates parameters using the optimal stopping rule with a default
    /// cut-off of 10 million samples.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self, CoreError> {
        let params = ApproximationParams {
            epsilon,
            delta,
            mode: EstimatorMode::OptimalStopping {
                max_samples: 10_000_000,
            },
        };
        params.validate()?;
        Ok(params)
    }

    /// Switches to a different estimator mode.
    pub fn with_mode(mut self, mode: EstimatorMode) -> Self {
        self.mode = mode;
        self
    }

    fn validate(&self) -> Result<(), CoreError> {
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(CoreError::InvalidParameters {
                message: format!("epsilon must be in (0, 1), got {}", self.epsilon),
            });
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(CoreError::InvalidParameters {
                message: format!("delta must be in (0, 1), got {}", self.delta),
            });
        }
        Ok(())
    }
}

/// The result of an approximate OCQA run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The estimated probability `P_{M_Σ,Q}(D, c̄)`.
    pub value: f64,
    /// Number of samples drawn.
    pub samples: u64,
    /// Number of samples whose repair entailed the answer.
    pub successes: u64,
    /// Whether a sample cut-off truncated the run (the `(ε, δ)` guarantee
    /// then no longer applies; the value is the plain empirical mean).
    pub truncated: bool,
}

/// Which sampler backs the estimator.
///
/// The operations walker owns its precomputed [`ucqa_db::ConflictIndex`],
/// built once here so that every Monte-Carlo shard shares it by reference;
/// the sequences samplers are built in log-space-only mode because the
/// estimator never needs `sample_sequence` (skipping the exact `Natural`
/// DP cells, whose big-integer arithmetic dominates construction).
enum SamplerKind<'a> {
    Repairs(RepairSampler),
    RepairsSingleton(RepairSampler),
    Sequences(SequenceSampler),
    SequencesSingleton(SequenceSampler),
    Operations(OperationWalkSampler<'a>),
}

impl SamplerKind<'_> {
    /// Draws one repair into the reused buffer.
    ///
    /// This is the *only* place the Monte-Carlo loops consume the RNG —
    /// both the single-query and the batched experiment dispatch through
    /// it, which is what makes their outcomes bit-identical under a
    /// shared seed.
    fn sample_repair_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut FactSet,
        scratch: &mut WalkScratch,
    ) {
        match self {
            SamplerKind::Repairs(sampler) => sampler.sample_into(rng, out),
            SamplerKind::RepairsSingleton(sampler) => sampler.sample_singleton_into(rng, out),
            SamplerKind::Sequences(sampler) => sampler.sample_result_into(rng, out),
            SamplerKind::SequencesSingleton(sampler) => {
                sampler.sample_result_singleton_into(rng, out)
            }
            SamplerKind::Operations(walker) => walker.sample_result_into(rng, out, scratch),
        }
    }
}

/// An approximate (FPRAS) solver for `OCQA(Σ, M, Q)` over one database.
pub struct OcqaEstimator<'a> {
    db: &'a Database,
    sigma: &'a FdSet,
    spec: GeneratorSpec,
    sampler: SamplerKind<'a>,
}

impl<'a> OcqaEstimator<'a> {
    /// Creates an estimator for the given uniform generator, validating
    /// that the paper provides an FPRAS for the combination of generator
    /// and constraint class.
    pub fn new(db: &'a Database, sigma: &'a FdSet, spec: GeneratorSpec) -> Result<Self, CoreError> {
        Self::new_inner(db, sigma, spec, None)
    }

    /// As [`OcqaEstimator::new`], reusing a caller-maintained
    /// [`ConflictIndex`] for the uniform-operations walk — typically one
    /// kept current across database mutations with
    /// [`ConflictIndex::refresh`] — instead of rebuilding it from scratch.
    /// Estimates are bit-identical to [`OcqaEstimator::new`] under the
    /// same seed; only the construction cost differs.
    ///
    /// # Errors
    /// The same support errors as [`OcqaEstimator::new`]; additionally,
    /// the spec must use [`UniformSemantics::Operations`] (the repair and
    /// sequence generators do not consume a conflict index).
    ///
    /// # Panics
    /// Panics if `index` is stale with respect to `db` (see
    /// [`crate::sample_operations::OperationWalkSampler::with_index`]).
    pub fn with_conflict_index(
        db: &'a Database,
        sigma: &'a FdSet,
        spec: GeneratorSpec,
        index: ConflictIndex,
    ) -> Result<Self, CoreError> {
        if spec.semantics != UniformSemantics::Operations {
            return Err(CoreError::Unsupported {
                semantics: spec.semantics,
                singleton_only: spec.singleton_only,
                constraint_class: "any".to_string(),
                explanation: "a precomputed conflict index only backs the uniform-operations \
                              walk; use OcqaEstimator::new for the other generators"
                    .to_string(),
            });
        }
        Self::new_inner(db, sigma, spec, Some(index))
    }

    fn new_inner(
        db: &'a Database,
        sigma: &'a FdSet,
        spec: GeneratorSpec,
        index: Option<ConflictIndex>,
    ) -> Result<Self, CoreError> {
        let schema = db.schema();
        let primary_keys = sigma.is_primary_keys(schema);
        let keys = sigma.is_keys(schema);
        let constraint_class = if primary_keys {
            "primary keys"
        } else if keys {
            "keys"
        } else {
            "functional dependencies"
        };
        let unsupported = |explanation: &str| CoreError::Unsupported {
            semantics: spec.semantics,
            singleton_only: spec.singleton_only,
            constraint_class: constraint_class.to_string(),
            explanation: explanation.to_string(),
        };

        let sampler = match (spec.semantics, spec.singleton_only) {
            (UniformSemantics::Repairs, false) => {
                if !primary_keys {
                    return Err(unsupported(if keys {
                        "open problem (Theorem 5.1 covers primary keys; Proposition 5.5 \
                         rules out approximate repair counting for keys)"
                    } else {
                        "Theorem 5.1(3): no FPRAS for FDs unless RP = NP"
                    }));
                }
                SamplerKind::Repairs(RepairSampler::new(db, sigma)?)
            }
            (UniformSemantics::Repairs, true) => {
                if !primary_keys {
                    return Err(unsupported(
                        "Theorem E.1 covers primary keys only; E.1(3) rules out FDs",
                    ));
                }
                SamplerKind::RepairsSingleton(RepairSampler::new(db, sigma)?)
            }
            (UniformSemantics::Sequences, false) => {
                if !primary_keys {
                    return Err(unsupported(
                        "Theorem 6.1 covers primary keys; keys/FDs are open (conjectured hard)",
                    ));
                }
                SamplerKind::Sequences(SequenceSampler::new_log_space(db, sigma)?)
            }
            (UniformSemantics::Sequences, true) => {
                if !primary_keys {
                    return Err(unsupported("Theorem E.8 covers primary keys only"));
                }
                SamplerKind::SequencesSingleton(SequenceSampler::new_log_space(db, sigma)?)
            }
            (UniformSemantics::Operations, false) => {
                if !keys {
                    return Err(unsupported(
                        "Theorem 7.1(2) requires keys; for general FDs the target probability \
                         can be exponentially small (Proposition D.6), use singleton operations \
                         (Theorem 7.5) instead",
                    ));
                }
                SamplerKind::Operations(match index {
                    Some(index) => OperationWalkSampler::with_index(db, sigma, index),
                    None => OperationWalkSampler::new(db, sigma),
                })
            }
            (UniformSemantics::Operations, true) => {
                let walker = match index {
                    Some(index) => OperationWalkSampler::with_index(db, sigma, index),
                    None => OperationWalkSampler::new(db, sigma),
                };
                SamplerKind::Operations(walker.singleton_only())
            }
        };
        Ok(OcqaEstimator {
            db,
            sigma,
            spec,
            sampler,
        })
    }

    /// The generator this estimator approximates.
    pub fn spec(&self) -> GeneratorSpec {
        self.spec
    }

    /// The worst-case lower bound on the (non-zero) target probability for
    /// this generator and constraint class, from [`crate::bounds`].
    pub fn theoretical_lower_bound(&self, evaluator: &QueryEvaluator) -> ucqa_numeric::LogFloat {
        let d = self.db.len();
        let q = evaluator.query().atom_count();
        match &self.sampler {
            SamplerKind::Repairs(_) => bounds::rrfreq_lower_bound(d, q),
            SamplerKind::RepairsSingleton(_) => bounds::singleton_frequency_lower_bound(d, q),
            SamplerKind::Sequences(_) => bounds::srfreq_lower_bound(d, q),
            SamplerKind::SequencesSingleton(_) => bounds::singleton_frequency_lower_bound(d, q),
            SamplerKind::Operations(walker) if walker.is_singleton_only() => {
                bounds::fd_singleton_lower_bound(d, q)
            }
            SamplerKind::Operations(_) => {
                bounds::uniform_operations_keys_lower_bound(d, q, self.sigma.max_fds_per_relation())
            }
        }
    }

    /// Estimates `P_{M_Σ,Q}(D, c̄)`.
    ///
    /// The per-sample Bernoulli experiment is fully compiled before the
    /// Monte-Carlo loop starts: the query lineage of the candidate is
    /// compiled into a monotone DNF of witness bitsets
    /// ([`CompiledLineage`]), the sampled repair is drawn into a reused
    /// bitset buffer, and entailment becomes a word-level
    /// "some witness ⊆ repair" check — the loop performs no heap
    /// allocation and no backtracking search.  When the witness count
    /// exceeds [`ucqa_query::lineage::DEFAULT_WITNESS_CAP`], the check
    /// falls back to the (slot-compiled) backtracking evaluator.
    pub fn estimate<R: Rng + ?Sized>(
        &self,
        evaluator: &QueryEvaluator,
        candidate: &[Value],
        params: ApproximationParams,
        rng: &mut R,
    ) -> Result<Estimate, CoreError> {
        params.validate()?;
        // Compilation also validates the candidate arity, before any
        // sampling happens.
        let lineage = CompiledLineage::compile(evaluator, self.db, candidate)?;

        let mut sample = SampleExperiment::new(self, lineage.as_ref(), evaluator, candidate);
        let experiment = |rng: &mut R| -> bool { sample.draw(rng) };

        let estimate = match params.mode {
            EstimatorMode::OptimalStopping { max_samples } => {
                let outcome = StoppingRuleEstimator::new(params.epsilon, params.delta)
                    .with_max_samples(max_samples)
                    .estimate(rng, experiment);
                Estimate {
                    value: outcome.estimate,
                    samples: outcome.samples,
                    successes: outcome.successes,
                    truncated: outcome.truncated,
                }
            }
            _ => {
                let samples = self.fixed_sample_count(evaluator, params)?;
                let outcome = estimate_fixed(rng, samples, experiment);
                Estimate {
                    value: outcome.estimate,
                    samples: outcome.samples,
                    successes: outcome.successes,
                    truncated: false,
                }
            }
        };
        Ok(estimate)
    }

    /// As [`OcqaEstimator::estimate`], under a [`RunBudget`].
    ///
    /// The budget is polled between draws and consumes no randomness: an
    /// unconstrained budget draws the same sample stream as
    /// [`OcqaEstimator::estimate`] and reports the same counts, with
    /// status [`Converged`](crate::budget::BudgetStatus::Converged).  An interrupted run returns the
    /// partial estimate together with the achieved `(ε′, δ)` bound at the
    /// observed counts (see [`AchievedBound`]).
    pub fn estimate_with_budget<R: Rng + ?Sized>(
        &self,
        evaluator: &QueryEvaluator,
        candidate: &[Value],
        params: ApproximationParams,
        budget: &RunBudget,
        rng: &mut R,
    ) -> Result<EstimateOutcome, CoreError> {
        params.validate()?;
        // Compilation also validates the candidate arity, before any
        // sampling happens; the budget's compile-step cap (and its cancel
        // flag) interrupt pathological banks into evaluator fallback.
        let lineage = CompiledLineage::compile_with_budget(
            evaluator,
            self.db,
            candidate,
            &budget.compile_budget(),
        )?;

        let mut sample = SampleExperiment::new(self, lineage.as_ref(), evaluator, candidate);
        let experiment = |rng: &mut R| -> bool { sample.draw(rng) };

        let (outcome, status) = match params.mode {
            EstimatorMode::OptimalStopping { max_samples } => {
                StoppingRuleEstimator::try_new(params.epsilon, params.delta)?
                    .with_max_samples(max_samples)
                    .estimate_budgeted(rng, budget, experiment)
            }
            _ => {
                let samples = self.fixed_sample_count(evaluator, params)?;
                let (fixed, status) = estimate_fixed_budgeted(rng, samples, budget, experiment);
                (
                    StoppingRuleOutcome {
                        estimate: fixed.estimate,
                        samples: fixed.samples,
                        successes: fixed.successes,
                        truncated: !status.is_converged(),
                    },
                    status,
                )
            }
        };
        Ok(EstimateOutcome {
            queries: vec![QueryOutcome {
                estimate: outcome.estimate,
                samples: outcome.samples,
                successes: outcome.successes,
                status,
                achieved: AchievedBound::at(outcome.samples, outcome.successes, params.delta),
            }],
            total_draws: outcome.samples,
        })
    }

    /// The sample count of a fixed-sample [`EstimatorMode`]; an error for
    /// [`EstimatorMode::OptimalStopping`], whose sample count is data
    /// dependent.
    fn fixed_sample_count(
        &self,
        evaluator: &QueryEvaluator,
        params: ApproximationParams,
    ) -> Result<u64, CoreError> {
        match params.mode {
            EstimatorMode::FixedSamples(samples) => Ok(samples),
            EstimatorMode::FixedAdditive => Ok(bounds::samples_for_additive_error(
                params.epsilon,
                params.delta,
            )),
            EstimatorMode::FixedFromLowerBound => {
                let bound = self.theoretical_lower_bound(evaluator);
                bounds::samples_for_relative_error(params.epsilon, params.delta, bound).ok_or_else(
                    || CoreError::InvalidParameters {
                        message: "the worst-case lower bound is too small to derive a \
                                  practical sample count; use the optimal stopping rule \
                                  (`OcqaEstimator::estimate`, or \
                                  `BatchEstimator::estimate_stopping_batch` for a whole bank)"
                            .to_string(),
                    },
                )
            }
            EstimatorMode::OptimalStopping { .. } => Err(CoreError::InvalidParameters {
                message: "the optimal stopping rule has no fixed sample count; it is \
                          sequential and supported by `OcqaEstimator::estimate`, and for \
                          whole banks by `BatchEstimator::estimate_stopping_batch` and the \
                          round-based `estimate_stopping_batch_rounds`"
                    .to_string(),
            }),
        }
    }

    /// Estimates `P_{M_Σ,Q}(D, c̄)` with samples sharded across rayon
    /// worker threads.
    ///
    /// Only the fixed-sample-count modes are supported (the optimal
    /// stopping rule is inherently sequential).  Each shard owns its own
    /// deterministic RNG stream derived from `master_seed` and its own
    /// sampling buffers, so the result is bit-identical for a fixed master
    /// seed regardless of the number of worker threads.
    #[cfg(feature = "parallel")]
    pub fn estimate_parallel(
        &self,
        evaluator: &QueryEvaluator,
        candidate: &[Value],
        params: ApproximationParams,
        master_seed: u64,
    ) -> Result<Estimate, CoreError> {
        use crate::montecarlo::{estimate_fixed_parallel, DEFAULT_SHARD_SIZE};

        params.validate()?;
        let samples = self.fixed_sample_count(evaluator, params)?;
        // Compilation also validates the candidate arity, before any
        // sampling happens.
        let lineage = CompiledLineage::compile(evaluator, self.db, candidate)?;
        let outcome = estimate_fixed_parallel(master_seed, samples, DEFAULT_SHARD_SIZE, || {
            let mut sample = SampleExperiment::new(self, lineage.as_ref(), evaluator, candidate);
            move |rng: &mut rand::rngs::StdRng| sample.draw(rng)
        });
        Ok(Estimate {
            value: outcome.estimate,
            samples: outcome.samples,
            successes: outcome.successes,
            truncated: false,
        })
    }
}

/// One query of a batched estimation run: an evaluator plus its candidate
/// answer tuple.
#[derive(Debug, Clone, Copy)]
pub struct BatchQuery<'q> {
    /// The (slot-compiled) query evaluator.
    pub evaluator: &'q QueryEvaluator,
    /// The candidate answer tuple (empty for Boolean queries).
    pub candidate: &'q [Value],
}

impl<'q> BatchQuery<'q> {
    /// Creates a batch query.
    pub fn new(evaluator: &'q QueryEvaluator, candidate: &'q [Value]) -> Self {
        BatchQuery {
            evaluator,
            candidate,
        }
    }
}

/// A batched multi-query FPRAS driver: one sampler loop, `k` estimates.
///
/// Estimating `k` queries over the same database with `k` independent
/// [`OcqaEstimator::estimate`] calls runs `k` walk/sampler loops even
/// though a single draw of an operational repair can answer *all* queries
/// at once (the per-draw check is membership of the sampled repair in each
/// query's lineage).  [`BatchEstimator`] compiles the whole query bank
/// into a shared [`LineageBank`] — witness enumeration factored through a
/// shared scan trie over the per-query join plans, witnesses deduplicated
/// into one arena, per-query masks — and drives **one** sampling loop;
/// each sampled repair updates every per-query hit counter in a single
/// word-level pass.
///
/// **Bit-identity guarantee.**  The RNG is consumed by the shared draw
/// only, never by the per-query checks, so under a fixed seed
/// [`BatchEstimator::estimate_batch`] returns, for every query, exactly
/// the `Estimate` that a fresh single-query
/// [`OcqaEstimator::estimate`] run would return from the same RNG state —
/// and [`BatchEstimator::estimate_batch_parallel`] is bit-identical to
/// `k` independent [`OcqaEstimator::estimate_parallel`] runs under the
/// same master seed, regardless of thread count.
///
/// Three estimator modes are supported.  The fixed-sample-count modes
/// ([`EstimatorMode::FixedSamples`] and [`EstimatorMode::FixedAdditive`])
/// share one loop of a fixed length.  The adaptive
/// [`EstimatorMode::OptimalStopping`] routes through the batched
/// stopping rule ([`BatchEstimator::estimate_stopping_batch`], or the
/// round-based [`BatchEstimator::estimate_stopping_batch_rounds`] on the
/// parallel path): each query tracks its own Dagum–Karp–Luby–Ross success
/// target `Υ(ε, δ/k)` over the shared repair stream and **retires** as it
/// converges, shrinking the per-draw work until the last query stops the
/// stream.  Only [`EstimatorMode::FixedFromLowerBound`] is rejected (it
/// would derive a different fixed count per query, defeating the shared
/// loop).
pub struct BatchEstimator<'a> {
    inner: OcqaEstimator<'a>,
}

impl<'a> BatchEstimator<'a> {
    /// Creates a batched estimator for the given uniform generator, with
    /// the same constraint-class validation as [`OcqaEstimator::new`].
    pub fn new(db: &'a Database, sigma: &'a FdSet, spec: GeneratorSpec) -> Result<Self, CoreError> {
        Ok(BatchEstimator {
            inner: OcqaEstimator::new(db, sigma, spec)?,
        })
    }

    /// As [`BatchEstimator::new`], reusing a caller-maintained
    /// [`ConflictIndex`] for the uniform-operations walk (see
    /// [`OcqaEstimator::with_conflict_index`] for the errors, the
    /// staleness panics, and the bit-identity guarantee).
    pub fn with_conflict_index(
        db: &'a Database,
        sigma: &'a FdSet,
        spec: GeneratorSpec,
        index: ConflictIndex,
    ) -> Result<Self, CoreError> {
        Ok(BatchEstimator {
            inner: OcqaEstimator::with_conflict_index(db, sigma, spec, index)?,
        })
    }

    /// The generator this estimator approximates.
    pub fn spec(&self) -> GeneratorSpec {
        self.inner.spec()
    }

    /// The underlying single-query estimator (sharing the sampler and its
    /// precomputed conflict index).
    pub fn estimator(&self) -> &OcqaEstimator<'a> {
        &self.inner
    }

    /// The shared per-query sample count of a batched run, or an error for
    /// the modes the batched loop cannot honour.
    fn batch_sample_count(&self, params: ApproximationParams) -> Result<u64, CoreError> {
        params.validate()?;
        match params.mode {
            EstimatorMode::FixedSamples(samples) => Ok(samples),
            EstimatorMode::FixedAdditive => Ok(bounds::samples_for_additive_error(
                params.epsilon,
                params.delta,
            )),
            EstimatorMode::OptimalStopping { .. } | EstimatorMode::FixedFromLowerBound => {
                Err(CoreError::InvalidParameters {
                    message: "batched estimation shares one sample loop across all queries: \
                              use a fixed-sample-count mode (FixedSamples, FixedAdditive), \
                              or the adaptive OptimalStopping mode via \
                              `estimate_batch`/`estimate_stopping_batch{,_rounds}` \
                              (FixedFromLowerBound would derive a different count per query)"
                        .to_string(),
                })
            }
        }
    }

    /// The per-query stopping rule of a batched adaptive run over a bank
    /// of `bank_size`: relative error `ε` with failure probability
    /// `δ / bank_size`, so a union bound over the bank restores the
    /// overall `(ε, δ)` guarantee.
    fn per_query_stopping_rule(
        &self,
        params: ApproximationParams,
        bank_size: usize,
    ) -> StoppingRuleEstimator {
        StoppingRuleEstimator::new(params.epsilon, params.delta / bank_size.max(1) as f64)
    }

    /// The `max_samples` cut-off of an adaptive batched run, or an error
    /// when `params` is not in [`EstimatorMode::OptimalStopping`].
    fn stopping_cut_off(&self, params: ApproximationParams) -> Result<u64, CoreError> {
        params.validate()?;
        match params.mode {
            EstimatorMode::OptimalStopping { max_samples } => Ok(max_samples),
            other => Err(CoreError::InvalidParameters {
                message: format!(
                    "the batched stopping rule requires EstimatorMode::OptimalStopping \
                     (got {other:?}); use `estimate_batch` for the fixed-sample modes"
                ),
            }),
        }
    }

    /// Estimates `P_{M_Σ,Qᵢ}(D, c̄ᵢ)` for every query of the bank from one
    /// shared sequence of sampled repairs.
    ///
    /// Compiles the [`LineageBank`] (validating every candidate arity)
    /// before any sampling happens; queries whose witness enumeration
    /// overflows the cap fall back to the backtracking evaluator per draw
    /// while the rest stay on the word-level bitset path.
    ///
    /// [`EstimatorMode::OptimalStopping`] routes through
    /// [`BatchEstimator::estimate_stopping_batch`]; the fixed modes share
    /// one loop of the common length.
    pub fn estimate_batch<R: Rng + ?Sized>(
        &self,
        queries: &[BatchQuery<'_>],
        params: ApproximationParams,
        rng: &mut R,
    ) -> Result<Vec<Estimate>, CoreError> {
        if matches!(params.mode, EstimatorMode::OptimalStopping { .. }) {
            return self.estimate_stopping_batch(queries, params, rng);
        }
        let bank = self.compile_bank(queries)?;
        self.estimate_batch_with_bank(&bank, queries, params, rng)
    }

    /// As [`BatchEstimator::estimate_batch`] (fixed-sample modes only),
    /// driving a bank compiled earlier with
    /// [`BatchEstimator::compile_bank`] — the compile-once / estimate-many
    /// pattern, and the hook the `e17` bench uses to time compilation and
    /// estimation separately.
    ///
    /// # Panics
    /// Panics if `bank` was not compiled from `queries` (length mismatch).
    pub fn estimate_batch_with_bank<R: Rng + ?Sized>(
        &self,
        bank: &LineageBank,
        queries: &[BatchQuery<'_>],
        params: ApproximationParams,
        rng: &mut R,
    ) -> Result<Vec<Estimate>, CoreError> {
        assert_eq!(
            bank.len(),
            queries.len(),
            "bank was compiled from a different query list"
        );
        let samples = self.batch_sample_count(params)?;
        let mut experiment = BatchExperiment::new(&self.inner, bank, queries);
        let outcome = estimate_fixed_batch(rng, samples, queries.len(), |rng, successes| {
            experiment.draw(rng, successes)
        });
        Ok(Self::estimates_from(samples, &outcome.successes))
    }

    /// Estimates every query of the bank adaptively from **one** shared
    /// repair stream under the Dagum–Karp–Luby–Ross stopping rule: query
    /// `i` tracks its own success target `Υ(ε, δ/k)` and **retires** the
    /// moment it is reached — its witnesses drop out of the shared
    /// per-draw containment scan ([`BankLiveSet`]), so the per-draw cost
    /// shrinks as the bank drains — and the stream stops when the last
    /// query retires or `max_samples` truncates it (reported per query via
    /// [`Estimate::truncated`]; a zero-probability query truncates at the
    /// cut-off without stalling the retirement of the others).
    ///
    /// Requires [`EstimatorMode::OptimalStopping`].  With `δ/k` per query,
    /// a union bound gives: with probability at least `1 − δ`, **every**
    /// non-truncated estimate is within relative error `ε` of its true
    /// probability.
    ///
    /// **Bit-identity.**  The RNG is consumed by the shared repair draw
    /// only, and query `i` retires after observing exactly the stream
    /// prefix an independent run would draw, so each outcome is
    /// bit-identical to a standalone stopping-rule run with the same
    /// target `Υ(ε, δ/k)` from the same RNG state.  (The *round-based*
    /// parallel variant [`BatchEstimator::estimate_stopping_batch_rounds`]
    /// is the one that trades bit-identity for sharding — see there.)
    pub fn estimate_stopping_batch<R: Rng + ?Sized>(
        &self,
        queries: &[BatchQuery<'_>],
        params: ApproximationParams,
        rng: &mut R,
    ) -> Result<Vec<Estimate>, CoreError> {
        let max_samples = self.stopping_cut_off(params)?;
        let bank = self.compile_bank(queries)?;
        let target = self
            .per_query_stopping_rule(params, queries.len())
            .success_target();
        let targets = vec![target; queries.len()];
        let live = BankLiveSet::full(&bank);
        let mut experiment = BatchStoppingExperiment::new(&self.inner, &bank, queries, live);
        let outcome = estimate_stopping_batch(rng, &targets, max_samples, &mut experiment);
        Ok(outcome
            .outcomes
            .into_iter()
            .map(|o| Estimate {
                value: o.estimate,
                samples: o.samples,
                successes: o.successes,
                truncated: o.truncated,
            })
            .collect())
    }

    /// As [`BatchEstimator::estimate_batch`], under a [`RunBudget`].
    ///
    /// [`EstimatorMode::OptimalStopping`] routes through
    /// [`BatchEstimator::estimate_stopping_batch_with_budget`]; the fixed
    /// modes share one loop that the budget can cut at any draw, in which
    /// case every query reports the same truncated sample count together
    /// with its achieved `(ε′, δ)` bound.  The budget's compile-step cap
    /// also bounds bank compilation
    /// ([`BatchEstimator::compile_bank_with_budget`]).
    pub fn estimate_batch_with_budget<R: Rng + ?Sized>(
        &self,
        queries: &[BatchQuery<'_>],
        params: ApproximationParams,
        budget: &RunBudget,
        rng: &mut R,
    ) -> Result<EstimateOutcome, CoreError> {
        if matches!(params.mode, EstimatorMode::OptimalStopping { .. }) {
            return self.estimate_stopping_batch_with_budget(queries, params, budget, rng);
        }
        let samples = self.batch_sample_count(params)?;
        let bank = self.compile_bank_with_budget(queries, budget)?;
        let mut experiment = BatchExperiment::new(&self.inner, &bank, queries);
        let (outcome, status) =
            estimate_fixed_batch_budgeted(rng, samples, queries.len(), budget, |rng, successes| {
                experiment.draw(rng, successes)
            });
        let queries = outcome
            .successes
            .iter()
            .map(|&s| QueryOutcome {
                estimate: if outcome.samples == 0 {
                    0.0
                } else {
                    s as f64 / outcome.samples as f64
                },
                samples: outcome.samples,
                successes: s,
                status,
                achieved: AchievedBound::at(outcome.samples, s, params.delta),
            })
            .collect();
        Ok(EstimateOutcome {
            queries,
            total_draws: outcome.samples,
        })
    }

    /// As [`BatchEstimator::estimate_stopping_batch`], under a
    /// [`RunBudget`].
    ///
    /// The budget is polled between draws and consumes no randomness, so
    /// an unconstrained budget retires every query at exactly the draw
    /// [`BatchEstimator::estimate_stopping_batch`] would, with status
    /// [`Converged`](crate::budget::BudgetStatus::Converged)
    /// (property-tested bit-identical).  When
    /// the budget interrupts the stream, queries that already retired
    /// **keep their converged values**; queries still live report the
    /// empirical mean over the truncated stream, flagged
    /// [`BudgetExhausted`](crate::budget::BudgetStatus::BudgetExhausted) or
    /// [`Cancelled`](crate::budget::BudgetStatus::Cancelled), each with the achieved
    /// `(ε′, δ/k)` bound at its observed counts.  An interrupted outcome
    /// can be continued with
    /// [`BatchEstimator::estimate_stopping_batch_resume`].
    pub fn estimate_stopping_batch_with_budget<R: Rng + ?Sized>(
        &self,
        queries: &[BatchQuery<'_>],
        params: ApproximationParams,
        budget: &RunBudget,
        rng: &mut R,
    ) -> Result<EstimateOutcome, CoreError> {
        self.stopping_batch_budgeted(queries, params, budget, rng, None)
    }

    /// Continues an interrupted
    /// [`BatchEstimator::estimate_stopping_batch_with_budget`] run.
    ///
    /// `prior` must be the outcome of a budgeted stopping-batch run over
    /// the **same queries and parameters**, and `rng` must be the same
    /// generator, positioned where the interrupted run left it (the budget
    /// machinery consumes no randomness, so an interruption at draw `t`
    /// leaves the RNG after exactly `t` draws).  Converged entries keep
    /// their frozen outcomes; live entries pick their success counts back
    /// up, and the concatenated run is **bit-identical** to one
    /// uninterrupted run (property-tested).  Draw counts are absolute
    /// across resumption: `max_samples`, a draw cap and a
    /// [`tripped_at_draw`](crate::budget::CancelToken::tripped_at_draw)
    /// token all refer to the total stream length.
    pub fn estimate_stopping_batch_resume<R: Rng + ?Sized>(
        &self,
        queries: &[BatchQuery<'_>],
        params: ApproximationParams,
        budget: &RunBudget,
        prior: &EstimateOutcome,
        rng: &mut R,
    ) -> Result<EstimateOutcome, CoreError> {
        let resume = Self::budgeted_from(prior);
        self.stopping_batch_budgeted(queries, params, budget, rng, Some(&resume))
    }

    /// As [`BatchEstimator::estimate_stopping_batch_resume`], driving a
    /// bank compiled (or [refreshed](LineageBank::refresh)) earlier
    /// instead of recompiling — the **enrollment** path of the
    /// sliding-window estimator (`crate::stream`), and the admission dual
    /// of the retirement the stopping loop performs as queries converge.
    ///
    /// The live set is built from scratch: [`BankLiveSet::empty`], then
    /// [`BankLiveSet::enroll`] for exactly the prior's non-converged
    /// entries — the same membership the montecarlo resume derives, so
    /// the driver's retirement re-announcements for frozen entries are
    /// no-ops and construction cost tracks the enrolled set.  Converged
    /// entries of `prior` are returned **verbatim** (bit-identical,
    /// zero draws); enrolled entries continue their stream at absolute
    /// draw counts exactly as
    /// [`BatchEstimator::estimate_stopping_batch_resume`] would.
    ///
    /// `prior` is also the seeding hook for a *fresh* stream over a
    /// refreshed bank: hand in a baseline outcome whose entries carry
    /// zero counts and a non-converged status for everything that should
    /// (re-)enter the loop, and converged outcomes carried over verbatim
    /// for everything that should not.
    ///
    /// # Panics
    /// Panics if `bank` was not compiled from `queries`, if `prior` is
    /// for a different batch, or if `bank` is stale with respect to the
    /// estimator's database.
    pub fn estimate_stopping_batch_resume_with_bank<R: Rng + ?Sized>(
        &self,
        bank: &LineageBank,
        queries: &[BatchQuery<'_>],
        params: ApproximationParams,
        budget: &RunBudget,
        prior: &EstimateOutcome,
        rng: &mut R,
    ) -> Result<EstimateOutcome, CoreError> {
        assert_eq!(
            bank.len(),
            queries.len(),
            "bank was compiled from a different query list"
        );
        assert_eq!(
            prior.queries.len(),
            queries.len(),
            "prior outcome is for a different batch"
        );
        assert_eq!(
            bank.universe(),
            self.inner.db.len(),
            "bank is stale: refresh it against the database before resuming"
        );
        let max_samples = self.stopping_cut_off(params)?;
        let target = self
            .per_query_stopping_rule(params, queries.len())
            .success_target();
        let targets = vec![target; queries.len()];
        let mut live = BankLiveSet::empty(bank);
        for (query, outcome) in prior.queries.iter().enumerate() {
            if !outcome.status.is_converged() {
                live.enroll(bank, query);
            }
        }
        let mut experiment = BatchStoppingExperiment::new(&self.inner, bank, queries, live);
        let resume = Self::budgeted_from(prior);
        let budgeted = estimate_stopping_batch_budgeted(
            rng,
            &targets,
            max_samples,
            budget,
            &mut experiment,
            Some(&resume),
        );
        Ok(Self::outcome_from(
            budgeted,
            params.delta / queries.len().max(1) as f64,
        ))
    }

    /// Shared driver of the budgeted stopping-batch paths.
    fn stopping_batch_budgeted<R: Rng + ?Sized>(
        &self,
        queries: &[BatchQuery<'_>],
        params: ApproximationParams,
        budget: &RunBudget,
        rng: &mut R,
        resume: Option<&BudgetedStoppingOutcome>,
    ) -> Result<EstimateOutcome, CoreError> {
        let max_samples = self.stopping_cut_off(params)?;
        let bank = self.compile_bank_with_budget(queries, budget)?;
        let target = self
            .per_query_stopping_rule(params, queries.len())
            .success_target();
        let targets = vec![target; queries.len()];
        let live = BankLiveSet::full(&bank);
        let mut experiment = BatchStoppingExperiment::new(&self.inner, &bank, queries, live);
        let budgeted = estimate_stopping_batch_budgeted(
            rng,
            &targets,
            max_samples,
            budget,
            &mut experiment,
            resume,
        );
        Ok(Self::outcome_from(
            budgeted,
            params.delta / queries.len().max(1) as f64,
        ))
    }

    /// Round-based rayon-sharded variant of
    /// [`BatchEstimator::estimate_stopping_batch`]: draws `round_samples`
    /// shared repairs per round (sharded across worker threads with
    /// deterministic per-shard RNG streams), retires converged queries at
    /// each round boundary, and rebuilds the compacted live bank view for
    /// the next round.
    ///
    /// **Where bit-identity ends.**  Retirement is round-granular: a query
    /// crossing its success target mid-round keeps observing draws to the
    /// boundary and reports the empirical mean over at least `Υ(ε, δ/k)`
    /// successes, so its outcome differs from the sequential loop's
    /// `Υ/N` — the round-based variant matches the sequential one (and
    /// `k` independent stopping-rule runs) in *guarantee*, not
    /// bit-for-bit.  It **is** bit-identical across thread counts for a
    /// fixed `master_seed` (deterministic shard seeds, integer success
    /// sums, round-boundary retirement).  The `(ε, δ)` accuracy bound is
    /// validated against the exact solver in the test-suite.
    ///
    /// Only available with the `parallel` feature (rayon).
    #[cfg(feature = "parallel")]
    pub fn estimate_stopping_batch_rounds(
        &self,
        queries: &[BatchQuery<'_>],
        params: ApproximationParams,
        master_seed: u64,
        round_samples: u64,
    ) -> Result<Vec<Estimate>, CoreError> {
        use crate::montecarlo::{estimate_stopping_batch_rounds, DEFAULT_SHARD_SIZE};

        let max_samples = self.stopping_cut_off(params)?;
        let bank = self.compile_bank(queries)?;
        let target = self
            .per_query_stopping_rule(params, queries.len())
            .success_target();
        let targets = vec![target; queries.len()];
        let outcome = estimate_stopping_batch_rounds(
            master_seed,
            &targets,
            max_samples,
            round_samples,
            DEFAULT_SHARD_SIZE,
            |live_queries| {
                let live = BankLiveSet::restrict(&bank, live_queries);
                let mut experiment =
                    BatchStoppingExperiment::new(&self.inner, &bank, queries, live);
                move |rng: &mut rand::rngs::StdRng, hits: &mut [bool]| {
                    experiment.draw_live(rng, hits)
                }
            },
        );
        Ok(outcome
            .outcomes
            .into_iter()
            .map(|o| Estimate {
                value: o.estimate,
                samples: o.samples,
                successes: o.successes,
                truncated: o.truncated,
            })
            .collect())
    }

    /// As [`BatchEstimator::estimate_stopping_batch_rounds`], under a
    /// [`RunBudget`].
    ///
    /// The budget is polled once per **round boundary** (consuming no
    /// randomness): cancellation here is round-granular, an unconstrained
    /// budget is bit-identical to the unbudgeted rounds path, and the
    /// outcome stays bit-identical across thread counts for a fixed
    /// `master_seed` whenever the budget decisions are deterministic (draw
    /// caps and pre-tripped tokens are; wall-clock deadlines are not).
    /// Resumption is not offered on this path — mid-round work cannot be
    /// replayed draw-by-draw; use the sequential
    /// [`BatchEstimator::estimate_stopping_batch_resume`] when resumable
    /// interruption matters more than sharding.
    ///
    /// Only available with the `parallel` feature (rayon).
    #[cfg(feature = "parallel")]
    pub fn estimate_stopping_batch_rounds_with_budget(
        &self,
        queries: &[BatchQuery<'_>],
        params: ApproximationParams,
        master_seed: u64,
        round_samples: u64,
        budget: &RunBudget,
    ) -> Result<EstimateOutcome, CoreError> {
        use crate::montecarlo::{estimate_stopping_batch_rounds_budgeted, DEFAULT_SHARD_SIZE};

        let max_samples = self.stopping_cut_off(params)?;
        let bank = self.compile_bank_with_budget(queries, budget)?;
        let target = self
            .per_query_stopping_rule(params, queries.len())
            .success_target();
        let targets = vec![target; queries.len()];
        let budgeted = estimate_stopping_batch_rounds_budgeted(
            master_seed,
            &targets,
            max_samples,
            round_samples,
            DEFAULT_SHARD_SIZE,
            budget,
            |live_queries| {
                let live = BankLiveSet::restrict(&bank, live_queries);
                let mut experiment =
                    BatchStoppingExperiment::new(&self.inner, &bank, queries, live);
                move |rng: &mut rand::rngs::StdRng, hits: &mut [bool]| {
                    experiment.draw_live(rng, hits)
                }
            },
        );
        Ok(Self::outcome_from(
            budgeted,
            params.delta / queries.len().max(1) as f64,
        ))
    }

    /// As [`BatchEstimator::estimate_batch`], with the shared samples
    /// sharded across rayon worker threads exactly like
    /// [`OcqaEstimator::estimate_parallel`]: same shard boundaries, same
    /// per-shard RNG streams, integer success sums — so the result is
    /// bit-identical for a fixed master seed regardless of thread count,
    /// and bit-identical to `k` independent `estimate_parallel` runs.
    ///
    /// [`EstimatorMode::OptimalStopping`] routes through the round-based
    /// [`BatchEstimator::estimate_stopping_batch_rounds`] with
    /// [`DEFAULT_ROUND_SAMPLES`] samples per round.
    #[cfg(feature = "parallel")]
    pub fn estimate_batch_parallel(
        &self,
        queries: &[BatchQuery<'_>],
        params: ApproximationParams,
        master_seed: u64,
    ) -> Result<Vec<Estimate>, CoreError> {
        use crate::montecarlo::{estimate_fixed_batch_parallel, DEFAULT_SHARD_SIZE};

        if matches!(params.mode, EstimatorMode::OptimalStopping { .. }) {
            return self.estimate_stopping_batch_rounds(
                queries,
                params,
                master_seed,
                DEFAULT_ROUND_SAMPLES,
            );
        }
        let samples = self.batch_sample_count(params)?;
        let bank = self.compile_bank(queries)?;
        let outcome = estimate_fixed_batch_parallel(
            master_seed,
            samples,
            DEFAULT_SHARD_SIZE,
            queries.len(),
            || {
                let mut experiment = BatchExperiment::new(&self.inner, &bank, queries);
                move |rng: &mut rand::rngs::StdRng, successes: &mut [u64]| {
                    experiment.draw(rng, successes)
                }
            },
        );
        Ok(Self::estimates_from(samples, &outcome.successes))
    }

    /// Compiles the bank's shared lineage ([`LineageBank::compile`]:
    /// grounded plan-ordered atom sequences factored into one scan trie,
    /// witnesses deduplicated into one arena), validating every candidate
    /// arity.  All `estimate_*` batch paths call this internally; exposing
    /// it lets callers compile once and estimate many times
    /// ([`BatchEstimator::estimate_batch_with_bank`]).
    pub fn compile_bank(&self, queries: &[BatchQuery<'_>]) -> Result<LineageBank, CoreError> {
        let refs: Vec<(&QueryEvaluator, &[Value])> =
            queries.iter().map(|q| (q.evaluator, q.candidate)).collect();
        Ok(LineageBank::compile(self.inner.db, &refs)?)
    }

    /// As [`BatchEstimator::compile_bank`], under the compile-time part of
    /// a [`RunBudget`] ([`RunBudget::with_max_compile_steps`] and the
    /// cancel token).  An interrupted enumeration degrades the **whole
    /// bank** to evaluator fallback — a partial witness set would
    /// under-report entailment — so estimation proceeds correctly, just
    /// without the word-level bitset fast path.  An unconstrained budget
    /// compiles the identical bank as [`BatchEstimator::compile_bank`].
    pub fn compile_bank_with_budget(
        &self,
        queries: &[BatchQuery<'_>],
        budget: &RunBudget,
    ) -> Result<LineageBank, CoreError> {
        let refs: Vec<(&QueryEvaluator, &[Value])> =
            queries.iter().map(|q| (q.evaluator, q.candidate)).collect();
        Ok(LineageBank::compile_with_budget(
            self.inner.db,
            &refs,
            DEFAULT_WITNESS_CAP,
            &budget.compile_budget(),
        )?)
    }

    /// As [`BatchEstimator::compile_bank`], on the unplanned baseline
    /// ([`LineageBank::compile_unplanned`]: one naive backtracking
    /// enumeration per entry).  The resulting bank holds the same witness
    /// sets, so estimates driven through it are bit-identical — only the
    /// compile cost differs.  Kept for the `e17` bench and the
    /// before/after property tests.
    pub fn compile_bank_unplanned(
        &self,
        queries: &[BatchQuery<'_>],
    ) -> Result<LineageBank, CoreError> {
        let refs: Vec<(&QueryEvaluator, &[Value])> =
            queries.iter().map(|q| (q.evaluator, q.candidate)).collect();
        Ok(LineageBank::compile_unplanned(self.inner.db, &refs)?)
    }

    /// Converts a budgeted stopping-batch outcome into the public
    /// [`EstimateOutcome`], attaching each query's achieved `(ε′, δ/k)`
    /// bound at its observed counts.
    fn outcome_from(budgeted: BudgetedStoppingOutcome, per_query_delta: f64) -> EstimateOutcome {
        let queries = budgeted
            .outcomes
            .iter()
            .zip(&budgeted.statuses)
            .map(|(o, &status)| QueryOutcome {
                estimate: o.estimate,
                samples: o.samples,
                successes: o.successes,
                status,
                achieved: AchievedBound::at(o.samples, o.successes, per_query_delta),
            })
            .collect();
        EstimateOutcome {
            queries,
            total_draws: budgeted.total_samples,
        }
    }

    /// Reconstructs the resumable montecarlo-layer outcome from a prior
    /// public [`EstimateOutcome`].
    fn budgeted_from(prior: &EstimateOutcome) -> BudgetedStoppingOutcome {
        BudgetedStoppingOutcome {
            outcomes: prior
                .queries
                .iter()
                .map(|q| StoppingRuleOutcome {
                    estimate: q.estimate,
                    samples: q.samples,
                    successes: q.successes,
                    truncated: !q.status.is_converged(),
                })
                .collect(),
            statuses: prior.queries.iter().map(|q| q.status).collect(),
            total_samples: prior.total_draws,
        }
    }

    fn estimates_from(samples: u64, successes: &[u64]) -> Vec<Estimate> {
        successes
            .iter()
            .map(|&s| Estimate {
                value: if samples == 0 {
                    0.0
                } else {
                    s as f64 / samples as f64
                },
                samples,
                successes: s,
                truncated: false,
            })
            .collect()
    }
}

/// Default number of shared repairs drawn per round by the round-based
/// adaptive batch path ([`BatchEstimator::estimate_batch_parallel`] in
/// [`EstimatorMode::OptimalStopping`]): a few shards' worth, so rounds
/// parallelise while retirement stays reasonably fine-grained.
#[cfg(feature = "parallel")]
pub const DEFAULT_ROUND_SAMPLES: u64 = 4 * crate::montecarlo::DEFAULT_SHARD_SIZE;

/// One fully compiled *adaptive* batched Bernoulli experiment: draw a
/// repair into a reused buffer, write per-query hits for the **live**
/// queries only, compacting the shared witness scan as queries retire
/// (the [`BankLiveSet`] drops witnesses referenced only by retired
/// queries).
struct BatchStoppingExperiment<'e, 'a> {
    estimator: &'e OcqaEstimator<'a>,
    bank: &'e LineageBank,
    queries: &'e [BatchQuery<'e>],
    live: BankLiveSet,
    repair: FactSet,
    scratch: WalkScratch,
    bank_scratch: BankScratch,
}

impl<'e, 'a> BatchStoppingExperiment<'e, 'a> {
    fn new(
        estimator: &'e OcqaEstimator<'a>,
        bank: &'e LineageBank,
        queries: &'e [BatchQuery<'e>],
        live: BankLiveSet,
    ) -> Self {
        BatchStoppingExperiment {
            estimator,
            bank,
            queries,
            live,
            repair: FactSet::empty(estimator.db.len()),
            scratch: WalkScratch::new(),
            bank_scratch: BankScratch::new(),
        }
    }

    /// Draws one shared repair and writes `hits[q]` for every live query
    /// (fallback entries route through the backtracking evaluator).
    fn draw_live<R: Rng + ?Sized>(&mut self, rng: &mut R, hits: &mut [bool]) {
        self.estimator
            .sampler
            .sample_repair_into(rng, &mut self.repair, &mut self.scratch);
        self.bank
            .evaluate_live_into(&self.live, &self.repair, &mut self.bank_scratch, hits);
        for &q in self.live.live_queries() {
            let query = &self.queries[q];
            if self.bank.is_fallback(q) {
                hits[q] = query
                    .evaluator
                    .has_answer(self.estimator.db, &self.repair, query.candidate)
                    .expect("candidate arity was validated during bank compilation");
            } else {
                debug_assert_eq!(
                    hits[q],
                    query
                        .evaluator
                        .has_answer(self.estimator.db, &self.repair, query.candidate)
                        .expect("candidate arity was validated during bank compilation"),
                    "live lineage bank disagrees with the backtracking evaluator on query {q}"
                );
            }
        }
    }
}

impl<R: Rng + ?Sized> StoppingBatchExperiment<R> for BatchStoppingExperiment<'_, '_> {
    fn draw(&mut self, rng: &mut R, hits: &mut [bool]) {
        self.draw_live(rng, hits);
    }

    fn retire(&mut self, query: usize) {
        self.live.retire(self.bank, query);
    }
}

/// One fully compiled *batched* Bernoulli experiment: draw a repair into a
/// reused buffer, update every per-query hit counter against the shared
/// lineage bank in one word-level pass.
struct BatchExperiment<'e, 'a> {
    estimator: &'e OcqaEstimator<'a>,
    bank: &'e LineageBank,
    queries: &'e [BatchQuery<'e>],
    repair: FactSet,
    scratch: WalkScratch,
    bank_scratch: BankScratch,
    hits: Vec<bool>,
}

impl<'e, 'a> BatchExperiment<'e, 'a> {
    fn new(
        estimator: &'e OcqaEstimator<'a>,
        bank: &'e LineageBank,
        queries: &'e [BatchQuery<'e>],
    ) -> Self {
        BatchExperiment {
            estimator,
            bank,
            queries,
            repair: FactSet::empty(estimator.db.len()),
            scratch: WalkScratch::new(),
            bank_scratch: BankScratch::new(),
            hits: vec![false; queries.len()],
        }
    }

    fn draw<R: Rng + ?Sized>(&mut self, rng: &mut R, successes: &mut [u64]) {
        self.estimator
            .sampler
            .sample_repair_into(rng, &mut self.repair, &mut self.scratch);
        self.bank
            .evaluate_into(&self.repair, &mut self.bank_scratch, &mut self.hits);
        for (index, query) in self.queries.iter().enumerate() {
            let hit = if self.bank.is_fallback(index) {
                query
                    .evaluator
                    .has_answer(self.estimator.db, &self.repair, query.candidate)
                    .expect("candidate arity was validated during bank compilation")
            } else {
                debug_assert_eq!(
                    self.hits[index],
                    query
                        .evaluator
                        .has_answer(self.estimator.db, &self.repair, query.candidate)
                        .expect("candidate arity was validated during bank compilation"),
                    "lineage bank disagrees with the backtracking evaluator on query {index}"
                );
                self.hits[index]
            };
            if hit {
                successes[index] += 1;
            }
        }
    }
}

/// One fully compiled Bernoulli experiment: draw a repair into a reused
/// buffer, check entailment against the compiled lineage.
///
/// Construction hoists everything out of the Monte-Carlo loop: the
/// operations walker, the repair buffer, and the walk scratch.  `draw`
/// performs no heap allocation on any sampler path (the buffers reach
/// steady-state capacity after the first few draws).
struct SampleExperiment<'e, 'a> {
    estimator: &'e OcqaEstimator<'a>,
    lineage: Option<&'e CompiledLineage>,
    evaluator: &'e QueryEvaluator,
    candidate: &'e [Value],
    repair: FactSet,
    scratch: WalkScratch,
}

impl<'e, 'a> SampleExperiment<'e, 'a> {
    fn new(
        estimator: &'e OcqaEstimator<'a>,
        lineage: Option<&'e CompiledLineage>,
        evaluator: &'e QueryEvaluator,
        candidate: &'e [Value],
    ) -> Self {
        SampleExperiment {
            estimator,
            lineage,
            evaluator,
            candidate,
            repair: FactSet::empty(estimator.db.len()),
            scratch: WalkScratch::new(),
        }
    }

    fn draw<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        self.estimator
            .sampler
            .sample_repair_into(rng, &mut self.repair, &mut self.scratch);
        match self.lineage {
            Some(lineage) => {
                let entailed = lineage.entails(&self.repair);
                debug_assert_eq!(
                    entailed,
                    self.evaluator
                        .has_answer(self.estimator.db, &self.repair, self.candidate)
                        .expect("candidate arity was validated before sampling"),
                    "compiled lineage disagrees with the backtracking evaluator"
                );
                entailed
            }
            None => self
                .evaluator
                .has_answer(self.estimator.db, &self.repair, self.candidate)
                .expect("candidate arity was validated before sampling"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{BudgetStatus, CancelToken};
    use crate::exact::ExactSolver;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ucqa_db::{FunctionalDependency, Schema};
    use ucqa_query::parser::parse_query;

    fn figure2() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A1", "A2"]).unwrap();
        let mut db = Database::with_schema(schema);
        for (a, b) in [
            ("a1", "b1"),
            ("a1", "b2"),
            ("a1", "b3"),
            ("a2", "b1"),
            ("a3", "b1"),
            ("a3", "b2"),
        ] {
            db.insert_values("R", [Value::str(a), Value::str(b)])
                .unwrap();
        }
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A1"], &["A2"]).unwrap());
        (db, sigma)
    }

    /// A two-key database (arbitrary keys, not primary keys).
    fn two_key_database() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        let mut db = Database::with_schema(schema);
        for (a, b) in [(1, 1), (1, 2), (2, 1), (2, 2), (3, 3)] {
            db.insert_values("R", [Value::int(a), Value::int(b)])
                .unwrap();
        }
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["B"], &["A"]).unwrap());
        (db, sigma)
    }

    fn all_specs() -> Vec<GeneratorSpec> {
        vec![
            GeneratorSpec::uniform_repairs(),
            GeneratorSpec::uniform_repairs().with_singleton_only(),
            GeneratorSpec::uniform_sequences(),
            GeneratorSpec::uniform_sequences().with_singleton_only(),
            GeneratorSpec::uniform_operations(),
            GeneratorSpec::uniform_operations().with_singleton_only(),
        ]
    }

    #[test]
    fn estimates_match_exact_probabilities_on_primary_keys() {
        let (db, sigma) = figure2();
        let q = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let candidate = [Value::str("b1")];
        let solver = ExactSolver::new(&db, &sigma);
        let params = ApproximationParams::new(0.05, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(2024);
        for spec in all_specs() {
            let exact = solver
                .answer_probability(spec, &evaluator, &candidate)
                .unwrap()
                .to_f64();
            let estimator = OcqaEstimator::new(&db, &sigma, spec).unwrap();
            let estimate = estimator
                .estimate(&evaluator, &candidate, params, &mut rng)
                .unwrap();
            assert!(!estimate.truncated, "spec {}", spec.short_name());
            let relative_error = (estimate.value - exact).abs() / exact;
            assert!(
                relative_error < 0.1,
                "spec {}: exact {exact}, estimate {} (relative error {relative_error})",
                spec.short_name(),
                estimate.value
            );
        }
    }

    #[test]
    fn uniform_operations_supports_arbitrary_keys() {
        let (db, sigma) = two_key_database();
        assert!(!sigma.is_primary_keys(db.schema()));
        let q = parse_query(db.schema(), "Ans() :- R(3, 3)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let solver = ExactSolver::new(&db, &sigma);
        let exact = solver
            .answer_probability(GeneratorSpec::uniform_operations(), &evaluator, &[])
            .unwrap()
            .to_f64();
        let estimator =
            OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_operations()).unwrap();
        let params = ApproximationParams::new(0.05, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let estimate = estimator
            .estimate(&evaluator, &[], params, &mut rng)
            .unwrap();
        let relative_error = (estimate.value - exact).abs() / exact;
        assert!(
            relative_error < 0.1,
            "exact {exact}, got {}",
            estimate.value
        );
    }

    #[test]
    fn unsupported_combinations_are_rejected_with_theorem_citations() {
        let (db, sigma) = two_key_database();
        // Uniform repairs / sequences over non-primary keys: rejected.
        for spec in [
            GeneratorSpec::uniform_repairs(),
            GeneratorSpec::uniform_sequences(),
            GeneratorSpec::uniform_repairs().with_singleton_only(),
            GeneratorSpec::uniform_sequences().with_singleton_only(),
        ] {
            match OcqaEstimator::new(&db, &sigma, spec) {
                Err(CoreError::Unsupported { .. }) => {}
                Err(other) => panic!("{spec:?}: unexpected error {other}"),
                Ok(_) => panic!("{spec:?}: expected an Unsupported error"),
            }
        }
        // Uniform operations with pair removals over non-key FDs: rejected,
        // but the singleton variant is supported (Theorem 7.5).
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B", "C"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::int(0), Value::int(0), Value::int(0)])
            .unwrap();
        db.insert_values("R", [Value::int(0), Value::int(1), Value::int(1)])
            .unwrap();
        let mut fds = FdSet::new();
        fds.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        assert!(matches!(
            OcqaEstimator::new(&db, &fds, GeneratorSpec::uniform_operations()),
            Err(CoreError::Unsupported { .. })
        ));
        assert!(OcqaEstimator::new(
            &db,
            &fds,
            GeneratorSpec::uniform_operations().with_singleton_only()
        )
        .is_ok());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(ApproximationParams::new(0.0, 0.1).is_err());
        assert!(ApproximationParams::new(0.1, 1.5).is_err());
        let (db, sigma) = figure2();
        let estimator = OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_repairs()).unwrap();
        let q = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        // Wrong candidate arity surfaces as a query error.
        let params = ApproximationParams::new(0.1, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            estimator.estimate(
                &evaluator,
                &[Value::int(1), Value::int(2)],
                params,
                &mut rng
            ),
            Err(CoreError::Query(_))
        ));
    }

    #[test]
    fn fixed_modes_work_and_report_sample_counts() {
        let (db, sigma) = figure2();
        let q = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let candidate = [Value::str("b1")];
        let estimator = OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_repairs()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);

        let additive = ApproximationParams::new(0.05, 0.05)
            .unwrap()
            .with_mode(EstimatorMode::FixedAdditive);
        let estimate = estimator
            .estimate(&evaluator, &candidate, additive, &mut rng)
            .unwrap();
        assert!((estimate.value - 0.25).abs() < 0.05);

        let explicit = ApproximationParams::new(0.05, 0.05)
            .unwrap()
            .with_mode(EstimatorMode::FixedSamples(500));
        let estimate = estimator
            .estimate(&evaluator, &candidate, explicit, &mut rng)
            .unwrap();
        assert_eq!(estimate.samples, 500);

        let from_bound = ApproximationParams::new(0.3, 0.2)
            .unwrap()
            .with_mode(EstimatorMode::FixedFromLowerBound);
        let estimate = estimator
            .estimate(&evaluator, &candidate, from_bound, &mut rng)
            .unwrap();
        assert!((estimate.value - 0.25).abs() < 0.25 * 0.3 + 0.02);
    }

    #[test]
    fn batched_estimates_are_bit_identical_to_single_query_runs() {
        let (db, sigma) = figure2();
        let lookup = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let lookup = QueryEvaluator::new(lookup);
        let member = parse_query(db.schema(), "Ans() :- R('a3', 'b1')").unwrap();
        let member = QueryEvaluator::new(member);
        let never = parse_query(db.schema(), "Ans() :- R('zz', 'zz')").unwrap();
        let never = QueryEvaluator::new(never);
        let b1 = [Value::str("b1")];
        let queries = [
            BatchQuery::new(&lookup, &b1),
            BatchQuery::new(&member, &[]),
            BatchQuery::new(&never, &[]),
        ];
        let params = ApproximationParams::new(0.1, 0.1)
            .unwrap()
            .with_mode(EstimatorMode::FixedSamples(2_000));
        for spec in all_specs() {
            let batch = BatchEstimator::new(&db, &sigma, spec).unwrap();
            let batched = batch.estimate_batch(&queries, params, &mut StdRng::seed_from_u64(99));
            let batched = batched.unwrap();
            assert_eq!(batched.len(), queries.len());
            for (i, query) in queries.iter().enumerate() {
                let single = batch
                    .estimator()
                    .estimate(
                        query.evaluator,
                        query.candidate,
                        params,
                        &mut StdRng::seed_from_u64(99),
                    )
                    .unwrap();
                assert_eq!(batched[i], single, "spec {}, query {i}", spec.short_name());
            }
            // The impossible query is estimated at exactly zero.
            assert_eq!(batched[2].successes, 0, "spec {}", spec.short_name());
        }
    }

    #[test]
    fn batched_stopping_is_bit_identical_to_per_query_stopping_runs() {
        // The sequential adaptive batch draws one shared repair stream;
        // query i's outcome must equal a standalone stopping-rule run
        // with the same per-query target Υ(ε, δ/k) from the same seed —
        // the per-query checks consume no randomness, so each query
        // observes exactly the stream prefix its standalone run would
        // draw.
        let (db, sigma) = figure2();
        let lookup = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let lookup = QueryEvaluator::new(lookup);
        let member = parse_query(db.schema(), "Ans() :- R('a3', 'b1')").unwrap();
        let member = QueryEvaluator::new(member);
        let b1 = [Value::str("b1")];
        let queries = [BatchQuery::new(&lookup, &b1), BatchQuery::new(&member, &[])];
        let params = ApproximationParams::new(0.25, 0.2).unwrap().with_mode(
            EstimatorMode::OptimalStopping {
                max_samples: 200_000,
            },
        );
        for spec in all_specs() {
            let batch = BatchEstimator::new(&db, &sigma, spec).unwrap();
            // `estimate_batch` routes OptimalStopping to the batched
            // stopping rule.
            let via_batch = batch
                .estimate_batch(&queries, params, &mut StdRng::seed_from_u64(17))
                .unwrap();
            let direct = batch
                .estimate_stopping_batch(&queries, params, &mut StdRng::seed_from_u64(17))
                .unwrap();
            assert_eq!(via_batch, direct, "spec {}", spec.short_name());
            // Per-query: a standalone DKLR run with target Υ(ε, δ/2).
            let rule = StoppingRuleEstimator::new(0.25, 0.2 / queries.len() as f64)
                .with_max_samples(200_000);
            for (i, query) in queries.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(17);
                let estimator = OcqaEstimator::new(&db, &sigma, spec).unwrap();
                let lineage =
                    CompiledLineage::compile(query.evaluator, &db, query.candidate).unwrap();
                let mut sample = SampleExperiment::new(
                    &estimator,
                    lineage.as_ref(),
                    query.evaluator,
                    query.candidate,
                );
                let standalone = rule.estimate(&mut rng, |rng| sample.draw(rng));
                assert!(!standalone.truncated);
                assert_eq!(
                    direct[i],
                    Estimate {
                        value: standalone.estimate,
                        samples: standalone.samples,
                        successes: standalone.successes,
                        truncated: false,
                    },
                    "spec {}, query {i}",
                    spec.short_name()
                );
            }
        }
    }

    #[test]
    fn batched_stopping_truncates_impossible_queries_without_stalling_others() {
        let (db, sigma) = figure2();
        let lookup = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let lookup = QueryEvaluator::new(lookup);
        let never = parse_query(db.schema(), "Ans() :- R('zz', 'zz')").unwrap();
        let never = QueryEvaluator::new(never);
        let b1 = [Value::str("b1")];
        let queries = [BatchQuery::new(&lookup, &b1), BatchQuery::new(&never, &[])];
        let params = ApproximationParams::new(0.2, 0.1)
            .unwrap()
            .with_mode(EstimatorMode::OptimalStopping { max_samples: 5_000 });
        let batch = BatchEstimator::new(&db, &sigma, GeneratorSpec::uniform_operations()).unwrap();
        let estimates = batch
            .estimate_stopping_batch(&queries, params, &mut StdRng::seed_from_u64(8))
            .unwrap();
        assert!(!estimates[0].truncated);
        assert!(
            estimates[0].samples < 5_000,
            "the feasible query retires before the cut-off"
        );
        assert!((estimates[0].value - 0.25).abs() < 0.25 * 0.3);
        assert!(estimates[1].truncated);
        assert_eq!(estimates[1].samples, 5_000);
        assert_eq!(estimates[1].successes, 0);
        assert_eq!(estimates[1].value, 0.0);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn round_based_stopping_matches_guarantee_and_thread_counts() {
        let (db, sigma) = figure2();
        let solver = ExactSolver::new(&db, &sigma);
        let lookup = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let lookup = QueryEvaluator::new(lookup);
        let member = parse_query(db.schema(), "Ans() :- R('a3', 'b1')").unwrap();
        let member = QueryEvaluator::new(member);
        let b1 = [Value::str("b1")];
        let queries = [BatchQuery::new(&lookup, &b1), BatchQuery::new(&member, &[])];
        let params = ApproximationParams::new(0.1, 0.05).unwrap().with_mode(
            EstimatorMode::OptimalStopping {
                max_samples: 10_000_000,
            },
        );
        let spec = GeneratorSpec::uniform_operations();
        let batch = BatchEstimator::new(&db, &sigma, spec).unwrap();
        // `estimate_batch_parallel` routes OptimalStopping to the
        // round-based stopping rule with the default round size.
        let baseline = batch.estimate_batch_parallel(&queries, params, 23).unwrap();
        let direct = batch
            .estimate_stopping_batch_rounds(&queries, params, 23, DEFAULT_ROUND_SAMPLES)
            .unwrap();
        assert_eq!(baseline, direct);
        for (i, query) in queries.iter().enumerate() {
            let estimate = baseline[i];
            assert!(!estimate.truncated, "query {i}");
            let exact = solver
                .answer_probability(spec, query.evaluator, query.candidate)
                .unwrap()
                .to_f64();
            let relative_error = (estimate.value - exact).abs() / exact;
            assert!(
                relative_error < 0.15,
                "query {i}: exact {exact}, estimate {} (relative error {relative_error})",
                estimate.value
            );
        }
        // Bit-identical across thread counts.
        for threads in [1usize, 2, 7] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let outcome = pool
                .install(|| batch.estimate_batch_parallel(&queries, params, 23))
                .unwrap();
            assert_eq!(outcome, baseline, "{threads} threads");
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_batched_estimates_match_independent_parallel_runs() {
        let (db, sigma) = figure2();
        let lookup = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let lookup = QueryEvaluator::new(lookup);
        let member = parse_query(db.schema(), "Ans() :- R('a3', 'b1')").unwrap();
        let member = QueryEvaluator::new(member);
        let b1 = [Value::str("b1")];
        let queries = [BatchQuery::new(&lookup, &b1), BatchQuery::new(&member, &[])];
        let params = ApproximationParams::new(0.1, 0.1)
            .unwrap()
            .with_mode(EstimatorMode::FixedSamples(10_000));
        let batch = BatchEstimator::new(&db, &sigma, GeneratorSpec::uniform_operations()).unwrap();
        let batched = batch.estimate_batch_parallel(&queries, params, 7).unwrap();
        for (i, query) in queries.iter().enumerate() {
            let single = batch
                .estimator()
                .estimate_parallel(query.evaluator, query.candidate, params, 7)
                .unwrap();
            assert_eq!(batched[i], single, "query {i}");
        }
    }

    #[test]
    fn consistent_database_estimates_exactly_one() {
        // A consistent database has a single repair: the database itself.
        // Every query it entails must be estimated at exactly 1.
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        let mut db = Database::with_schema(schema);
        for (a, b) in [(1, 1), (2, 2), (3, 3)] {
            db.insert_values("R", [Value::int(a), Value::int(b)])
                .unwrap();
        }
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        assert!(sigma.satisfied_by_database(&db));
        let q1 = QueryEvaluator::new(parse_query(db.schema(), "Ans() :- R(1, 1)").unwrap());
        let q2 = QueryEvaluator::new(parse_query(db.schema(), "Ans() :- R(x, x)").unwrap());
        let queries = [BatchQuery::new(&q1, &[]), BatchQuery::new(&q2, &[])];
        let params = ApproximationParams::new(0.1, 0.1)
            .unwrap()
            .with_mode(EstimatorMode::FixedSamples(500));
        for spec in all_specs() {
            let batch = BatchEstimator::new(&db, &sigma, spec).unwrap();
            let estimates = batch
                .estimate_batch(&queries, params, &mut StdRng::seed_from_u64(3))
                .unwrap();
            for (i, estimate) in estimates.iter().enumerate() {
                assert_eq!(estimate.value, 1.0, "spec {}, query {i}", spec.short_name());
                assert_eq!(estimate.successes, 500);
            }
        }
    }

    #[test]
    fn batched_estimation_rejects_sequential_modes_and_bad_arity() {
        let (db, sigma) = figure2();
        let batch = BatchEstimator::new(&db, &sigma, GeneratorSpec::uniform_repairs()).unwrap();
        let q = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let b1 = [Value::str("b1")];
        let queries = [BatchQuery::new(&evaluator, &b1)];
        let mut rng = StdRng::seed_from_u64(0);
        // The per-query lower-bound mode cannot share one loop; the
        // adaptive stopping mode can (it routes through the batched
        // stopping rule) but requires `estimate_stopping_batch` modes to
        // match.
        let params = ApproximationParams::new(0.2, 0.2)
            .unwrap()
            .with_mode(EstimatorMode::FixedFromLowerBound);
        assert!(matches!(
            batch.estimate_batch(&queries, params, &mut rng),
            Err(CoreError::InvalidParameters { .. })
        ));
        let fixed = ApproximationParams::new(0.2, 0.2)
            .unwrap()
            .with_mode(EstimatorMode::FixedSamples(10));
        assert!(matches!(
            batch.estimate_stopping_batch(&queries, fixed, &mut rng),
            Err(CoreError::InvalidParameters { .. })
        ));
        // A wrong candidate arity anywhere in the bank aborts before
        // sampling.
        let bad = [BatchQuery::new(&evaluator, &[])];
        let params = ApproximationParams::new(0.2, 0.2)
            .unwrap()
            .with_mode(EstimatorMode::FixedSamples(10));
        assert!(matches!(
            batch.estimate_batch(&bad, params, &mut rng),
            Err(CoreError::Query(_))
        ));
        // An empty bank is a no-op, not an error.
        let empty = batch.estimate_batch(&[], params, &mut rng).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn unlimited_budget_estimates_are_bit_identical_across_all_specs() {
        // The acceptance criterion of the budget subsystem: with an
        // unconstrained `RunBudget`, every estimator entry point draws the
        // same sample stream and reports the same counts as the pre-budget
        // path, for every generator spec.
        let (db, sigma) = figure2();
        let q = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let candidate = [Value::str("b1")];
        let params = ApproximationParams::new(0.25, 0.2).unwrap().with_mode(
            EstimatorMode::OptimalStopping {
                max_samples: 200_000,
            },
        );
        let budget = RunBudget::unlimited();
        for spec in all_specs() {
            let estimator = OcqaEstimator::new(&db, &sigma, spec).unwrap();
            let plain = estimator
                .estimate(
                    &evaluator,
                    &candidate,
                    params,
                    &mut StdRng::seed_from_u64(11),
                )
                .unwrap();
            let budgeted = estimator
                .estimate_with_budget(
                    &evaluator,
                    &candidate,
                    params,
                    &budget,
                    &mut StdRng::seed_from_u64(11),
                )
                .unwrap();
            assert_eq!(budgeted.queries.len(), 1, "spec {}", spec.short_name());
            let outcome = &budgeted.queries[0];
            assert_eq!(outcome.estimate, plain.value, "spec {}", spec.short_name());
            assert_eq!(outcome.samples, plain.samples);
            assert_eq!(outcome.successes, plain.successes);
            assert_eq!(outcome.status, BudgetStatus::Converged);
            assert!(outcome.achieved.relative_epsilon.is_some());
        }
    }

    #[test]
    fn unlimited_budget_batch_paths_are_bit_identical_across_all_specs() {
        let (db, sigma) = figure2();
        let lookup = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let lookup = QueryEvaluator::new(lookup);
        let member = parse_query(db.schema(), "Ans() :- R('a3', 'b1')").unwrap();
        let member = QueryEvaluator::new(member);
        let b1 = [Value::str("b1")];
        let queries = [BatchQuery::new(&lookup, &b1), BatchQuery::new(&member, &[])];
        let budget = RunBudget::unlimited();
        let stopping = ApproximationParams::new(0.25, 0.2).unwrap().with_mode(
            EstimatorMode::OptimalStopping {
                max_samples: 200_000,
            },
        );
        let fixed = ApproximationParams::new(0.1, 0.1)
            .unwrap()
            .with_mode(EstimatorMode::FixedSamples(2_000));
        for spec in all_specs() {
            let batch = BatchEstimator::new(&db, &sigma, spec).unwrap();
            for params in [stopping, fixed] {
                let plain = batch
                    .estimate_batch(&queries, params, &mut StdRng::seed_from_u64(29))
                    .unwrap();
                let budgeted = batch
                    .estimate_batch_with_budget(
                        &queries,
                        params,
                        &budget,
                        &mut StdRng::seed_from_u64(29),
                    )
                    .unwrap();
                assert_eq!(budgeted.queries.len(), plain.len());
                for (i, (b, p)) in budgeted.queries.iter().zip(&plain).enumerate() {
                    assert_eq!(
                        (b.estimate, b.samples, b.successes),
                        (p.value, p.samples, p.successes),
                        "spec {}, query {i}, mode {:?}",
                        spec.short_name(),
                        params.mode,
                    );
                    assert_eq!(b.status, BudgetStatus::Converged);
                }
            }
        }
    }

    #[test]
    fn cancelled_batch_resumes_bit_for_bit() {
        // Cancel the shared stream mid-flight, then resume with the same
        // RNG: the concatenated run must equal one uninterrupted run, for
        // several truncation points.
        let (db, sigma) = figure2();
        let lookup = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let lookup = QueryEvaluator::new(lookup);
        let member = parse_query(db.schema(), "Ans() :- R('a3', 'b1')").unwrap();
        let member = QueryEvaluator::new(member);
        let b1 = [Value::str("b1")];
        let queries = [BatchQuery::new(&lookup, &b1), BatchQuery::new(&member, &[])];
        let params = ApproximationParams::new(0.25, 0.2).unwrap().with_mode(
            EstimatorMode::OptimalStopping {
                max_samples: 200_000,
            },
        );
        let batch = BatchEstimator::new(&db, &sigma, GeneratorSpec::uniform_operations()).unwrap();
        let uninterrupted = batch
            .estimate_stopping_batch(&queries, params, &mut StdRng::seed_from_u64(41))
            .unwrap();
        for cut in [1u64, 17, 80, 500] {
            let mut rng = StdRng::seed_from_u64(41);
            let token = CancelToken::tripped_at_draw(cut);
            let budget = RunBudget::unlimited().with_cancel_token(token);
            let partial = batch
                .estimate_stopping_batch_with_budget(&queries, params, &budget, &mut rng)
                .unwrap();
            assert_eq!(partial.total_draws, cut, "cut {cut}");
            assert!(partial
                .queries
                .iter()
                .any(|q| q.status == BudgetStatus::Cancelled));
            let resumed = batch
                .estimate_stopping_batch_resume(
                    &queries,
                    params,
                    &RunBudget::unlimited(),
                    &partial,
                    &mut rng,
                )
                .unwrap();
            for (i, (r, u)) in resumed.queries.iter().zip(&uninterrupted).enumerate() {
                assert_eq!(
                    (r.estimate, r.samples, r.successes),
                    (u.value, u.samples, u.successes),
                    "cut {cut}, query {i}"
                );
                assert_eq!(r.status, BudgetStatus::Converged);
            }
        }
    }

    #[test]
    fn enrollment_resume_with_a_precompiled_bank_matches_the_recompiling_resume() {
        // The enrollment path (BankLiveSet::empty + enroll of the prior's
        // non-converged entries, over a caller-held bank) must be
        // indistinguishable from the recompiling resume: same outcomes,
        // same statuses, same total draws, for several truncation points.
        let (db, sigma) = figure2();
        let lookup = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let lookup = QueryEvaluator::new(lookup);
        let member = parse_query(db.schema(), "Ans() :- R('a3', 'b1')").unwrap();
        let member = QueryEvaluator::new(member);
        let b1 = [Value::str("b1")];
        let queries = [BatchQuery::new(&lookup, &b1), BatchQuery::new(&member, &[])];
        let params = ApproximationParams::new(0.25, 0.2).unwrap().with_mode(
            EstimatorMode::OptimalStopping {
                max_samples: 200_000,
            },
        );
        let batch = BatchEstimator::new(&db, &sigma, GeneratorSpec::uniform_operations()).unwrap();
        let bank = batch.compile_bank(&queries).unwrap();
        for cut in [1u64, 17, 80, 500] {
            let mut rng = StdRng::seed_from_u64(41);
            let budget =
                RunBudget::unlimited().with_cancel_token(CancelToken::tripped_at_draw(cut));
            let partial = batch
                .estimate_stopping_batch_with_budget(&queries, params, &budget, &mut rng)
                .unwrap();
            let mut enrolled_rng = rng.clone();
            let recompiled = batch
                .estimate_stopping_batch_resume(
                    &queries,
                    params,
                    &RunBudget::unlimited(),
                    &partial,
                    &mut rng,
                )
                .unwrap();
            let enrolled = batch
                .estimate_stopping_batch_resume_with_bank(
                    &bank,
                    &queries,
                    params,
                    &RunBudget::unlimited(),
                    &partial,
                    &mut enrolled_rng,
                )
                .unwrap();
            assert_eq!(enrolled, recompiled, "cut {cut}");
        }
    }

    #[test]
    fn compile_budget_fallback_keeps_estimates_bit_identical() {
        // A compile-step cap of 1 degrades the whole bank to evaluator
        // fallback; the sampled repair stream consumes the RNG identically
        // and the fallback evaluator decides the same entailments, so the
        // estimates are bit-identical — only the per-draw cost changes.
        let (db, sigma) = figure2();
        let lookup = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let lookup = QueryEvaluator::new(lookup);
        let b1 = [Value::str("b1")];
        let queries = [BatchQuery::new(&lookup, &b1)];
        let params = ApproximationParams::new(0.25, 0.2).unwrap().with_mode(
            EstimatorMode::OptimalStopping {
                max_samples: 200_000,
            },
        );
        let batch = BatchEstimator::new(&db, &sigma, GeneratorSpec::uniform_repairs()).unwrap();
        let starved = RunBudget::unlimited().with_max_compile_steps(1);
        let bank = batch.compile_bank_with_budget(&queries, &starved).unwrap();
        assert!(bank.is_fallback(0), "the starved bank degrades to fallback");
        let plain = batch
            .estimate_stopping_batch(&queries, params, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let degraded = batch
            .estimate_stopping_batch_with_budget(
                &queries,
                params,
                &starved,
                &mut StdRng::seed_from_u64(5),
            )
            .unwrap();
        assert_eq!(
            (
                degraded.queries[0].estimate,
                degraded.queries[0].samples,
                degraded.queries[0].successes,
            ),
            (plain[0].value, plain[0].samples, plain[0].successes),
        );
        assert_eq!(degraded.queries[0].status, BudgetStatus::Converged);
    }

    #[test]
    fn truncated_estimates_satisfy_their_achieved_bound_against_the_exact_solver() {
        // Cut the stream at several points; the reported achieved bound at
        // the observed counts must cover the true probability (fixed seeds;
        // the bound holds with probability ≥ 1 − δ per truncation point).
        let (db, sigma) = figure2();
        let q = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let candidate = [Value::str("b1")];
        let spec = GeneratorSpec::uniform_operations();
        let exact = ExactSolver::new(&db, &sigma)
            .answer_probability(spec, &evaluator, &candidate)
            .unwrap()
            .to_f64();
        let params = ApproximationParams::new(0.05, 0.05).unwrap().with_mode(
            EstimatorMode::OptimalStopping {
                max_samples: 10_000_000,
            },
        );
        let estimator = OcqaEstimator::new(&db, &sigma, spec).unwrap();
        for cut in [50u64, 500, 5_000] {
            let budget = RunBudget::unlimited().with_max_draws(cut);
            let outcome = estimator
                .estimate_with_budget(
                    &evaluator,
                    &candidate,
                    params,
                    &budget,
                    &mut StdRng::seed_from_u64(13),
                )
                .unwrap();
            let query = &outcome.queries[0];
            assert_eq!(query.samples, cut);
            assert_eq!(query.status, BudgetStatus::BudgetExhausted);
            let additive = query.achieved.additive_epsilon;
            assert!(
                (query.estimate - exact).abs() <= additive,
                "cut {cut}: estimate {} vs exact {exact}, additive ε′ {additive}",
                query.estimate
            );
            if let Some(relative) = query.achieved.relative_epsilon {
                assert!(
                    (query.estimate - exact).abs() <= relative * exact,
                    "cut {cut}: estimate {} vs exact {exact}, relative ε′ {relative}",
                    query.estimate
                );
            }
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn budgeted_rounds_with_unlimited_budget_match_plain_rounds_at_fpras_level() {
        let (db, sigma) = figure2();
        let lookup = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let lookup = QueryEvaluator::new(lookup);
        let member = parse_query(db.schema(), "Ans() :- R('a3', 'b1')").unwrap();
        let member = QueryEvaluator::new(member);
        let b1 = [Value::str("b1")];
        let queries = [BatchQuery::new(&lookup, &b1), BatchQuery::new(&member, &[])];
        let params =
            ApproximationParams::new(0.2, 0.1)
                .unwrap()
                .with_mode(EstimatorMode::OptimalStopping {
                    max_samples: 1_000_000,
                });
        let batch = BatchEstimator::new(&db, &sigma, GeneratorSpec::uniform_operations()).unwrap();
        let plain = batch
            .estimate_stopping_batch_rounds(&queries, params, 23, DEFAULT_ROUND_SAMPLES)
            .unwrap();
        let budgeted = batch
            .estimate_stopping_batch_rounds_with_budget(
                &queries,
                params,
                23,
                DEFAULT_ROUND_SAMPLES,
                &RunBudget::unlimited(),
            )
            .unwrap();
        for (i, (b, p)) in budgeted.queries.iter().zip(&plain).enumerate() {
            assert_eq!(
                (b.estimate, b.samples, b.successes),
                (p.value, p.samples, p.successes),
                "query {i}"
            );
            assert_eq!(b.status, BudgetStatus::Converged);
        }
        // A draw cap interrupts at a round boundary: a query that cannot
        // converge is cut after the first round instead of running to the
        // `max_samples` cut-off (queries that converged within the round
        // keep their values — the cap is round-granular).
        let never = parse_query(db.schema(), "Ans() :- R('zz', 'zz')").unwrap();
        let never = QueryEvaluator::new(never);
        let queries = [BatchQuery::new(&lookup, &b1), BatchQuery::new(&never, &[])];
        let capped = batch
            .estimate_stopping_batch_rounds_with_budget(
                &queries,
                params,
                23,
                DEFAULT_ROUND_SAMPLES,
                &RunBudget::unlimited().with_max_draws(1),
            )
            .unwrap();
        assert_eq!(capped.queries[1].status, BudgetStatus::BudgetExhausted);
        assert!(
            capped.total_draws < 1_000_000,
            "the cap stops the stream long before the cut-off (drew {})",
            capped.total_draws
        );
    }

    #[test]
    fn lower_bounds_are_reported_per_generator() {
        let (db, sigma) = figure2();
        let q = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let rr = OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_repairs()).unwrap();
        assert!((rr.theoretical_lower_bound(&evaluator).to_f64() - 1.0 / 12.0).abs() < 1e-9);
        let uo1 = OcqaEstimator::new(
            &db,
            &sigma,
            GeneratorSpec::uniform_operations().with_singleton_only(),
        )
        .unwrap();
        let bound = uo1.theoretical_lower_bound(&evaluator).to_f64();
        assert!(bound > 0.0 && bound < 1.0);
    }

    #[test]
    fn a_refreshed_conflict_index_reproduces_the_internally_built_estimates() {
        let (mut db, sigma) = two_key_database();
        // Build the index before the mutations, then bring it up to date
        // with `refresh` — the estimator must behave exactly as if it had
        // built a fresh index itself.
        let mut index = ConflictIndex::build(&db, &sigma);
        db.insert_values("R", [Value::int(3), Value::int(1)])
            .unwrap();
        let gone = ucqa_db::Fact::new(
            db.schema().relation_id("R").unwrap(),
            vec![Value::int(2), Value::int(2)],
        );
        db.retract(&gone).unwrap();
        index.refresh(&db, &sigma);

        let q = parse_query(db.schema(), "Ans(x) :- R(1, x)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let candidate = [Value::int(1)];
        let params = ApproximationParams::new(0.1, 0.1)
            .unwrap()
            .with_mode(EstimatorMode::FixedSamples(512));
        for spec in [
            GeneratorSpec::uniform_operations(),
            GeneratorSpec::uniform_operations().with_singleton_only(),
        ] {
            let fresh = OcqaEstimator::new(&db, &sigma, spec)
                .unwrap()
                .estimate(
                    &evaluator,
                    &candidate,
                    params,
                    &mut StdRng::seed_from_u64(99),
                )
                .unwrap();
            let reused = OcqaEstimator::with_conflict_index(&db, &sigma, spec, index.clone())
                .unwrap()
                .estimate(
                    &evaluator,
                    &candidate,
                    params,
                    &mut StdRng::seed_from_u64(99),
                )
                .unwrap();
            assert_eq!(
                fresh,
                reused,
                "spec {}: a refreshed index must be bit-identical to a fresh build",
                spec.short_name()
            );
        }
    }

    #[test]
    fn a_conflict_index_is_rejected_for_non_operations_generators() {
        let (db, sigma) = two_key_database();
        let index = ConflictIndex::build(&db, &sigma);
        for spec in [
            GeneratorSpec::uniform_repairs(),
            GeneratorSpec::uniform_sequences().with_singleton_only(),
        ] {
            let err = OcqaEstimator::with_conflict_index(&db, &sigma, spec, index.clone());
            assert!(
                matches!(err, Err(CoreError::Unsupported { .. })),
                "spec {} must be rejected",
                spec.short_name()
            );
        }
    }
}
