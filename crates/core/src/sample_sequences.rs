//! Uniform sampling of complete repairing sequences for primary keys
//! (Lemma 6.2 / Algorithm 1, and the singleton variant of Lemma E.9).
//!
//! The sampler realises the same distribution as the paper's Algorithm 1
//! (which extends a sequence one justified operation at a time with
//! probability `|CRS(op(D'))| / |CRS(D')|`), but factors the work
//! differently so that the expensive counting is done **once** per database
//! instead of once per step:
//!
//! 1. A complete sequence decomposes uniquely into one complete *block
//!    sequence* per conflicting block plus an interleaving of those block
//!    sequences.
//! 2. The dynamic program of Lemma C.1 is materialised layer by layer; a
//!    backward pass through its tables samples the per-block configuration
//!    (number of pair removals, empty vs. non-empty outcome) with
//!    probability proportional to the number of complete sequences
//!    compatible with it.
//! 3. Given its configuration, each block's sequence is drawn uniformly by
//!    elementary choices (survivor, paired facts, operation order), and the
//!    block sequences are interleaved uniformly at random.
//!
//! The composition of these three uniform choices is exactly the uniform
//! distribution over `CRS(D, Σ)`; see the module tests, which compare the
//! induced repair distribution against the exact `M^us` semantics.

use rand::seq::SliceRandom;
use rand::Rng;

use ucqa_db::{BlockPartition, Database, DbError, FactId, FactSet, FdSet};
use ucqa_numeric::combinatorics::binomial;
use ucqa_numeric::Natural;
use ucqa_repair::{Operation, RepairingSequence};

use crate::counting::{sequences_empty_block, sequences_nonempty_block};
use crate::random::pick_weighted;

/// Outcome chosen for one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockConfig {
    /// Number of pair removals used inside the block.
    pairs: u64,
    /// Whether the block ends up empty.
    empty: bool,
}

/// A uniform sampler over the complete repairing sequences `CRS(D, Σ)`
/// (and `CRS¹(D, Σ)`) of a database w.r.t. a set of primary keys.
///
/// Two sampling backends coexist:
///
/// * [`SequenceSampler::sample_sequence`] walks the exact `Natural` DP
///   tables with big-integer weighted picks — exact, but it allocates.
/// * [`SequenceSampler::sample_result_into`] (the Monte-Carlo hot path)
///   uses log-space `f64` mirrors of the same tables, precomputed once at
///   construction, so each sample costs only table lookups and draws —
///   no big-integer arithmetic and **no heap allocation**.  The `f64`
///   weights agree with the exact ones to ~15 significant digits, far
///   below the statistical resolution of any Monte-Carlo estimate.
///
/// When only results are needed (the FPRAS path never asks for a
/// sequence), [`SequenceSampler::new_log_space`] skips the exact `Natural`
/// cells entirely and evaluates the Lemma C.1 recurrence directly in
/// log-space `f64` — the big-integer arithmetic of the exact tables is
/// what makes construction super-quadratic in the number of blocks, so
/// this is the mode that scales to thousands of blocks.
#[derive(Debug)]
pub struct SequenceSampler {
    universe: usize,
    /// Facts of blocks with at least two facts, per block.
    conflict_blocks: Vec<Vec<FactId>>,
    /// Facts that can never be removed (singleton blocks / keyless
    /// relations).
    untouchable: Vec<FactId>,
    /// Layered DP tables of Lemma C.1: `layers[j][k][i]` is `P^{k,i}_{j+1}`.
    /// `None` in log-space-only mode ([`SequenceSampler::new_log_space`]).
    layers: Option<Vec<Vec<Vec<Natural>>>>,
    /// Prefix sums of block sizes (`prefix[j]` = facts in the first `j`
    /// conflict blocks).
    prefix_facts: Vec<u64>,
    max_pairs: u64,
    /// `ln(layers[j][k][i])` (`-inf` for zero cells).
    ln_layers: Vec<Vec<Vec<f64>>>,
    /// `ln(n!)` for `n` up to the total number of conflict facts.
    ln_fact: Vec<f64>,
    /// Per block `j`: `ln(sequences_empty_block(m_j, i2))` for each `i2`.
    ln_seq_empty: Vec<Vec<f64>>,
    /// Per block `j`: `ln(sequences_nonempty_block(m_j, i2))`.
    ln_seq_nonempty: Vec<Vec<f64>>,
    /// Cumulative distribution over the final DP cells `(k, i)`.
    final_cells: Vec<(usize, u64, f64)>,
}

impl SequenceSampler {
    /// Creates a sampler for `db` w.r.t. the set `sigma` of primary keys.
    pub fn new(db: &Database, sigma: &FdSet) -> Result<Self, DbError> {
        let partition = BlockPartition::compute(db, sigma)?;
        Ok(Self::from_partition(db, &partition))
    }

    /// As [`SequenceSampler::new`], but building only the log-space `f64`
    /// tables — the exact `Natural` DP cells are skipped, so
    /// [`SequenceSampler::sample_sequence`] and
    /// [`SequenceSampler::sequence_count`] are unavailable (they panic).
    ///
    /// This is the construction the FPRAS path uses: the Monte-Carlo loop
    /// only ever draws *results*, and skipping the big-integer cells turns
    /// the super-quadratic construction cost into plain `f64` arithmetic
    /// over the same table shape.
    pub fn new_log_space(db: &Database, sigma: &FdSet) -> Result<Self, DbError> {
        let partition = BlockPartition::compute(db, sigma)?;
        Ok(Self::from_partition_log_space(db, &partition))
    }

    /// Creates a sampler from a precomputed block partition (exact +
    /// log-space tables).
    pub fn from_partition(db: &Database, partition: &BlockPartition) -> Self {
        Self::from_partition_with_mode(db, partition, true)
    }

    /// As [`SequenceSampler::from_partition`], in log-space-only mode.
    pub fn from_partition_log_space(db: &Database, partition: &BlockPartition) -> Self {
        Self::from_partition_with_mode(db, partition, false)
    }

    fn from_partition_with_mode(db: &Database, partition: &BlockPartition, exact: bool) -> Self {
        let mut conflict_blocks = Vec::new();
        let mut untouchable = Vec::new();
        for block in partition.blocks() {
            if block.len() >= 2 {
                conflict_blocks.push(block.facts().to_vec());
            } else {
                untouchable.extend_from_slice(block.facts());
            }
        }
        let sizes: Vec<u64> = conflict_blocks.iter().map(|b| b.len() as u64).collect();
        let max_pairs: u64 = sizes.iter().map(|m| m / 2).sum();
        let mut prefix_facts = vec![0u64; sizes.len() + 1];
        for (j, &m) in sizes.iter().enumerate() {
            prefix_facts[j + 1] = prefix_facts[j] + m;
        }

        let total_facts = *prefix_facts.last().expect("prefix sums are non-empty");
        let mut ln_fact = Vec::with_capacity(total_facts as usize + 1);
        ln_fact.push(0.0f64);
        for n in 1..=total_facts {
            ln_fact.push(ln_fact[n as usize - 1] + (n as f64).ln());
        }
        // The per-block sequence counts stay exact (O(m) big-integer cells
        // per block — cheap); only their logs enter the tables.
        let ln_seq_empty: Vec<Vec<f64>> = sizes
            .iter()
            .map(|&m| {
                (0..=m / 2)
                    .map(|i2| sequences_empty_block(m, i2).ln())
                    .collect()
            })
            .collect();
        let ln_seq_nonempty: Vec<Vec<f64>> = sizes
            .iter()
            .map(|&m| {
                (0..=m / 2)
                    .map(|i2| sequences_nonempty_block(m, i2).ln())
                    .collect()
            })
            .collect();

        let (layers, ln_layers) = if exact {
            let layers = build_layers(&sizes, max_pairs, &prefix_facts);
            let ln_layers: Vec<Vec<Vec<f64>>> = layers
                .iter()
                .map(|table| {
                    table
                        .iter()
                        .map(|row| row.iter().map(Natural::ln).collect())
                        .collect()
                })
                .collect();
            (Some(layers), ln_layers)
        } else {
            let ln_layers = build_layers_ln(
                &sizes,
                max_pairs,
                &prefix_facts,
                &ln_seq_empty,
                &ln_seq_nonempty,
                &ln_fact,
            );
            (None, ln_layers)
        };

        let final_cells = match ln_layers.last() {
            None => Vec::new(),
            Some(layer) => {
                let mut cells: Vec<(usize, u64, f64)> = Vec::new();
                let mut max_ln = f64::NEG_INFINITY;
                for (k, row) in layer.iter().enumerate() {
                    for (i, &ln) in row.iter().enumerate() {
                        if ln > f64::NEG_INFINITY {
                            max_ln = max_ln.max(ln);
                            cells.push((k, i as u64, ln));
                        }
                    }
                }
                let total: f64 = cells.iter().map(|&(_, _, ln)| (ln - max_ln).exp()).sum();
                let mut cumulative = 0.0f64;
                for cell in &mut cells {
                    cumulative += (cell.2 - max_ln).exp() / total;
                    cell.2 = cumulative;
                }
                if let Some(last) = cells.last_mut() {
                    last.2 = 1.0;
                }
                cells
            }
        };

        SequenceSampler {
            universe: db.len(),
            conflict_blocks,
            untouchable,
            layers,
            prefix_facts,
            max_pairs,
            ln_layers,
            ln_fact,
            ln_seq_empty,
            ln_seq_nonempty,
            final_cells,
        }
    }

    /// Returns `true` iff the exact `Natural` DP tables were built (i.e.
    /// the sampler was not constructed with
    /// [`SequenceSampler::new_log_space`]).
    pub fn has_exact_tables(&self) -> bool {
        self.layers.is_some()
    }

    /// `|CRS(D, Σ)|`, read off the final DP layer.
    ///
    /// # Panics
    /// Panics in log-space-only mode (the exact cells were skipped).
    pub fn sequence_count(&self) -> Natural {
        let layers = self
            .layers
            .as_ref()
            .expect("sequence_count requires the exact DP tables (not log-space-only mode)");
        match layers.last() {
            None => Natural::one(),
            Some(layer) => layer.iter().flatten().sum(),
        }
    }

    /// Draws the *result* `s(D)` of a uniformly random complete sequence
    /// `s ∈ CRS(D, Σ)`.
    ///
    /// This is all the Monte-Carlo estimator for `SRFreq` needs; use
    /// [`SequenceSampler::sample_sequence`] when the sequence itself is
    /// required.
    pub fn sample_result<R: Rng + ?Sized>(&self, rng: &mut R) -> FactSet {
        let mut result = FactSet::empty(self.universe);
        self.sample_result_into(rng, &mut result);
        result
    }

    /// As [`SequenceSampler::sample_result`], writing into a reused buffer.
    ///
    /// Samples the per-block empty/non-empty outcome by a backward walk
    /// over the precomputed log-space DP tables: per block the candidate
    /// split weights are evaluated twice (once to normalise, once to walk
    /// the cumulative sum), which keeps the walk free of heap allocation.
    ///
    /// # Panics
    /// Panics if `out`'s universe differs from the sampler's database.
    pub fn sample_result_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut FactSet) {
        assert_eq!(out.universe(), self.universe, "buffer universe mismatch");
        out.clear();
        for &fact in &self.untouchable {
            out.insert(fact);
        }
        let n = self.conflict_blocks.len();
        if n == 0 {
            return;
        }
        // Sample the final (k, i) cell from its precomputed cumulative
        // distribution.
        let draw = rng.random::<f64>();
        let index = self
            .final_cells
            .partition_point(|&(_, _, cumulative)| cumulative <= draw)
            .min(self.final_cells.len() - 1);
        let (mut k, mut i, _) = self.final_cells[index];

        // Walk the blocks backwards, splitting (k, i) into the last block's
        // configuration and the prefix state (the f64 shadow of
        // `sample_configs`).
        for j in (1..n).rev() {
            let (i2, empty) = self.sample_backward_split(rng, j, k, i);
            if !empty {
                let block = &self.conflict_blocks[j];
                out.insert(block[rng.random_range(0..block.len())]);
                k -= 1;
            }
            i -= i2;
        }
        debug_assert!(k <= 1, "first block can keep at most one fact non-empty");
        if k == 1 {
            let block = &self.conflict_blocks[0];
            out.insert(block[rng.random_range(0..block.len())]);
        }
    }

    /// Draws the split `(i2, empty)` of state `(k, i)` at block `j ≥ 1`,
    /// with probability proportional to the same weights as the exact
    /// backward pass, evaluated in log-space `f64`.
    fn sample_backward_split<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        j: usize,
        k: usize,
        i: u64,
    ) -> (u64, bool) {
        // Pass 1: the maximum log-weight, for stable normalisation.
        let mut max_ln = f64::NEG_INFINITY;
        self.for_each_split(j, k, i, |_, _, ln| {
            max_ln = max_ln.max(ln);
        });
        debug_assert!(
            max_ln > f64::NEG_INFINITY,
            "reachable states always have a split"
        );
        let mut total = 0.0f64;
        self.for_each_split(j, k, i, |_, _, ln| {
            total += (ln - max_ln).exp();
        });

        // Pass 2: walk the cumulative sum to the drawn point.
        let target = rng.random::<f64>() * total;
        let mut cumulative = 0.0f64;
        let mut chosen: Option<(u64, bool)> = None;
        let mut last: Option<(u64, bool)> = None;
        self.for_each_split(j, k, i, |i2, empty, ln| {
            last = Some((i2, empty));
            if chosen.is_none() {
                cumulative += (ln - max_ln).exp();
                if target < cumulative {
                    chosen = Some((i2, empty));
                }
            }
        });
        chosen.or(last).expect("at least one split option exists")
    }

    /// Enumerates the feasible splits of state `(k, i)` at block `j`,
    /// invoking `visit(i2, empty, ln_weight)` for each — the same
    /// feasibility conditions and weight formulas as the exact
    /// `sample_configs` backward pass.
    fn for_each_split(&self, j: usize, k: usize, i: u64, mut visit: impl FnMut(u64, bool, f64)) {
        let block_size = self.conflict_blocks[j].len() as u64;
        let total_ops = self.prefix_facts[j + 1] - i - k as u64;
        let previous = &self.ln_layers[j - 1];
        for i2 in 0..=i.min(block_size / 2) {
            let i1 = i - i2;
            if i1 > self.max_pairs {
                continue;
            }
            let ln_s_e = self.ln_seq_empty[j][i2 as usize];
            if ln_s_e > f64::NEG_INFINITY && k < previous.len() {
                let prev = previous[k][i1 as usize];
                if prev > f64::NEG_INFINITY {
                    let ln_choose = self.ln_binomial(total_ops, block_size - i2);
                    visit(i2, true, prev + ln_s_e + ln_choose);
                }
            }
            if k >= 1 {
                let ln_s_ne = self.ln_seq_nonempty[j][i2 as usize];
                if ln_s_ne > f64::NEG_INFINITY {
                    let prev = previous[k - 1][i1 as usize];
                    if prev > f64::NEG_INFINITY {
                        let ln_choose = self.ln_binomial(total_ops, block_size - i2 - 1);
                        visit(i2, false, prev + ln_s_ne + ln_choose);
                    }
                }
            }
        }
    }

    /// `ln C(n, k)` from the precomputed factorial table.
    fn ln_binomial(&self, n: u64, k: u64) -> f64 {
        if k > n {
            return f64::NEG_INFINITY;
        }
        self.ln_fact[n as usize] - self.ln_fact[k as usize] - self.ln_fact[(n - k) as usize]
    }

    /// Draws a uniformly random complete repairing sequence from
    /// `CRS(D, Σ)`.
    ///
    /// # Panics
    /// Panics in log-space-only mode (the exact cells were skipped); use
    /// [`SequenceSampler::sample_result_into`] there, or construct with
    /// [`SequenceSampler::new`].
    pub fn sample_sequence<R: Rng + ?Sized>(&self, rng: &mut R) -> RepairingSequence {
        let configs = self.sample_configs(rng);
        // Per-block operation lists, each in a valid (already randomised)
        // internal order.
        let block_sequences: Vec<Vec<Operation>> = self
            .conflict_blocks
            .iter()
            .zip(&configs)
            .map(|(facts, config)| sample_block_sequence(rng, facts, *config))
            .collect();
        // Interleave uniformly: shuffle a multiset of block labels and
        // consume each block's operations in order.
        let mut labels: Vec<usize> = Vec::new();
        for (index, ops) in block_sequences.iter().enumerate() {
            labels.extend(std::iter::repeat_n(index, ops.len()));
        }
        labels.shuffle(rng);
        let mut cursors = vec![0usize; block_sequences.len()];
        let mut operations = Vec::with_capacity(labels.len());
        for label in labels {
            operations.push(block_sequences[label][cursors[label]].clone());
            cursors[label] += 1;
        }
        RepairingSequence::from_operations(operations)
    }

    /// Draws the result of a uniformly random *singleton-only* complete
    /// sequence `s ∈ CRS¹(D, Σ)`.
    ///
    /// Under singleton operations the survivor of each block is uniform and
    /// independent of the other blocks (the interleaving count does not
    /// depend on which facts survive), so no DP is required.
    pub fn sample_result_singleton<R: Rng + ?Sized>(&self, rng: &mut R) -> FactSet {
        let mut result = FactSet::empty(self.universe);
        self.sample_result_singleton_into(rng, &mut result);
        result
    }

    /// As [`SequenceSampler::sample_result_singleton`], writing into a
    /// reused buffer (no heap allocation per sample).
    ///
    /// # Panics
    /// Panics if `out`'s universe differs from the sampler's database.
    pub fn sample_result_singleton_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut FactSet) {
        assert_eq!(out.universe(), self.universe, "buffer universe mismatch");
        out.clear();
        for &fact in &self.untouchable {
            out.insert(fact);
        }
        for block in &self.conflict_blocks {
            let survivor = block[rng.random_range(0..block.len())];
            out.insert(survivor);
        }
    }

    /// Draws a uniformly random singleton-only complete repairing sequence
    /// from `CRS¹(D, Σ)`.
    pub fn sample_sequence_singleton<R: Rng + ?Sized>(&self, rng: &mut R) -> RepairingSequence {
        let mut block_sequences: Vec<Vec<Operation>> = Vec::new();
        for block in &self.conflict_blocks {
            let survivor_index = rng.random_range(0..block.len());
            let mut removals: Vec<Operation> = block
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != survivor_index)
                .map(|(_, &fact)| Operation::remove_one(fact))
                .collect();
            removals.shuffle(rng);
            block_sequences.push(removals);
        }
        let mut labels: Vec<usize> = Vec::new();
        for (index, ops) in block_sequences.iter().enumerate() {
            labels.extend(std::iter::repeat_n(index, ops.len()));
        }
        labels.shuffle(rng);
        let mut cursors = vec![0usize; block_sequences.len()];
        let mut operations = Vec::with_capacity(labels.len());
        for label in labels {
            operations.push(block_sequences[label][cursors[label]].clone());
            cursors[label] += 1;
        }
        RepairingSequence::from_operations(operations)
    }

    /// Samples the per-block configurations via a backward pass over the
    /// Lemma C.1 tables, with probability proportional to the number of
    /// complete sequences compatible with each configuration.
    fn sample_configs<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<BlockConfig> {
        let n = self.conflict_blocks.len();
        let mut configs = vec![
            BlockConfig {
                pairs: 0,
                empty: false
            };
            n
        ];
        if n == 0 {
            return configs;
        }
        let layers = self
            .layers
            .as_ref()
            .expect("sample_sequence requires the exact DP tables (not log-space-only mode)");
        // Sample the final (k, i) cell proportionally to P^{k,i}_n.
        let final_layer = &layers[n - 1];
        let mut cells = Vec::new();
        let mut weights = Vec::new();
        for (k, row) in final_layer.iter().enumerate() {
            for (i, weight) in row.iter().enumerate() {
                if !weight.is_zero() {
                    cells.push((k, i as u64));
                    weights.push(weight.clone());
                }
            }
        }
        let (mut k, mut i) = cells[pick_weighted(rng, &weights)];

        // Walk the blocks backwards, splitting (k, i) into the last block's
        // configuration and the prefix state.
        for j in (1..n).rev() {
            let block_size = self.conflict_blocks[j].len() as u64;
            let total_ops = self.prefix_facts[j + 1] - i - k as u64;
            let previous = &layers[j - 1];
            let mut options = Vec::new();
            let mut option_weights = Vec::new();
            for i2 in 0..=i.min(block_size / 2) {
                let i1 = i - i2;
                if i1 > self.max_pairs {
                    continue;
                }
                // Block j ends empty; the prefix keeps k non-empty blocks.
                let s_e = sequences_empty_block(block_size, i2);
                if !s_e.is_zero() && k < previous.len() {
                    let prev = &previous[k][i1 as usize];
                    if !prev.is_zero() {
                        let weight = &(prev * &s_e) * &binomial(total_ops, block_size - i2);
                        options.push((i2, true));
                        option_weights.push(weight);
                    }
                }
                // Block j ends non-empty; the prefix keeps k−1.
                if k >= 1 {
                    let s_ne = sequences_nonempty_block(block_size, i2);
                    if !s_ne.is_zero() {
                        let prev = &previous[k - 1][i1 as usize];
                        if !prev.is_zero() {
                            let weight =
                                &(prev * &s_ne) * &binomial(total_ops, block_size - i2 - 1);
                            options.push((i2, false));
                            option_weights.push(weight);
                        }
                    }
                }
            }
            let (i2, empty) = options[pick_weighted(rng, &option_weights)];
            configs[j] = BlockConfig { pairs: i2, empty };
            i -= i2;
            if !empty {
                k -= 1;
            }
        }
        // The first block absorbs whatever remains.
        debug_assert!(k <= 1, "first block can keep at most one fact non-empty");
        configs[0] = BlockConfig {
            pairs: i,
            empty: k == 0,
        };
        configs
    }
}

/// Builds the layered DP tables `P^{k,i}_j` of Lemma C.1.
fn build_layers(sizes: &[u64], max_pairs: u64, prefix_facts: &[u64]) -> Vec<Vec<Vec<Natural>>> {
    let n = sizes.len();
    if n == 0 {
        return Vec::new();
    }
    let zero_table = |blocks: usize| -> Vec<Vec<Natural>> {
        vec![vec![Natural::zero(); (max_pairs + 1) as usize]; blocks + 1]
    };
    let mut layers: Vec<Vec<Vec<Natural>>> = Vec::with_capacity(n);
    let mut first = zero_table(1);
    for i in 0..=max_pairs {
        first[0][i as usize] = sequences_empty_block(sizes[0], i);
        first[1][i as usize] = sequences_nonempty_block(sizes[0], i);
    }
    layers.push(first);
    for j in 2..=n {
        let block = sizes[j - 1];
        let total_now = prefix_facts[j];
        let previous = &layers[j - 2];
        let mut next = zero_table(j);
        #[allow(clippy::needless_range_loop)]
        for k in 0..=j {
            for i in 0..=max_pairs {
                // Infeasible states (more pair removals + survivors than
                // facts) have zero count; skip them before computing the
                // operation total, which would underflow.
                if i + k as u64 > total_now {
                    continue;
                }
                let total_ops = total_now - i - k as u64;
                let mut cell = Natural::zero();
                for i2 in 0..=i.min(block / 2) {
                    let i1 = (i - i2) as usize;
                    if k < previous.len() {
                        let prev = &previous[k][i1];
                        if !prev.is_zero() {
                            let s_e = sequences_empty_block(block, i2);
                            if !s_e.is_zero() {
                                cell = &cell + &(&(prev * &s_e) * &binomial(total_ops, block - i2));
                            }
                        }
                    }
                    if k >= 1 && k - 1 < previous.len() {
                        let prev = &previous[k - 1][i1];
                        if !prev.is_zero() {
                            let s_ne = sequences_nonempty_block(block, i2);
                            if !s_ne.is_zero() {
                                cell = &cell
                                    + &(&(prev * &s_ne) * &binomial(total_ops, block - i2 - 1));
                            }
                        }
                    }
                }
                next[k][i as usize] = cell;
            }
        }
        layers.push(next);
    }
    layers
}

/// Builds the Lemma C.1 tables directly in log-space `f64` (zero cells are
/// `-inf`), never materialising the exact big-integer values.
///
/// The recurrence, the feasibility conditions and the iteration order are
/// identical to [`build_layers`]; each cell is a log-sum-exp over the same
/// terms, accumulated with a running maximum for stability.  The result
/// agrees with `ln` of the exact tables to ~15 significant digits — far
/// below the statistical resolution of any Monte-Carlo estimate — while
/// construction stays plain `f64` arithmetic.
fn build_layers_ln(
    sizes: &[u64],
    max_pairs: u64,
    prefix_facts: &[u64],
    ln_seq_empty: &[Vec<f64>],
    ln_seq_nonempty: &[Vec<f64>],
    ln_fact: &[f64],
) -> Vec<Vec<Vec<f64>>> {
    let n = sizes.len();
    if n == 0 {
        return Vec::new();
    }
    let ln_binomial = |n: u64, k: u64| -> f64 {
        if k > n {
            return f64::NEG_INFINITY;
        }
        ln_fact[n as usize] - ln_fact[k as usize] - ln_fact[(n - k) as usize]
    };
    let neg_table = |blocks: usize| -> Vec<Vec<f64>> {
        vec![vec![f64::NEG_INFINITY; (max_pairs + 1) as usize]; blocks + 1]
    };
    let mut layers: Vec<Vec<Vec<f64>>> = Vec::with_capacity(n);
    let mut first = neg_table(1);
    for i in 0..=max_pairs {
        if i <= sizes[0] / 2 {
            first[0][i as usize] = ln_seq_empty[0][i as usize];
            first[1][i as usize] = ln_seq_nonempty[0][i as usize];
        }
    }
    layers.push(first);
    for j in 2..=n {
        let block = sizes[j - 1];
        let total_now = prefix_facts[j];
        let previous = &layers[j - 2];
        let mut next = neg_table(j);
        #[allow(clippy::needless_range_loop)]
        for k in 0..=j {
            for i in 0..=max_pairs {
                if i + k as u64 > total_now {
                    continue;
                }
                let total_ops = total_now - i - k as u64;
                // Running log-sum-exp over the feasible splits.
                let mut max_ln = f64::NEG_INFINITY;
                let mut sum = 0.0f64;
                let mut add = |term: f64| {
                    if term == f64::NEG_INFINITY {
                        return;
                    }
                    if term <= max_ln {
                        sum += (term - max_ln).exp();
                    } else {
                        sum = sum * (max_ln - term).exp() + 1.0;
                        max_ln = term;
                    }
                };
                for i2 in 0..=i.min(block / 2) {
                    let i1 = (i - i2) as usize;
                    if k < previous.len() {
                        let prev = previous[k][i1];
                        let s_e = ln_seq_empty[j - 1][i2 as usize];
                        if prev > f64::NEG_INFINITY && s_e > f64::NEG_INFINITY {
                            add(prev + s_e + ln_binomial(total_ops, block - i2));
                        }
                    }
                    if k >= 1 && k - 1 < previous.len() {
                        let prev = previous[k - 1][i1];
                        let s_ne = ln_seq_nonempty[j - 1][i2 as usize];
                        if prev > f64::NEG_INFINITY && s_ne > f64::NEG_INFINITY {
                            add(prev + s_ne + ln_binomial(total_ops, block - i2 - 1));
                        }
                    }
                }
                if sum > 0.0 {
                    next[k][i as usize] = max_ln + sum.ln();
                }
            }
        }
        layers.push(next);
    }
    layers
}

/// Draws a uniformly random complete block sequence for a block with the
/// given facts and configuration.
fn sample_block_sequence<R: Rng + ?Sized>(
    rng: &mut R,
    facts: &[FactId],
    config: BlockConfig,
) -> Vec<Operation> {
    let mut pool: Vec<FactId> = facts.to_vec();
    pool.shuffle(rng);
    let mut operations = Vec::new();
    let final_op;
    if config.empty {
        // The last operation removes the final surviving pair; the first
        // `pairs − 1` pair removals and all singleton removals precede it in
        // uniformly random order.
        let last_a = pool.pop().expect("blocks have at least two facts");
        let last_b = pool.pop().expect("blocks have at least two facts");
        final_op = Some(Operation::remove_pair(last_a, last_b));
        for _ in 1..config.pairs {
            let a = pool.pop().expect("enough facts for the sampled pair count");
            let b = pool.pop().expect("enough facts for the sampled pair count");
            operations.push(Operation::remove_pair(a, b));
        }
    } else {
        // One survivor; `pairs` pair removals and the rest singletons.
        let _survivor = pool.pop().expect("blocks have at least two facts");
        final_op = None;
        for _ in 0..config.pairs {
            let a = pool.pop().expect("enough facts for the sampled pair count");
            let b = pool.pop().expect("enough facts for the sampled pair count");
            operations.push(Operation::remove_pair(a, b));
        }
    }
    for fact in pool {
        operations.push(Operation::remove_one(fact));
    }
    operations.shuffle(rng);
    if let Some(op) = final_op {
        operations.push(op);
    }
    operations
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;
    use ucqa_db::{FunctionalDependency, Schema, Value};
    use ucqa_repair::{GeneratorSpec, OperationalSemantics, TreeLimits};

    fn figure2() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A1", "A2"]).unwrap();
        let mut db = Database::with_schema(schema);
        for (a, b) in [
            ("a1", "b1"),
            ("a1", "b2"),
            ("a1", "b3"),
            ("a2", "b1"),
            ("a3", "b1"),
            ("a3", "b2"),
        ] {
            db.insert_values("R", [Value::str(a), Value::str(b)])
                .unwrap();
        }
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A1"], &["A2"]).unwrap());
        (db, sigma)
    }

    #[test]
    fn sequence_count_matches_example_c2() {
        let (db, sigma) = figure2();
        let sampler = SequenceSampler::new(&db, &sigma).unwrap();
        assert_eq!(sampler.sequence_count().to_u64(), Some(99));
    }

    #[test]
    fn sampled_sequences_are_valid_complete_and_uniform() {
        let (db, sigma) = figure2();
        let sampler = SequenceSampler::new(&db, &sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen: HashMap<String, usize> = HashMap::new();
        let samples = 19_800usize; // 200 per sequence on average
        for _ in 0..samples {
            let sequence = sampler.sample_sequence(&mut rng);
            let result = sequence
                .validate(&db, &sigma)
                .expect("sampled sequence is repairing");
            assert!(sequence.is_complete(&db, &sigma));
            assert_eq!(result, sequence.result(&db));
            *seen.entry(sequence.render()).or_insert(0) += 1;
        }
        // All 99 sequences should appear, each roughly samples/99 times.
        assert_eq!(seen.len(), 99);
        let expected = samples as f64 / 99.0;
        for (sequence, count) in seen {
            assert!(
                (count as f64 - expected).abs() < expected * 0.5,
                "sequence {sequence} sampled {count} times (expected ≈ {expected})"
            );
        }
    }

    #[test]
    fn result_distribution_matches_exact_uniform_sequences_semantics() {
        let (db, sigma) = figure2();
        let sampler = SequenceSampler::new(&db, &sigma).unwrap();
        let chain = GeneratorSpec::uniform_sequences()
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        let semantics = OperationalSemantics::from_chain(&chain);
        let exact: HashMap<Vec<usize>, f64> = semantics
            .repairs()
            .iter()
            .map(|entry| {
                (
                    entry.repair.iter().map(|f| f.index()).collect(),
                    entry.probability.to_f64(),
                )
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(5);
        let samples = 40_000usize;
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        for _ in 0..samples {
            let result = sampler.sample_result(&mut rng);
            *counts
                .entry(result.iter().map(|f| f.index()).collect())
                .or_insert(0) += 1;
        }
        assert_eq!(counts.len(), exact.len());
        for (repair, probability) in exact {
            let observed = counts.get(&repair).copied().unwrap_or(0) as f64 / samples as f64;
            assert!(
                (observed - probability).abs() < 0.02,
                "repair {repair:?}: observed {observed}, exact {probability}"
            );
        }
    }

    #[test]
    fn singleton_samples_are_valid_and_cover_all_sequences() {
        let (db, sigma) = figure2();
        let sampler = SequenceSampler::new(&db, &sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            let sequence = sampler.sample_sequence_singleton(&mut rng);
            assert!(sequence.is_singleton_only());
            sequence
                .validate(&db, &sigma)
                .expect("valid singleton sequence");
            assert!(sequence.is_complete(&db, &sigma));
            seen.insert(sequence.render());
        }
        // |CRS¹| = (2 + 1)! · 3 · 2 = 36 singleton sequences.
        assert_eq!(seen.len(), 36);
        let result = sampler.sample_result_singleton(&mut rng);
        assert_eq!(result.len(), 3);
    }

    #[test]
    fn log_space_only_tables_match_ln_of_exact_tables() {
        let (db, sigma) = figure2();
        let exact = SequenceSampler::new(&db, &sigma).unwrap();
        let log_only = SequenceSampler::new_log_space(&db, &sigma).unwrap();
        assert!(exact.has_exact_tables());
        assert!(!log_only.has_exact_tables());
        assert_eq!(exact.ln_layers.len(), log_only.ln_layers.len());
        for (a_table, b_table) in exact.ln_layers.iter().zip(&log_only.ln_layers) {
            for (a_row, b_row) in a_table.iter().zip(b_table) {
                for (&a, &b) in a_row.iter().zip(b_row) {
                    if a == f64::NEG_INFINITY || b == f64::NEG_INFINITY {
                        assert_eq!(a, b, "zero cells must agree");
                    } else {
                        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "{a} vs {b}");
                    }
                }
            }
        }
        // The final-cell cumulative distributions agree as well.
        assert_eq!(exact.final_cells.len(), log_only.final_cells.len());
        for (&(ka, ia, ca), &(kb, ib, cb)) in exact.final_cells.iter().zip(&log_only.final_cells) {
            assert_eq!((ka, ia), (kb, ib));
            assert!((ca - cb).abs() < 1e-9);
        }
    }

    #[test]
    fn log_space_result_distribution_matches_exact_semantics() {
        let (db, sigma) = figure2();
        let sampler = SequenceSampler::new_log_space(&db, &sigma).unwrap();
        let chain = GeneratorSpec::uniform_sequences()
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        let semantics = OperationalSemantics::from_chain(&chain);
        let exact: HashMap<Vec<usize>, f64> = semantics
            .repairs()
            .iter()
            .map(|entry| {
                (
                    entry.repair.iter().map(|f| f.index()).collect(),
                    entry.probability.to_f64(),
                )
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(19);
        let samples = 40_000usize;
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        for _ in 0..samples {
            let result = sampler.sample_result(&mut rng);
            *counts
                .entry(result.iter().map(|f| f.index()).collect())
                .or_insert(0) += 1;
        }
        assert_eq!(counts.len(), exact.len());
        for (repair, probability) in exact {
            let observed = counts.get(&repair).copied().unwrap_or(0) as f64 / samples as f64;
            assert!(
                (observed - probability).abs() < 0.02,
                "repair {repair:?}: observed {observed}, exact {probability}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "log-space-only")]
    fn log_space_mode_panics_on_sample_sequence() {
        let (db, sigma) = figure2();
        let sampler = SequenceSampler::new_log_space(&db, &sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sampler.sample_sequence(&mut rng);
    }

    #[test]
    #[should_panic(expected = "log-space-only")]
    fn log_space_mode_panics_on_sequence_count() {
        let (db, sigma) = figure2();
        let sampler = SequenceSampler::new_log_space(&db, &sigma).unwrap();
        let _ = sampler.sequence_count();
    }

    #[test]
    fn consistent_database_yields_empty_sequence() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::int(1), Value::int(1)])
            .unwrap();
        db.insert_values("R", [Value::int(2), Value::int(1)])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        let sampler = SequenceSampler::new(&db, &sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sampler.sequence_count().to_u64(), Some(1));
        assert!(sampler.sample_sequence(&mut rng).is_empty());
        assert_eq!(sampler.sample_result(&mut rng).len(), 2);
    }
}
