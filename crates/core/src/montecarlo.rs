//! Monte-Carlo estimation of Bernoulli means.
//!
//! The FPRAS drivers reduce every approximation task to estimating the mean
//! `p` of a Bernoulli random variable ("does a sampled repair/sequence
//! entail the query?").  Two estimators are provided:
//!
//! * [`estimate_fixed`] — the textbook fixed-sample-size estimator, used
//!   with the sample counts of [`crate::bounds`] (additive or relative
//!   guarantees).
//! * [`StoppingRuleEstimator`] — the *optimal stopping rule* of Dagum,
//!   Karp, Luby and Ross (reference [8] of the paper), which achieves a
//!   relative `(ε, δ)`-guarantee with an expected number of samples
//!   proportional to `1/p`, without having to know a lower bound on `p` in
//!   advance.  This is the estimator the practical FPRAS drivers use.

use rand::Rng;
#[cfg(feature = "parallel")]
use rand::{rngs::StdRng, SeedableRng};
#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// The result of a Monte-Carlo estimation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloOutcome {
    /// The estimate of the Bernoulli mean.
    pub estimate: f64,
    /// The number of samples that were drawn.
    pub samples: u64,
    /// The number of positive samples among them.
    pub successes: u64,
}

/// Draws exactly `samples` Bernoulli samples from `experiment` and returns
/// the empirical mean.
///
/// With `samples ≥ ln(2/δ)/(2ε²)` this is an additive `(ε, δ)`
/// approximation (Hoeffding); with `samples ≥ 3·ln(2/δ)/(ε²·p)` it is a
/// relative one (multiplicative Chernoff).
pub fn estimate_fixed<R, F>(rng: &mut R, samples: u64, mut experiment: F) -> MonteCarloOutcome
where
    R: Rng + ?Sized,
    F: FnMut(&mut R) -> bool,
{
    let mut successes = 0u64;
    for _ in 0..samples {
        if experiment(rng) {
            successes += 1;
        }
    }
    MonteCarloOutcome {
        estimate: if samples == 0 {
            0.0
        } else {
            successes as f64 / samples as f64
        },
        samples,
        successes,
    }
}

/// The result of a batched Monte-Carlo run: one shared sample count, one
/// success counter per Bernoulli variable.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// The number of (shared) samples that were drawn.
    pub samples: u64,
    /// Per-variable success counts.
    pub successes: Vec<u64>,
}

impl BatchOutcome {
    /// The per-variable empirical means.
    pub fn estimates(&self) -> Vec<f64> {
        self.successes
            .iter()
            .map(|&s| {
                if self.samples == 0 {
                    0.0
                } else {
                    s as f64 / self.samples as f64
                }
            })
            .collect()
    }
}

/// Draws exactly `samples` *shared* experiments, each updating `queries`
/// success counters at once: `experiment(rng, successes)` must add at most
/// one to each counter per call.
///
/// Because the RNG is consumed by the shared draw only (never by the
/// per-variable checks), running this with `k` counters is bit-identical
/// to `k` runs of [`estimate_fixed`] from the same RNG state — the batched
/// and the independent estimators realise the *same* random variables.
pub fn estimate_fixed_batch<R, F>(
    rng: &mut R,
    samples: u64,
    queries: usize,
    mut experiment: F,
) -> BatchOutcome
where
    R: Rng + ?Sized,
    F: FnMut(&mut R, &mut [u64]),
{
    let mut successes = vec![0u64; queries];
    for _ in 0..samples {
        experiment(rng, &mut successes);
    }
    BatchOutcome { samples, successes }
}

/// Batched counterpart of [`estimate_fixed_parallel`]: draws exactly
/// `samples` shared experiments sharded across threads, summing the
/// per-shard success vectors.
///
/// The shard boundaries and per-shard RNG streams are **identical** to
/// [`estimate_fixed_parallel`]'s for the same `(master_seed, samples,
/// shard_size)`, and the reduction is an element-wise integer sum, so the
/// outcome is bit-identical regardless of thread count *and* bit-identical
/// to `k` independent [`estimate_fixed_parallel`] runs whose experiments
/// consume the RNG identically (the batched FPRAS guarantee).
///
/// Only available with the `parallel` feature (rayon).
#[cfg(feature = "parallel")]
pub fn estimate_fixed_batch_parallel<E, F>(
    master_seed: u64,
    samples: u64,
    shard_size: u64,
    queries: usize,
    make_experiment: F,
) -> BatchOutcome
where
    F: Fn() -> E + Sync,
    E: FnMut(&mut StdRng, &mut [u64]),
{
    let shard_size = shard_size.max(1);
    let shards = samples.div_ceil(shard_size);
    let successes = (0..shards)
        .into_par_iter()
        .map(|shard| {
            let mut rng = StdRng::seed_from_u64(shard_seed(master_seed, shard));
            let mut experiment = make_experiment();
            let count = shard_size.min(samples - shard * shard_size);
            let mut successes = vec![0u64; queries];
            for _ in 0..count {
                experiment(&mut rng, &mut successes);
            }
            successes
        })
        .reduce(
            || vec![0u64; queries],
            |mut acc, shard| {
                for (a, s) in acc.iter_mut().zip(&shard) {
                    *a += s;
                }
                acc
            },
        );
    BatchOutcome { samples, successes }
}

/// Default number of samples per parallel shard: large enough to amortise
/// per-shard setup (RNG seeding, scratch-buffer construction), small enough
/// to shard a few hundred thousand samples across many cores.
#[cfg(feature = "parallel")]
pub const DEFAULT_SHARD_SIZE: u64 = 4096;

/// Derives the RNG seed of shard `shard` from the master seed via a
/// SplitMix64 round, so shard streams are decorrelated and fully
/// determined by `(master_seed, shard)`.
#[cfg(feature = "parallel")]
fn shard_seed(master_seed: u64, shard: u64) -> u64 {
    let mut z =
        master_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws exactly `samples` Bernoulli samples in parallel, sharding them
/// across threads.
///
/// Shard `s` runs its own `StdRng` seeded deterministically from
/// `(master_seed, s)` and its own experiment instance obtained from
/// `make_experiment` (so per-shard scratch buffers — sampled-repair
/// bitsets, walk scratch — are private to a shard and allocated once per
/// shard, not once per sample).  Because shard boundaries depend only on
/// `samples` and `shard_size`, and the success total is an exact integer
/// sum, the outcome is **bit-identical for a fixed master seed regardless
/// of thread count** — including a thread count of one.
///
/// Only available with the `parallel` feature (rayon).
#[cfg(feature = "parallel")]
pub fn estimate_fixed_parallel<E, F>(
    master_seed: u64,
    samples: u64,
    shard_size: u64,
    make_experiment: F,
) -> MonteCarloOutcome
where
    F: Fn() -> E + Sync,
    E: FnMut(&mut StdRng) -> bool,
{
    let shard_size = shard_size.max(1);
    let shards = samples.div_ceil(shard_size);
    let successes: u64 = (0..shards)
        .into_par_iter()
        .map(|shard| {
            let mut rng = StdRng::seed_from_u64(shard_seed(master_seed, shard));
            let mut experiment = make_experiment();
            let count = shard_size.min(samples - shard * shard_size);
            (0..count).filter(|_| experiment(&mut rng)).count() as u64
        })
        .sum();
    MonteCarloOutcome {
        estimate: if samples == 0 {
            0.0
        } else {
            successes as f64 / samples as f64
        },
        samples,
        successes,
    }
}

/// The Stopping Rule Algorithm of Dagum–Karp–Luby–Ross.
///
/// Draws samples until the number of successes reaches
/// `Υ = 1 + 4·(e − 2)·(1 + ε)·ln(2/δ)/ε²` and outputs `Υ / N`, where `N`
/// is the number of samples drawn.  The output is within relative error
/// `ε` of the true mean with probability at least `1 − δ`, and the
/// expected sample count is `O(Υ / p)`.
///
/// Because the expected running time is inversely proportional to the true
/// mean, a `max_samples` cut-off is enforced; if it is reached the
/// estimator returns the empirical mean observed so far and flags the
/// result as truncated.
#[derive(Debug, Clone, Copy)]
pub struct StoppingRuleEstimator {
    epsilon: f64,
    delta: f64,
    max_samples: u64,
}

/// The outcome of a stopping-rule estimation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoppingRuleOutcome {
    /// The estimate of the Bernoulli mean.
    pub estimate: f64,
    /// The number of samples that were drawn.
    pub samples: u64,
    /// The number of positive samples among them.
    pub successes: u64,
    /// Whether the sample cut-off was hit before the success target
    /// (in which case the `(ε, δ)` guarantee does not apply; this happens
    /// exactly when the true mean is smaller than roughly
    /// `Υ / max_samples`).
    pub truncated: bool,
}

impl StoppingRuleEstimator {
    /// Creates an estimator with the given relative error `ε ∈ (0, 1)` and
    /// failure probability `δ ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics if the parameters are out of range — callers validate them as
    /// part of [`crate::fpras::ApproximationParams`].
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        StoppingRuleEstimator {
            epsilon,
            delta,
            max_samples: 50_000_000,
        }
    }

    /// Overrides the sample cut-off.
    pub fn with_max_samples(mut self, max_samples: u64) -> Self {
        self.max_samples = max_samples;
        self
    }

    /// The success target `Υ` of the stopping rule.
    pub fn success_target(&self) -> u64 {
        let e = std::f64::consts::E;
        let upsilon = 1.0
            + 4.0 * (e - 2.0) * (1.0 + self.epsilon) * (2.0 / self.delta).ln()
                / (self.epsilon * self.epsilon);
        upsilon.ceil() as u64
    }

    /// Runs the stopping rule against the Bernoulli `experiment`.
    pub fn estimate<R, F>(&self, rng: &mut R, mut experiment: F) -> StoppingRuleOutcome
    where
        R: Rng + ?Sized,
        F: FnMut(&mut R) -> bool,
    {
        let target = self.success_target();
        let mut successes = 0u64;
        let mut samples = 0u64;
        while successes < target && samples < self.max_samples {
            samples += 1;
            if experiment(rng) {
                successes += 1;
            }
        }
        let truncated = successes < target;
        let estimate = if truncated {
            if samples == 0 {
                0.0
            } else {
                successes as f64 / samples as f64
            }
        } else {
            target as f64 / samples as f64
        };
        StoppingRuleOutcome {
            estimate,
            samples,
            successes,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_estimator_recovers_the_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = estimate_fixed(&mut rng, 40_000, |rng| rng.random_bool(0.3));
        assert!((outcome.estimate - 0.3).abs() < 0.02);
        assert_eq!(outcome.samples, 40_000);
        assert_eq!(
            outcome.successes,
            (outcome.estimate * 40_000.0).round() as u64
        );
    }

    #[test]
    fn fixed_estimator_with_zero_samples_is_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        let outcome = estimate_fixed(&mut rng, 0, |_| true);
        assert_eq!(outcome.estimate, 0.0);
    }

    #[test]
    fn stopping_rule_achieves_relative_error() {
        let estimator = StoppingRuleEstimator::new(0.1, 0.05);
        let mut rng = StdRng::seed_from_u64(3);
        for &p in &[0.5, 0.1, 0.01] {
            let outcome = estimator.estimate(&mut rng, |rng| rng.random_bool(p));
            assert!(!outcome.truncated);
            let relative_error = (outcome.estimate - p).abs() / p;
            assert!(
                relative_error < 0.15,
                "p = {p}: estimate {} (relative error {relative_error})",
                outcome.estimate
            );
        }
    }

    #[test]
    fn stopping_rule_uses_fewer_samples_for_larger_means() {
        let estimator = StoppingRuleEstimator::new(0.2, 0.1);
        let mut rng = StdRng::seed_from_u64(4);
        let big = estimator.estimate(&mut rng, |rng| rng.random_bool(0.5));
        let small = estimator.estimate(&mut rng, |rng| rng.random_bool(0.02));
        assert!(big.samples * 5 < small.samples);
    }

    #[test]
    fn stopping_rule_truncates_on_zero_probability_events() {
        let estimator = StoppingRuleEstimator::new(0.2, 0.1).with_max_samples(5_000);
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = estimator.estimate(&mut rng, |_| false);
        assert!(outcome.truncated);
        assert_eq!(outcome.estimate, 0.0);
        assert_eq!(outcome.samples, 5_000);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn invalid_epsilon_panics() {
        let _ = StoppingRuleEstimator::new(1.5, 0.1);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_estimator_recovers_the_mean() {
        let outcome = estimate_fixed_parallel(99, 80_000, DEFAULT_SHARD_SIZE, || {
            |rng: &mut StdRng| rng.random_bool(0.25)
        });
        assert_eq!(outcome.samples, 80_000);
        assert!((outcome.estimate - 0.25).abs() < 0.01);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_estimator_is_thread_count_independent() {
        let run = || {
            estimate_fixed_parallel(7, 50_001, 1_000, || |rng: &mut StdRng| rng.random_bool(0.4))
        };
        let baseline = run();
        for threads in [1usize, 2, 5, 16] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let outcome = pool.install(run);
            assert_eq!(outcome, baseline, "{threads} threads");
        }
    }

    #[test]
    fn batch_estimator_matches_independent_runs_per_variable() {
        // A shared experiment whose per-variable checks are deterministic
        // functions of one shared draw: batched counts must equal running
        // each variable independently from the same RNG state.
        let thresholds = [0.2f64, 0.5, 0.8];
        let batched = {
            let mut rng = StdRng::seed_from_u64(11);
            estimate_fixed_batch(&mut rng, 10_000, thresholds.len(), |rng, successes| {
                let draw: f64 = rng.random();
                for (s, &t) in successes.iter_mut().zip(&thresholds) {
                    if draw < t {
                        *s += 1;
                    }
                }
            })
        };
        assert_eq!(batched.samples, 10_000);
        for (i, &t) in thresholds.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(11);
            let single = estimate_fixed(&mut rng, 10_000, |rng| {
                let draw: f64 = rng.random();
                draw < t
            });
            assert_eq!(batched.successes[i], single.successes, "variable {i}");
        }
        let estimates = batched.estimates();
        for (e, &t) in estimates.iter().zip(&thresholds) {
            assert!((e - t).abs() < 0.02);
        }
    }

    #[test]
    fn batch_estimator_with_zero_samples_or_queries() {
        let mut rng = StdRng::seed_from_u64(1);
        let zero = estimate_fixed_batch(&mut rng, 0, 3, |_, _| panic!("no draws"));
        assert_eq!(zero.successes, vec![0, 0, 0]);
        assert_eq!(zero.estimates(), vec![0.0, 0.0, 0.0]);
        let empty = estimate_fixed_batch(&mut rng, 5, 0, |_, successes| {
            assert!(successes.is_empty());
        });
        assert!(empty.successes.is_empty());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_batch_matches_independent_parallel_runs() {
        let thresholds = [0.3f64, 0.7];
        let experiment = |rng: &mut StdRng, successes: &mut [u64]| {
            let draw: f64 = rng.random();
            for (s, &t) in successes.iter_mut().zip(&thresholds) {
                if draw < t {
                    *s += 1;
                }
            }
        };
        let batched = estimate_fixed_batch_parallel(42, 30_001, 1_000, 2, || experiment);
        for (i, &t) in thresholds.iter().enumerate() {
            let single = estimate_fixed_parallel(42, 30_001, 1_000, || {
                move |rng: &mut StdRng| {
                    let draw: f64 = rng.random();
                    draw < t
                }
            });
            assert_eq!(batched.successes[i], single.successes, "variable {i}");
        }
        // Thread-count independence.
        for threads in [1usize, 2, 7] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let outcome =
                pool.install(|| estimate_fixed_batch_parallel(42, 30_001, 1_000, 2, || experiment));
            assert_eq!(outcome, batched, "{threads} threads");
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_estimator_handles_edge_sample_counts() {
        let zero = estimate_fixed_parallel(1, 0, 64, || |_: &mut StdRng| true);
        assert_eq!(zero.estimate, 0.0);
        assert_eq!(zero.samples, 0);
        let one = estimate_fixed_parallel(1, 1, 64, || |_: &mut StdRng| true);
        assert_eq!(one.successes, 1);
    }
}
