//! Monte-Carlo estimation of Bernoulli means.
//!
//! The FPRAS drivers reduce every approximation task to estimating the mean
//! `p` of a Bernoulli random variable ("does a sampled repair/sequence
//! entail the query?").  Two estimators are provided:
//!
//! * [`estimate_fixed`] — the textbook fixed-sample-size estimator, used
//!   with the sample counts of [`crate::bounds`] (additive or relative
//!   guarantees).
//! * [`StoppingRuleEstimator`] — the *optimal stopping rule* of Dagum,
//!   Karp, Luby and Ross (reference \[8\] of the paper), which achieves a
//!   relative `(ε, δ)`-guarantee with an expected number of samples
//!   proportional to `1/p`, without having to know a lower bound on `p` in
//!   advance.  This is the estimator the practical FPRAS drivers use.
//!
//! Both have batched counterparts estimating `k` Bernoulli means from
//! **one** shared sample stream: [`estimate_fixed_batch`] (and the
//! rayon-sharded [`estimate_fixed_batch_parallel`]) for the fixed-sample
//! modes, and [`estimate_stopping_batch`] (and the round-based
//! [`estimate_stopping_batch_rounds`]) for the adaptive stopping rule,
//! where each query tracks its own success target and *retires* from the
//! per-draw work as it converges.
//!
//! Every loop has a `_budgeted` counterpart taking a
//! [`RunBudget`] — draw caps, wall-clock
//! deadlines, cooperative cancellation — that can stop the stream
//! mid-flight and reports a [`BudgetStatus`]
//! alongside the partial outcome.  Budget checks consume no randomness and
//! run *before* each draw, so an unconstrained budget is bit-identical to
//! the plain loop and an interrupted run can be
//! [resumed](estimate_stopping_batch_budgeted) from the same RNG state to
//! reproduce the uninterrupted stream bit-for-bit.

use crate::budget::{BudgetStatus, RunBudget};
use crate::CoreError;
use rand::Rng;
#[cfg(feature = "parallel")]
use rand::{rngs::StdRng, SeedableRng};
#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// The result of a Monte-Carlo estimation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloOutcome {
    /// The estimate of the Bernoulli mean.
    pub estimate: f64,
    /// The number of samples that were drawn.
    pub samples: u64,
    /// The number of positive samples among them.
    pub successes: u64,
}

/// Draws exactly `samples` Bernoulli samples from `experiment` and returns
/// the empirical mean.
///
/// With `samples ≥ ln(2/δ)/(2ε²)` this is an additive `(ε, δ)`
/// approximation (Hoeffding); with `samples ≥ 3·ln(2/δ)/(ε²·p)` it is a
/// relative one (multiplicative Chernoff).
pub fn estimate_fixed<R, F>(rng: &mut R, samples: u64, mut experiment: F) -> MonteCarloOutcome
where
    R: Rng + ?Sized,
    F: FnMut(&mut R) -> bool,
{
    let mut successes = 0u64;
    for _ in 0..samples {
        if experiment(rng) {
            successes += 1;
        }
    }
    MonteCarloOutcome {
        estimate: if samples == 0 {
            0.0
        } else {
            successes as f64 / samples as f64
        },
        samples,
        successes,
    }
}

/// As [`estimate_fixed`], under a [`RunBudget`].
///
/// The budget is polled *before* each draw (consuming no randomness), so
/// an unconstrained budget draws the same sample sequence as
/// [`estimate_fixed`] and returns a bit-identical outcome with status
/// [`BudgetStatus::Converged`].  An interrupted run reports the empirical
/// mean over the draws actually consumed and the interrupting status.
pub fn estimate_fixed_budgeted<R, F>(
    rng: &mut R,
    samples: u64,
    budget: &RunBudget,
    mut experiment: F,
) -> (MonteCarloOutcome, BudgetStatus)
where
    R: Rng + ?Sized,
    F: FnMut(&mut R) -> bool,
{
    let mut successes = 0u64;
    let mut drawn = 0u64;
    let mut status = BudgetStatus::Converged;
    while drawn < samples {
        if let Some(interrupt) = budget.check(drawn) {
            status = interrupt;
            break;
        }
        drawn += 1;
        if experiment(rng) {
            successes += 1;
        }
    }
    (
        MonteCarloOutcome {
            estimate: if drawn == 0 {
                0.0
            } else {
                successes as f64 / drawn as f64
            },
            samples: drawn,
            successes,
        },
        status,
    )
}

/// The result of a batched Monte-Carlo run: one shared sample count, one
/// success counter per Bernoulli variable.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// The number of (shared) samples that were drawn.
    pub samples: u64,
    /// Per-variable success counts.
    pub successes: Vec<u64>,
}

impl BatchOutcome {
    /// The per-variable empirical means.
    pub fn estimates(&self) -> Vec<f64> {
        self.successes
            .iter()
            .map(|&s| {
                if self.samples == 0 {
                    0.0
                } else {
                    s as f64 / self.samples as f64
                }
            })
            .collect()
    }
}

/// Draws exactly `samples` *shared* experiments, each updating `queries`
/// success counters at once: `experiment(rng, successes)` must add at most
/// one to each counter per call.
///
/// Because the RNG is consumed by the shared draw only (never by the
/// per-variable checks), running this with `k` counters is bit-identical
/// to `k` runs of [`estimate_fixed`] from the same RNG state — the batched
/// and the independent estimators realise the *same* random variables.
pub fn estimate_fixed_batch<R, F>(
    rng: &mut R,
    samples: u64,
    queries: usize,
    mut experiment: F,
) -> BatchOutcome
where
    R: Rng + ?Sized,
    F: FnMut(&mut R, &mut [u64]),
{
    let mut successes = vec![0u64; queries];
    for _ in 0..samples {
        experiment(rng, &mut successes);
    }
    BatchOutcome { samples, successes }
}

/// As [`estimate_fixed_batch`], under a [`RunBudget`].
///
/// One shared status for the whole batch: the fixed-sample stream either
/// runs to its planned length ([`BudgetStatus::Converged`]) or every
/// variable is cut at the same draw.  The budget is polled before each
/// draw, so an unconstrained budget is bit-identical to
/// [`estimate_fixed_batch`].
pub fn estimate_fixed_batch_budgeted<R, F>(
    rng: &mut R,
    samples: u64,
    queries: usize,
    budget: &RunBudget,
    mut experiment: F,
) -> (BatchOutcome, BudgetStatus)
where
    R: Rng + ?Sized,
    F: FnMut(&mut R, &mut [u64]),
{
    let mut successes = vec![0u64; queries];
    let mut drawn = 0u64;
    let mut status = BudgetStatus::Converged;
    while drawn < samples {
        if let Some(interrupt) = budget.check(drawn) {
            status = interrupt;
            break;
        }
        drawn += 1;
        experiment(rng, &mut successes);
    }
    (
        BatchOutcome {
            samples: drawn,
            successes,
        },
        status,
    )
}

/// Batched counterpart of [`estimate_fixed_parallel`]: draws exactly
/// `samples` shared experiments sharded across threads, summing the
/// per-shard success vectors.
///
/// The shard boundaries and per-shard RNG streams are **identical** to
/// [`estimate_fixed_parallel`]'s for the same `(master_seed, samples,
/// shard_size)`, and the reduction is an element-wise integer sum, so the
/// outcome is bit-identical regardless of thread count *and* bit-identical
/// to `k` independent [`estimate_fixed_parallel`] runs whose experiments
/// consume the RNG identically (the batched FPRAS guarantee).
///
/// Only available with the `parallel` feature (rayon).
#[cfg(feature = "parallel")]
pub fn estimate_fixed_batch_parallel<E, F>(
    master_seed: u64,
    samples: u64,
    shard_size: u64,
    queries: usize,
    make_experiment: F,
) -> BatchOutcome
where
    F: Fn() -> E + Sync,
    E: FnMut(&mut StdRng, &mut [u64]),
{
    let shard_size = shard_size.max(1);
    let shards = samples.div_ceil(shard_size);
    let successes = (0..shards)
        .into_par_iter()
        .map(|shard| {
            let mut rng = StdRng::seed_from_u64(shard_seed(master_seed, shard));
            let mut experiment = make_experiment();
            let count = shard_size.min(samples - shard * shard_size);
            let mut successes = vec![0u64; queries];
            for _ in 0..count {
                experiment(&mut rng, &mut successes);
            }
            successes
        })
        .reduce(
            || vec![0u64; queries],
            |mut acc, shard| {
                for (a, s) in acc.iter_mut().zip(&shard) {
                    *a += s;
                }
                acc
            },
        );
    BatchOutcome { samples, successes }
}

/// Default number of samples per parallel shard: large enough to amortise
/// per-shard setup (RNG seeding, scratch-buffer construction), small enough
/// to shard a few hundred thousand samples across many cores.
#[cfg(feature = "parallel")]
pub const DEFAULT_SHARD_SIZE: u64 = 4096;

/// Derives the RNG seed of shard `shard` from the master seed via a
/// SplitMix64 round, so shard streams are decorrelated and fully
/// determined by `(master_seed, shard)`.
#[cfg(feature = "parallel")]
fn shard_seed(master_seed: u64, shard: u64) -> u64 {
    let mut z =
        master_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws exactly `samples` Bernoulli samples in parallel, sharding them
/// across threads.
///
/// Shard `s` runs its own `StdRng` seeded deterministically from
/// `(master_seed, s)` and its own experiment instance obtained from
/// `make_experiment` (so per-shard scratch buffers — sampled-repair
/// bitsets, walk scratch — are private to a shard and allocated once per
/// shard, not once per sample).  Because shard boundaries depend only on
/// `samples` and `shard_size`, and the success total is an exact integer
/// sum, the outcome is **bit-identical for a fixed master seed regardless
/// of thread count** — including a thread count of one.
///
/// Only available with the `parallel` feature (rayon).
#[cfg(feature = "parallel")]
pub fn estimate_fixed_parallel<E, F>(
    master_seed: u64,
    samples: u64,
    shard_size: u64,
    make_experiment: F,
) -> MonteCarloOutcome
where
    F: Fn() -> E + Sync,
    E: FnMut(&mut StdRng) -> bool,
{
    let shard_size = shard_size.max(1);
    let shards = samples.div_ceil(shard_size);
    let successes: u64 = (0..shards)
        .into_par_iter()
        .map(|shard| {
            let mut rng = StdRng::seed_from_u64(shard_seed(master_seed, shard));
            let mut experiment = make_experiment();
            let count = shard_size.min(samples - shard * shard_size);
            (0..count).filter(|_| experiment(&mut rng)).count() as u64
        })
        .sum();
    MonteCarloOutcome {
        estimate: if samples == 0 {
            0.0
        } else {
            successes as f64 / samples as f64
        },
        samples,
        successes,
    }
}

/// A batched Bernoulli experiment driven by the stopping-rule loops
/// ([`estimate_stopping_batch`] and, with the `parallel` feature,
/// [`estimate_stopping_batch_rounds`]).
///
/// Unlike the fixed-sample batched loop, the adaptive loop *retires*
/// queries as they converge, and the experiment is told about it so the
/// per-draw work can shrink (the FPRAS driver drops a retired query's
/// witnesses out of the shared containment scan).
pub trait StoppingBatchExperiment<R: Rng + ?Sized> {
    /// Draws **one** shared sample and writes `hits[q] = true` iff query
    /// `q` is entailed by it, for every *live* query `q`.
    ///
    /// Entries of retired queries may be left stale — the driver never
    /// reads them.  The RNG must be consumed by the shared draw only
    /// (never per query), which is what keeps the sequential loop
    /// bit-identical to independent per-query stopping-rule runs.
    fn draw(&mut self, rng: &mut R, hits: &mut [bool]);

    /// Notification that `query` has reached its success target and will
    /// never be read again.  The default does nothing; implementations
    /// use it to compact their per-draw state.
    fn retire(&mut self, _query: usize) {}
}

/// The result of a batched stopping-rule run: one outcome per query, plus
/// the length of the shared sample stream (the stream runs until the last
/// live query retires or `max_samples` truncates it).
#[derive(Debug, Clone, PartialEq)]
pub struct StoppingBatchOutcome {
    /// Per-query stopping-rule outcomes.  `outcomes[q].samples` is the
    /// length of the stream prefix query `q` observed before retiring
    /// (or the full stream length if it was truncated).
    pub outcomes: Vec<StoppingRuleOutcome>,
    /// Total number of shared samples drawn — the maximum of the
    /// per-query sample counts.
    pub total_samples: u64,
}

/// Drives **one** shared sample stream until every query has reached its
/// success target `targets[q]` (or `max_samples` truncates the stream),
/// retiring queries as they converge.
///
/// Query `q` retires at the first draw `N_q` where its success count
/// reaches `targets[q]`, with estimate `targets[q] / N_q` — exactly the
/// Dagum–Karp–Luby–Ross stopping rule applied to the prefix of the shared
/// stream it observed.  Because the experiment's per-query checks consume
/// no randomness, that prefix is the *same* sample sequence an independent
/// [`StoppingRuleEstimator::estimate`] run with the same target would see
/// from the same RNG state: the sequential batched loop is **bit-identical**
/// to per-query stopping-rule runs (pass each query `Υ(ε, δ/k)` to realise
/// the union-bound guarantee over a bank of `k`).
///
/// Queries still live when `max_samples` is reached are flagged
/// [`truncated`](StoppingRuleOutcome::truncated) and report the plain
/// empirical mean; a zero-probability query therefore truncates without
/// stalling the retirement of the others — it merely keeps the stream
/// running to the cut-off while the per-draw live set shrinks around it.
pub fn estimate_stopping_batch<R, E>(
    rng: &mut R,
    targets: &[u64],
    max_samples: u64,
    experiment: &mut E,
) -> StoppingBatchOutcome
where
    R: Rng + ?Sized,
    E: StoppingBatchExperiment<R>,
{
    let budgeted = estimate_stopping_batch_budgeted(
        rng,
        targets,
        max_samples,
        &RunBudget::unlimited(),
        experiment,
        None,
    );
    StoppingBatchOutcome {
        outcomes: budgeted.outcomes,
        total_samples: budgeted.total_samples,
    }
}

/// The result of a budgeted batched stopping-rule run: the per-query
/// outcomes of [`StoppingBatchOutcome`] plus one [`BudgetStatus`] per
/// query recording *why* that query's stream prefix ended.
///
/// A query is [`Converged`](BudgetStatus::Converged) iff it reached its
/// success target; converged queries keep their values even when the run
/// is later interrupted — only live queries degrade to
/// [`BudgetExhausted`](BudgetStatus::BudgetExhausted) or
/// [`Cancelled`](BudgetStatus::Cancelled) partial estimates.  The whole
/// value can be fed back as the `resume` argument of
/// [`estimate_stopping_batch_budgeted`] to continue the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetedStoppingOutcome {
    /// Per-query stopping-rule outcomes (partial for non-converged ones).
    pub outcomes: Vec<StoppingRuleOutcome>,
    /// Per-query termination statuses.
    pub statuses: Vec<BudgetStatus>,
    /// Total number of shared samples drawn, including the draws of a
    /// resumed prior run.
    pub total_samples: u64,
}

/// As [`estimate_stopping_batch`], under a [`RunBudget`], with optional
/// resumption of an interrupted run.
///
/// The budget is polled *before* each draw and consumes no randomness, so
/// an unconstrained budget is **bit-identical** to
/// [`estimate_stopping_batch`], and an interruption at draw `t` leaves the
/// RNG having consumed exactly `t` draws.  Feeding the returned outcome
/// back as `resume` (with the *same* RNG, now positioned after draw `t`)
/// continues the shared stream where it stopped: converged queries keep
/// their frozen outcomes (their retirement is re-announced to
/// `experiment`), live queries pick their success counts back up, and the
/// concatenated run is bit-identical to one uninterrupted run.
///
/// Draw counts are absolute across resumption: `max_samples`, a
/// [`max_draws`](RunBudget::with_max_draws) cap and a
/// [`tripped_at_draw`](crate::budget::CancelToken::tripped_at_draw) token
/// all refer to the total stream length, not to the draws of one call.
///
/// # Panics
/// Panics if `resume` covers a different number of queries than `targets`
/// (a programming error, not a runtime condition).
pub fn estimate_stopping_batch_budgeted<R, E>(
    rng: &mut R,
    targets: &[u64],
    max_samples: u64,
    budget: &RunBudget,
    experiment: &mut E,
    resume: Option<&BudgetedStoppingOutcome>,
) -> BudgetedStoppingOutcome
where
    R: Rng + ?Sized,
    E: StoppingBatchExperiment<R>,
{
    let k = targets.len();
    let mut outcomes = vec![
        StoppingRuleOutcome {
            estimate: 0.0,
            samples: 0,
            successes: 0,
            truncated: false,
        };
        k
    ];
    let mut statuses = vec![BudgetStatus::Converged; k];
    let mut successes = vec![0u64; k];
    let mut hits = vec![false; k];
    let mut live: Vec<usize> = Vec::with_capacity(k);
    let mut draws = 0u64;
    match resume {
        Some(prior) => {
            assert_eq!(
                prior.outcomes.len(),
                k,
                "resume outcome must cover the same queries as `targets`"
            );
            draws = prior.total_samples;
            for q in 0..k {
                successes[q] = prior.outcomes[q].successes;
                if prior.statuses[q] == BudgetStatus::Converged {
                    // Converged entries keep their frozen outcome; the
                    // experiment is told again so it can compact its
                    // per-draw state exactly as in the original run.
                    outcomes[q] = prior.outcomes[q];
                    experiment.retire(q);
                } else {
                    live.push(q);
                }
            }
        }
        None => live.extend(0..k),
    }
    let mut interrupt = None;
    while !live.is_empty() && draws < max_samples {
        if let Some(status) = budget.check(draws) {
            interrupt = Some(status);
            break;
        }
        draws += 1;
        experiment.draw(rng, &mut hits);
        let mut j = 0;
        while j < live.len() {
            let q = live[j];
            if hits[q] {
                successes[q] += 1;
                if successes[q] >= targets[q] {
                    outcomes[q] = StoppingRuleOutcome {
                        estimate: targets[q] as f64 / draws as f64,
                        samples: draws,
                        successes: successes[q],
                        truncated: false,
                    };
                    live.swap_remove(j);
                    experiment.retire(q);
                    continue;
                }
            }
            j += 1;
        }
    }
    // Anything still live was cut off — by the budget if it fired, by the
    // `max_samples` cut-off otherwise.
    let live_status = interrupt.unwrap_or(BudgetStatus::BudgetExhausted);
    for &q in &live {
        outcomes[q] = StoppingRuleOutcome {
            estimate: if draws == 0 {
                0.0
            } else {
                successes[q] as f64 / draws as f64
            },
            samples: draws,
            successes: successes[q],
            truncated: true,
        };
        statuses[q] = live_status;
    }
    BudgetedStoppingOutcome {
        outcomes,
        statuses,
        total_samples: draws,
    }
}

/// Round-based rayon-sharded variant of [`estimate_stopping_batch`]:
/// draws up to `round_samples` shared samples per round (sharded across
/// worker threads exactly like [`estimate_fixed_batch_parallel`], with a
/// global shard counter deriving the per-shard RNG streams), then checks
/// retirement at the round boundary.
///
/// `make_experiment` is called once per shard with the **current live
/// query list** and returns the shard's experiment closure, so a fresh
/// shard only pays for the queries that are still live.
///
/// **Adaptive round size.**  Rounds shrink with the live set: a round
/// draws `⌈round_samples · live/k⌉` samples (never less than one shard,
/// never more than the remaining budget), so a long tail — one rare query
/// pinning the stream after the crowd has retired — checks its target at
/// proportionally finer boundaries instead of paying full-size rounds of
/// overshoot.  The schedule depends only on `(targets, round_samples,
/// shard_size)` and the summed per-round success counts, so it is as
/// thread-count-deterministic as the fixed schedule; retirement still
/// happens only at boundaries with at least the DKLR success target, so
/// the `(ε, δ)` guarantee is unchanged.
///
/// **Where bit-identity ends.**  Retirement is round-granular here: a
/// query that crosses its success target mid-round keeps observing draws
/// until the boundary, so its sample count — and hence its estimate, the
/// empirical mean `successes/samples` over at least `targets[q]`
/// successes — differs from the sequential loop's `target/N_q`.  The
/// round-based variant matches the sequential one (and `k` independent
/// stopping-rule runs) in *guarantee*, not bit-for-bit: each query stops
/// with at least the DKLR success target at a sample count at least as
/// large, which preserves the relative `(ε, δ)` bound (tested against the
/// exact solver).  The outcome is still **bit-identical across thread
/// counts** for a fixed `master_seed`: shard boundaries, shard seeds and
/// the element-wise integer success sums are all thread-count independent,
/// and retirement decisions are made from the summed per-round counts.
///
/// Only available with the `parallel` feature (rayon).
#[cfg(feature = "parallel")]
pub fn estimate_stopping_batch_rounds<E, F>(
    master_seed: u64,
    targets: &[u64],
    max_samples: u64,
    round_samples: u64,
    shard_size: u64,
    make_experiment: F,
) -> StoppingBatchOutcome
where
    F: Fn(&[usize]) -> E + Sync,
    E: FnMut(&mut StdRng, &mut [bool]),
{
    let budgeted = estimate_stopping_batch_rounds_budgeted(
        master_seed,
        targets,
        max_samples,
        round_samples,
        shard_size,
        &RunBudget::unlimited(),
        make_experiment,
    );
    StoppingBatchOutcome {
        outcomes: budgeted.outcomes,
        total_samples: budgeted.total_samples,
    }
}

/// As [`estimate_stopping_batch_rounds`], under a [`RunBudget`].
///
/// The budget is polled once per **round boundary** (consuming no
/// randomness), so cancellation here is round-granular: a deadline or
/// token observed at a boundary stops the run before the next round is
/// dispatched to the thread pool, and live queries report the empirical
/// mean over the rounds that completed.  An unconstrained budget is
/// bit-identical to [`estimate_stopping_batch_rounds`], and the outcome
/// remains bit-identical across thread counts for a fixed `master_seed`
/// whenever the budget decisions themselves are deterministic (draw caps
/// and pre-tripped tokens are; a wall-clock deadline is not, by nature).
/// Resumption is not offered on this path — mid-round work cannot be
/// replayed draw-by-draw.
#[cfg(feature = "parallel")]
pub fn estimate_stopping_batch_rounds_budgeted<E, F>(
    master_seed: u64,
    targets: &[u64],
    max_samples: u64,
    round_samples: u64,
    shard_size: u64,
    budget: &RunBudget,
    make_experiment: F,
) -> BudgetedStoppingOutcome
where
    F: Fn(&[usize]) -> E + Sync,
    E: FnMut(&mut StdRng, &mut [bool]),
{
    let k = targets.len();
    let round_samples = round_samples.max(1);
    let shard_size = shard_size.max(1);
    let mut outcomes = vec![
        StoppingRuleOutcome {
            estimate: 0.0,
            samples: 0,
            successes: 0,
            truncated: false,
        };
        k
    ];
    let mut statuses = vec![BudgetStatus::Converged; k];
    let mut successes = vec![0u64; k];
    let mut live: Vec<usize> = (0..k).collect();
    let mut drawn = 0u64;
    let mut next_shard = 0u64;
    let mut interrupt = None;
    while !live.is_empty() && drawn < max_samples {
        if let Some(status) = budget.check(drawn) {
            interrupt = Some(status);
            break;
        }
        // Shrink the round proportionally to the live set (at least one
        // shard's worth), so late-stage boundaries are finer.
        let scaled = ((round_samples as u128 * live.len() as u128).div_ceil(k as u128)) as u64;
        let round = scaled
            .max(shard_size.min(round_samples))
            .min(max_samples - drawn);
        let shards = round.div_ceil(shard_size);
        let live_ref: &[usize] = &live;
        let round_successes = (0..shards)
            .into_par_iter()
            .map(|shard| {
                let mut rng = StdRng::seed_from_u64(shard_seed(master_seed, next_shard + shard));
                let mut experiment = make_experiment(live_ref);
                let count = shard_size.min(round - shard * shard_size);
                let mut hits = vec![false; k];
                let mut acc = vec![0u64; k];
                for _ in 0..count {
                    experiment(&mut rng, &mut hits);
                    for &q in live_ref {
                        if hits[q] {
                            acc[q] += 1;
                        }
                    }
                }
                acc
            })
            .reduce(
                || vec![0u64; k],
                |mut acc, shard| {
                    for (a, s) in acc.iter_mut().zip(&shard) {
                        *a += s;
                    }
                    acc
                },
            );
        next_shard += shards;
        drawn += round;
        live.retain(|&q| {
            successes[q] += round_successes[q];
            if successes[q] >= targets[q] {
                outcomes[q] = StoppingRuleOutcome {
                    estimate: successes[q] as f64 / drawn as f64,
                    samples: drawn,
                    successes: successes[q],
                    truncated: false,
                };
                false
            } else {
                true
            }
        });
    }
    let live_status = interrupt.unwrap_or(BudgetStatus::BudgetExhausted);
    for &q in &live {
        outcomes[q] = StoppingRuleOutcome {
            estimate: if drawn == 0 {
                0.0
            } else {
                successes[q] as f64 / drawn as f64
            },
            samples: drawn,
            successes: successes[q],
            truncated: true,
        };
        statuses[q] = live_status;
    }
    BudgetedStoppingOutcome {
        outcomes,
        statuses,
        total_samples: drawn,
    }
}

/// The Stopping Rule Algorithm of Dagum–Karp–Luby–Ross.
///
/// Draws samples until the number of successes reaches
/// `Υ = 1 + 4·(e − 2)·(1 + ε)·ln(2/δ)/ε²` and outputs `Υ / N`, where `N`
/// is the number of samples drawn.  The output is within relative error
/// `ε` of the true mean with probability at least `1 − δ`, and the
/// expected sample count is `O(Υ / p)`.
///
/// Because the expected running time is inversely proportional to the true
/// mean, a `max_samples` cut-off is enforced; if it is reached the
/// estimator returns the empirical mean observed so far and flags the
/// result as truncated.
#[derive(Debug, Clone, Copy)]
pub struct StoppingRuleEstimator {
    epsilon: f64,
    delta: f64,
    max_samples: u64,
}

/// The outcome of a stopping-rule estimation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoppingRuleOutcome {
    /// The estimate of the Bernoulli mean.
    pub estimate: f64,
    /// The number of samples that were drawn.
    pub samples: u64,
    /// The number of positive samples among them.
    pub successes: u64,
    /// Whether the sample cut-off was hit before the success target
    /// (in which case the `(ε, δ)` guarantee does not apply; this happens
    /// exactly when the true mean is smaller than roughly
    /// `Υ / max_samples`).
    pub truncated: bool,
}

impl StoppingRuleEstimator {
    /// Creates an estimator with the given relative error `ε ∈ (0, 1)` and
    /// failure probability `δ ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics if the parameters are out of range — callers validate them as
    /// part of [`crate::fpras::ApproximationParams`]; use
    /// [`StoppingRuleEstimator::try_new`] for a typed error instead.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        match Self::try_new(epsilon, delta) {
            Ok(estimator) => estimator,
            Err(e) => panic!("{e}"),
        }
    }

    /// As [`StoppingRuleEstimator::new`], returning
    /// [`CoreError::InvalidParameters`] instead of panicking on
    /// out-of-range parameters.
    pub fn try_new(epsilon: f64, delta: f64) -> Result<Self, CoreError> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CoreError::InvalidParameters {
                message: format!("epsilon must be in (0, 1), got {epsilon}"),
            });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(CoreError::InvalidParameters {
                message: format!("delta must be in (0, 1), got {delta}"),
            });
        }
        Ok(StoppingRuleEstimator {
            epsilon,
            delta,
            max_samples: 50_000_000,
        })
    }

    /// Overrides the sample cut-off.
    pub fn with_max_samples(mut self, max_samples: u64) -> Self {
        self.max_samples = max_samples;
        self
    }

    /// The success target `Υ` of the stopping rule.
    pub fn success_target(&self) -> u64 {
        let e = std::f64::consts::E;
        let upsilon = 1.0
            + 4.0 * (e - 2.0) * (1.0 + self.epsilon) * (2.0 / self.delta).ln()
                / (self.epsilon * self.epsilon);
        upsilon.ceil() as u64
    }

    /// Runs the stopping rule against the Bernoulli `experiment`.
    pub fn estimate<R, F>(&self, rng: &mut R, mut experiment: F) -> StoppingRuleOutcome
    where
        R: Rng + ?Sized,
        F: FnMut(&mut R) -> bool,
    {
        let target = self.success_target();
        let mut successes = 0u64;
        let mut samples = 0u64;
        while successes < target && samples < self.max_samples {
            samples += 1;
            if experiment(rng) {
                successes += 1;
            }
        }
        let truncated = successes < target;
        let estimate = if truncated {
            if samples == 0 {
                0.0
            } else {
                successes as f64 / samples as f64
            }
        } else {
            target as f64 / samples as f64
        };
        StoppingRuleOutcome {
            estimate,
            samples,
            successes,
            truncated,
        }
    }

    /// As [`StoppingRuleEstimator::estimate`], under a [`RunBudget`].
    ///
    /// The budget is polled before each draw (consuming no randomness), so
    /// an unconstrained budget is bit-identical to
    /// [`StoppingRuleEstimator::estimate`].  An interrupted run reports
    /// the empirical mean over the draws consumed, `truncated = true`, and
    /// the interrupting status; reaching the success target reports
    /// [`BudgetStatus::Converged`].
    pub fn estimate_budgeted<R, F>(
        &self,
        rng: &mut R,
        budget: &RunBudget,
        mut experiment: F,
    ) -> (StoppingRuleOutcome, BudgetStatus)
    where
        R: Rng + ?Sized,
        F: FnMut(&mut R) -> bool,
    {
        let target = self.success_target();
        let mut successes = 0u64;
        let mut samples = 0u64;
        let mut interrupt = None;
        while successes < target && samples < self.max_samples {
            if let Some(status) = budget.check(samples) {
                interrupt = Some(status);
                break;
            }
            samples += 1;
            if experiment(rng) {
                successes += 1;
            }
        }
        let truncated = successes < target;
        let estimate = if truncated {
            if samples == 0 {
                0.0
            } else {
                successes as f64 / samples as f64
            }
        } else {
            target as f64 / samples as f64
        };
        let status = if truncated {
            interrupt.unwrap_or(BudgetStatus::BudgetExhausted)
        } else {
            BudgetStatus::Converged
        };
        (
            StoppingRuleOutcome {
                estimate,
                samples,
                successes,
                truncated,
            },
            status,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_estimator_recovers_the_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = estimate_fixed(&mut rng, 40_000, |rng| rng.random_bool(0.3));
        assert!((outcome.estimate - 0.3).abs() < 0.02);
        assert_eq!(outcome.samples, 40_000);
        assert_eq!(
            outcome.successes,
            (outcome.estimate * 40_000.0).round() as u64
        );
    }

    #[test]
    fn fixed_estimator_with_zero_samples_is_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        let outcome = estimate_fixed(&mut rng, 0, |_| true);
        assert_eq!(outcome.estimate, 0.0);
    }

    #[test]
    fn stopping_rule_achieves_relative_error() {
        let estimator = StoppingRuleEstimator::new(0.1, 0.05);
        let mut rng = StdRng::seed_from_u64(3);
        for &p in &[0.5, 0.1, 0.01] {
            let outcome = estimator.estimate(&mut rng, |rng| rng.random_bool(p));
            assert!(!outcome.truncated);
            let relative_error = (outcome.estimate - p).abs() / p;
            assert!(
                relative_error < 0.15,
                "p = {p}: estimate {} (relative error {relative_error})",
                outcome.estimate
            );
        }
    }

    #[test]
    fn stopping_rule_uses_fewer_samples_for_larger_means() {
        let estimator = StoppingRuleEstimator::new(0.2, 0.1);
        let mut rng = StdRng::seed_from_u64(4);
        let big = estimator.estimate(&mut rng, |rng| rng.random_bool(0.5));
        let small = estimator.estimate(&mut rng, |rng| rng.random_bool(0.02));
        assert!(big.samples * 5 < small.samples);
    }

    #[test]
    fn stopping_rule_truncates_on_zero_probability_events() {
        let estimator = StoppingRuleEstimator::new(0.2, 0.1).with_max_samples(5_000);
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = estimator.estimate(&mut rng, |_| false);
        assert!(outcome.truncated);
        assert_eq!(outcome.estimate, 0.0);
        assert_eq!(outcome.samples, 5_000);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn invalid_epsilon_panics() {
        let _ = StoppingRuleEstimator::new(1.5, 0.1);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_estimator_recovers_the_mean() {
        let outcome = estimate_fixed_parallel(99, 80_000, DEFAULT_SHARD_SIZE, || {
            |rng: &mut StdRng| rng.random_bool(0.25)
        });
        assert_eq!(outcome.samples, 80_000);
        assert!((outcome.estimate - 0.25).abs() < 0.01);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_estimator_is_thread_count_independent() {
        let run = || {
            estimate_fixed_parallel(7, 50_001, 1_000, || |rng: &mut StdRng| rng.random_bool(0.4))
        };
        let baseline = run();
        for threads in [1usize, 2, 5, 16] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let outcome = pool.install(run);
            assert_eq!(outcome, baseline, "{threads} threads");
        }
    }

    #[test]
    fn batch_estimator_matches_independent_runs_per_variable() {
        // A shared experiment whose per-variable checks are deterministic
        // functions of one shared draw: batched counts must equal running
        // each variable independently from the same RNG state.
        let thresholds = [0.2f64, 0.5, 0.8];
        let batched = {
            let mut rng = StdRng::seed_from_u64(11);
            estimate_fixed_batch(&mut rng, 10_000, thresholds.len(), |rng, successes| {
                let draw: f64 = rng.random();
                for (s, &t) in successes.iter_mut().zip(&thresholds) {
                    if draw < t {
                        *s += 1;
                    }
                }
            })
        };
        assert_eq!(batched.samples, 10_000);
        for (i, &t) in thresholds.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(11);
            let single = estimate_fixed(&mut rng, 10_000, |rng| {
                let draw: f64 = rng.random();
                draw < t
            });
            assert_eq!(batched.successes[i], single.successes, "variable {i}");
        }
        let estimates = batched.estimates();
        for (e, &t) in estimates.iter().zip(&thresholds) {
            assert!((e - t).abs() < 0.02);
        }
    }

    #[test]
    fn batch_estimator_with_zero_samples_or_queries() {
        let mut rng = StdRng::seed_from_u64(1);
        let zero = estimate_fixed_batch(&mut rng, 0, 3, |_, _| panic!("no draws"));
        assert_eq!(zero.successes, vec![0, 0, 0]);
        assert_eq!(zero.estimates(), vec![0.0, 0.0, 0.0]);
        let empty = estimate_fixed_batch(&mut rng, 5, 0, |_, successes| {
            assert!(successes.is_empty());
        });
        assert!(empty.successes.is_empty());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_batch_matches_independent_parallel_runs() {
        let thresholds = [0.3f64, 0.7];
        let experiment = |rng: &mut StdRng, successes: &mut [u64]| {
            let draw: f64 = rng.random();
            for (s, &t) in successes.iter_mut().zip(&thresholds) {
                if draw < t {
                    *s += 1;
                }
            }
        };
        let batched = estimate_fixed_batch_parallel(42, 30_001, 1_000, 2, || experiment);
        for (i, &t) in thresholds.iter().enumerate() {
            let single = estimate_fixed_parallel(42, 30_001, 1_000, || {
                move |rng: &mut StdRng| {
                    let draw: f64 = rng.random();
                    draw < t
                }
            });
            assert_eq!(batched.successes[i], single.successes, "variable {i}");
        }
        // Thread-count independence.
        for threads in [1usize, 2, 7] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let outcome =
                pool.install(|| estimate_fixed_batch_parallel(42, 30_001, 1_000, 2, || experiment));
            assert_eq!(outcome, batched, "{threads} threads");
        }
    }

    /// A batched experiment whose per-query checks are thresholds over one
    /// shared uniform draw; records retirement notifications.
    struct ThresholdExperiment {
        thresholds: Vec<f64>,
        retired: Vec<usize>,
    }

    impl ThresholdExperiment {
        fn new(thresholds: &[f64]) -> Self {
            ThresholdExperiment {
                thresholds: thresholds.to_vec(),
                retired: Vec::new(),
            }
        }
    }

    impl<R: Rng + ?Sized> StoppingBatchExperiment<R> for ThresholdExperiment {
        fn draw(&mut self, rng: &mut R, hits: &mut [bool]) {
            let draw: f64 = rng.random();
            for (hit, &t) in hits.iter_mut().zip(&self.thresholds) {
                *hit = draw < t;
            }
        }

        fn retire(&mut self, query: usize) {
            self.retired.push(query);
        }
    }

    #[test]
    fn stopping_batch_is_bit_identical_to_independent_stopping_runs() {
        // Per-query targets over one shared stream: each query's outcome
        // must equal a standalone stopping-rule run with the same target
        // from the same RNG state (the draws it observes are identical).
        let thresholds = [0.6f64, 0.25, 0.05];
        let targets: Vec<u64> = vec![40, 25, 10];
        let mut experiment = ThresholdExperiment::new(&thresholds);
        let mut rng = StdRng::seed_from_u64(21);
        let batched = estimate_stopping_batch(&mut rng, &targets, 1_000_000, &mut experiment);
        assert_eq!(batched.outcomes.len(), 3);
        for (q, (&t, &target)) in thresholds.iter().zip(&targets).enumerate() {
            let mut rng = StdRng::seed_from_u64(21);
            let mut samples = 0u64;
            let mut successes = 0u64;
            while successes < target {
                samples += 1;
                let draw: f64 = rng.random();
                if draw < t {
                    successes += 1;
                }
            }
            let outcome = batched.outcomes[q];
            assert!(!outcome.truncated, "query {q}");
            assert_eq!(outcome.samples, samples, "query {q}");
            assert_eq!(outcome.successes, target, "query {q}");
            assert_eq!(
                outcome.estimate,
                target as f64 / samples as f64,
                "query {q}"
            );
        }
        // Rarer queries observe longer stream prefixes; the stream length
        // is the maximum.
        assert!(batched.outcomes[0].samples <= batched.outcomes[1].samples);
        assert!(batched.outcomes[1].samples <= batched.outcomes[2].samples);
        assert_eq!(batched.total_samples, batched.outcomes[2].samples);
        // Every converged query was retired, in convergence order.
        assert_eq!(experiment.retired, vec![0, 1, 2]);
    }

    #[test]
    fn stopping_batch_truncates_impossible_queries_without_stalling_others() {
        let thresholds = [0.5f64, 0.0];
        let targets = vec![30u64, 30];
        let mut experiment = ThresholdExperiment::new(&thresholds);
        let mut rng = StdRng::seed_from_u64(5);
        let batched = estimate_stopping_batch(&mut rng, &targets, 2_000, &mut experiment);
        let easy = batched.outcomes[0];
        assert!(!easy.truncated);
        assert!(easy.samples < 2_000, "the easy query retires early");
        let never = batched.outcomes[1];
        assert!(never.truncated);
        assert_eq!(never.samples, 2_000);
        assert_eq!(never.successes, 0);
        assert_eq!(never.estimate, 0.0);
        assert_eq!(batched.total_samples, 2_000);
        assert_eq!(experiment.retired, vec![0]);
    }

    #[test]
    fn stopping_batch_with_empty_bank_draws_nothing() {
        let mut experiment = ThresholdExperiment::new(&[]);
        let mut rng = StdRng::seed_from_u64(1);
        let batched = estimate_stopping_batch(&mut rng, &[], 1_000, &mut experiment);
        assert!(batched.outcomes.is_empty());
        assert_eq!(batched.total_samples, 0);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn stopping_batch_rounds_achieves_relative_error_and_retires() {
        let thresholds = [0.5f64, 0.02];
        let estimator = StoppingRuleEstimator::new(0.1, 0.05);
        let targets = vec![estimator.success_target(); 2];
        let run = || {
            estimate_stopping_batch_rounds(33, &targets, 10_000_000, 2_048, 512, |_live| {
                move |rng: &mut StdRng, hits: &mut [bool]| {
                    let draw: f64 = rng.random();
                    for (hit, &t) in hits.iter_mut().zip(&thresholds) {
                        *hit = draw < t;
                    }
                }
            })
        };
        let batched = run();
        for (q, &t) in thresholds.iter().enumerate() {
            let outcome = batched.outcomes[q];
            assert!(!outcome.truncated, "query {q}");
            assert!(outcome.successes >= targets[q], "query {q}");
            let relative_error = (outcome.estimate - t).abs() / t;
            assert!(
                relative_error < 0.15,
                "query {q}: estimate {} (relative error {relative_error})",
                outcome.estimate
            );
        }
        // The common query retires rounds earlier than the rare one.
        assert!(batched.outcomes[0].samples < batched.outcomes[1].samples);
        assert_eq!(batched.total_samples, batched.outcomes[1].samples);
        // Bit-identical across thread counts.
        for threads in [1usize, 2, 7] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let outcome = pool.install(run);
            assert_eq!(outcome, batched, "{threads} threads");
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn stopping_batch_rounds_shrink_with_the_live_set() {
        use std::sync::Mutex;

        // One common query retiring in round one, one rare query riding a
        // long tail.  With shard_size == round_samples / 2, a full round
        // runs as two shards and a half-sized tail round as one, so the
        // live-set sizes recorded per `make_experiment` call reveal the
        // schedule.
        let thresholds = [0.9f64, 0.02];
        let target = StoppingRuleEstimator::new(0.3, 0.1).success_target();
        let targets = vec![target; 2];
        let live_sizes: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let batched = estimate_stopping_batch_rounds(9, &targets, 1_000_000, 1_000, 500, |live| {
            live_sizes.lock().unwrap().push(live.len());
            move |rng: &mut StdRng, hits: &mut [bool]| {
                let draw: f64 = rng.random();
                for (hit, &t) in hits.iter_mut().zip(&thresholds) {
                    *hit = draw < t;
                }
            }
        });
        let easy = batched.outcomes[0];
        assert!(!easy.truncated);
        assert_eq!(easy.samples, 1_000, "the common query retires in round one");
        let rare = batched.outcomes[1];
        assert!(!rare.truncated);
        assert!(rare.samples > 1_000);
        // After the first retirement rounds shrink to ⌈1000 · 1/2⌉ = 500.
        assert_eq!(
            (rare.samples - 1_000) % 500,
            0,
            "tail rounds are half-sized: {} samples",
            rare.samples
        );
        let sizes = live_sizes.into_inner().unwrap();
        assert_eq!(&sizes[..2], &[2, 2], "the full first round runs two shards");
        assert!(sizes[2..].iter().all(|&s| s == 1), "{sizes:?}");
        assert_eq!(
            sizes.len() as u64,
            2 + (rare.samples - 1_000) / 500,
            "one shard per tail round: {sizes:?}"
        );
        // The adaptive schedule stays bit-identical across thread counts.
        let rerun = || {
            estimate_stopping_batch_rounds(9, &targets, 1_000_000, 1_000, 500, |_live| {
                move |rng: &mut StdRng, hits: &mut [bool]| {
                    let draw: f64 = rng.random();
                    for (hit, &t) in hits.iter_mut().zip(&thresholds) {
                        *hit = draw < t;
                    }
                }
            })
        };
        for threads in [1usize, 3] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            assert_eq!(pool.install(rerun), batched, "{threads} threads");
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn stopping_batch_rounds_truncates_at_the_cut_off() {
        let targets = vec![10u64];
        let batched = estimate_stopping_batch_rounds(1, &targets, 1_000, 256, 64, |_live| {
            |_rng: &mut StdRng, hits: &mut [bool]| hits.fill(false)
        });
        assert!(batched.outcomes[0].truncated);
        assert_eq!(batched.outcomes[0].samples, 1_000);
        assert_eq!(batched.total_samples, 1_000);
    }

    #[test]
    fn unbudgeted_and_unlimited_budget_fixed_runs_are_bit_identical() {
        let plain = {
            let mut rng = StdRng::seed_from_u64(77);
            estimate_fixed(&mut rng, 5_000, |rng| rng.random_bool(0.3))
        };
        let (budgeted, status) = {
            let mut rng = StdRng::seed_from_u64(77);
            estimate_fixed_budgeted(&mut rng, 5_000, &RunBudget::unlimited(), |rng| {
                rng.random_bool(0.3)
            })
        };
        assert_eq!(budgeted, plain);
        assert_eq!(status, BudgetStatus::Converged);
    }

    #[test]
    fn budgeted_fixed_run_stops_at_the_draw_cap() {
        let mut rng = StdRng::seed_from_u64(77);
        let budget = RunBudget::unlimited().with_max_draws(100);
        let (outcome, status) =
            estimate_fixed_budgeted(&mut rng, 5_000, &budget, |rng| rng.random_bool(0.3));
        assert_eq!(status, BudgetStatus::BudgetExhausted);
        assert_eq!(outcome.samples, 100);
        // Exactly 100 draws were consumed: the next draw continues the
        // uninterrupted stream.
        let continued = estimate_fixed(&mut rng, 4_900, |rng| rng.random_bool(0.3));
        let full = {
            let mut rng = StdRng::seed_from_u64(77);
            estimate_fixed(&mut rng, 5_000, |rng| rng.random_bool(0.3))
        };
        assert_eq!(outcome.successes + continued.successes, full.successes);
    }

    #[test]
    fn budgeted_batch_run_cancels_mid_stream() {
        let thresholds = [0.2f64, 0.8];
        let token = crate::budget::CancelToken::tripped_at_draw(42);
        let budget = RunBudget::unlimited().with_cancel_token(token);
        let mut rng = StdRng::seed_from_u64(3);
        let (outcome, status) =
            estimate_fixed_batch_budgeted(&mut rng, 10_000, 2, &budget, |rng, successes| {
                let draw: f64 = rng.random();
                for (s, &t) in successes.iter_mut().zip(&thresholds) {
                    if draw < t {
                        *s += 1;
                    }
                }
            });
        assert_eq!(status, BudgetStatus::Cancelled);
        assert_eq!(outcome.samples, 42);
    }

    #[test]
    fn budgeted_stopping_batch_with_unlimited_budget_matches_plain() {
        let thresholds = [0.6f64, 0.25, 0.05];
        let targets: Vec<u64> = vec![40, 25, 10];
        let plain = {
            let mut experiment = ThresholdExperiment::new(&thresholds);
            let mut rng = StdRng::seed_from_u64(21);
            estimate_stopping_batch(&mut rng, &targets, 1_000_000, &mut experiment)
        };
        let budgeted = {
            let mut experiment = ThresholdExperiment::new(&thresholds);
            let mut rng = StdRng::seed_from_u64(21);
            estimate_stopping_batch_budgeted(
                &mut rng,
                &targets,
                1_000_000,
                &RunBudget::unlimited(),
                &mut experiment,
                None,
            )
        };
        assert_eq!(budgeted.outcomes, plain.outcomes);
        assert_eq!(budgeted.total_samples, plain.total_samples);
        assert!(budgeted.statuses.iter().all(|s| s.is_converged()));
    }

    #[test]
    fn cancelled_stopping_batch_resumes_bit_for_bit() {
        let thresholds = [0.6f64, 0.25, 0.05];
        let targets: Vec<u64> = vec![40, 25, 10];
        let uninterrupted = {
            let mut experiment = ThresholdExperiment::new(&thresholds);
            let mut rng = StdRng::seed_from_u64(21);
            estimate_stopping_batch(&mut rng, &targets, 1_000_000, &mut experiment)
        };
        // Cancel mid-stream at several truncation points, then resume with
        // the same RNG: the concatenated run must equal the uninterrupted
        // one bit-for-bit.
        for trip_at in [1u64, 17, 60, 150] {
            let mut experiment = ThresholdExperiment::new(&thresholds);
            let mut rng = StdRng::seed_from_u64(21);
            let budget = RunBudget::unlimited()
                .with_cancel_token(crate::budget::CancelToken::tripped_at_draw(trip_at));
            let partial = estimate_stopping_batch_budgeted(
                &mut rng,
                &targets,
                1_000_000,
                &budget,
                &mut experiment,
                None,
            );
            assert_eq!(partial.total_samples, trip_at);
            for (q, status) in partial.statuses.iter().enumerate() {
                if !status.is_converged() {
                    assert_eq!(*status, BudgetStatus::Cancelled, "query {q} at {trip_at}");
                    assert!(partial.outcomes[q].truncated);
                }
            }
            let resumed = estimate_stopping_batch_budgeted(
                &mut rng,
                &targets,
                1_000_000,
                &RunBudget::unlimited(),
                &mut experiment,
                Some(&partial),
            );
            assert_eq!(
                resumed.outcomes, uninterrupted.outcomes,
                "trip at {trip_at}"
            );
            assert_eq!(resumed.total_samples, uninterrupted.total_samples);
            assert!(resumed.statuses.iter().all(|s| s.is_converged()));
        }
    }

    #[test]
    fn stopping_rule_budgeted_matches_plain_and_reports_cancellation() {
        let estimator = StoppingRuleEstimator::new(0.2, 0.1);
        let plain = {
            let mut rng = StdRng::seed_from_u64(13);
            estimator.estimate(&mut rng, |rng| rng.random_bool(0.4))
        };
        let (budgeted, status) = {
            let mut rng = StdRng::seed_from_u64(13);
            estimator.estimate_budgeted(&mut rng, &RunBudget::unlimited(), |rng| {
                rng.random_bool(0.4)
            })
        };
        assert_eq!(budgeted, plain);
        assert_eq!(status, BudgetStatus::Converged);
        let mut rng = StdRng::seed_from_u64(13);
        let budget = RunBudget::unlimited()
            .with_cancel_token(crate::budget::CancelToken::tripped_at_draw(7));
        let (partial, status) =
            estimator.estimate_budgeted(&mut rng, &budget, |rng| rng.random_bool(0.4));
        assert_eq!(status, BudgetStatus::Cancelled);
        assert!(partial.truncated);
        assert_eq!(partial.samples, 7);
    }

    #[test]
    fn try_new_rejects_out_of_range_parameters() {
        assert!(StoppingRuleEstimator::try_new(0.0, 0.1).is_err());
        assert!(StoppingRuleEstimator::try_new(0.1, 1.0).is_err());
        assert!(StoppingRuleEstimator::try_new(f64::NAN, 0.1).is_err());
        assert!(StoppingRuleEstimator::try_new(0.1, 0.1).is_ok());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn budgeted_rounds_with_unlimited_budget_match_plain_rounds() {
        let thresholds = [0.5f64, 0.02];
        let targets = vec![StoppingRuleEstimator::new(0.1, 0.05).success_target(); 2];
        let experiment = |_live: &[usize]| {
            move |rng: &mut StdRng, hits: &mut [bool]| {
                let draw: f64 = rng.random();
                for (hit, &t) in hits.iter_mut().zip(&thresholds) {
                    *hit = draw < t;
                }
            }
        };
        let plain =
            estimate_stopping_batch_rounds(33, &targets, 10_000_000, 2_048, 512, experiment);
        let budgeted = estimate_stopping_batch_rounds_budgeted(
            33,
            &targets,
            10_000_000,
            2_048,
            512,
            &RunBudget::unlimited(),
            experiment,
        );
        assert_eq!(budgeted.outcomes, plain.outcomes);
        assert_eq!(budgeted.total_samples, plain.total_samples);
        assert!(budgeted.statuses.iter().all(|s| s.is_converged()));
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn budgeted_rounds_cancel_at_round_boundaries() {
        let targets = vec![1_000u64];
        let token = crate::budget::CancelToken::new();
        token.cancel();
        let budget = RunBudget::unlimited().with_cancel_token(token);
        let cancelled = estimate_stopping_batch_rounds_budgeted(
            1,
            &targets,
            1_000_000,
            256,
            64,
            &budget,
            |_live| |rng: &mut StdRng, hits: &mut [bool]| hits.fill(rng.random_bool(0.5)),
        );
        // A pre-tripped token fires at the first boundary: nothing drawn.
        assert_eq!(cancelled.total_samples, 0);
        assert_eq!(cancelled.statuses, vec![BudgetStatus::Cancelled]);
        assert!(cancelled.outcomes[0].truncated);
        let capped = estimate_stopping_batch_rounds_budgeted(
            1,
            &targets,
            1_000_000,
            256,
            64,
            &RunBudget::unlimited().with_max_draws(300),
            |_live| |rng: &mut StdRng, hits: &mut [bool]| hits.fill(rng.random_bool(0.001)),
        );
        // The cap is observed at the next boundary after 300 draws.
        assert_eq!(capped.statuses, vec![BudgetStatus::BudgetExhausted]);
        assert!(capped.total_samples >= 300);
        assert!(capped.outcomes[0].truncated);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_estimator_handles_edge_sample_counts() {
        let zero = estimate_fixed_parallel(1, 0, 64, || |_: &mut StdRng| true);
        assert_eq!(zero.estimate, 0.0);
        assert_eq!(zero.samples, 0);
        let one = estimate_fixed_parallel(1, 1, 64, || |_: &mut StdRng| true);
        assert_eq!(one.successes, 1);
    }
}
