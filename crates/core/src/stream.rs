//! Sliding-window continuous CQA: windowed estimation with
//! converged-draw reuse.
//!
//! The FPRAS of the paper answers a bank of queries over one *static*
//! database.  [`WindowedEstimator`] runs the same machinery over a fact
//! *stream*: it owns a [`Database`] together with its maintained
//! [`ConflictIndex`] and compiled [`LineageBank`], accepts **ticks** of
//! `(inserts, retracts)`, slides facts out of a count- or tick-based
//! [`WindowSpec`] as [`Database::retract`]-style tombstones, and brings
//! every derived structure up to date by replaying the database changelog
//! (the PR 8 delta paths) instead of rebuilding.
//!
//! **Draw reuse.**  Re-estimating the whole bank from draw zero after
//! every tick would waste the dominant cost of the pipeline on queries
//! the tick did not touch.  Each bank entry carries a fingerprint
//! ([`LineageBank::entry_fingerprint`]: a hash of its sorted witness
//! id-lists, each witness fact paired with the digest of its conflict
//! component); after a tick, entries whose fingerprint is unchanged keep
//! their converged [`QueryOutcome`] **verbatim** (bit-identical, zero
//! draws), and only changed entries re-enter the shared stopping loop
//! through the enrollment path
//! ([`BankLiveSet::enroll`](ucqa_query::BankLiveSet::enroll) — the dual
//! of the retirement the loop performs as queries converge — driven by
//! [`BatchEstimator::estimate_stopping_batch_resume_with_bank`]).
//!
//! A reused outcome is the estimate the entry converged to when it last
//! changed, carried forward across ticks that provably did not move its
//! answer probability.  The fingerprint covers both the witness sets
//! *and* the composition of each witness fact's conflict block: a fact
//! that joins a witness's block without matching any query atom leaves
//! the lineage intact but changes the repair distribution, so it must
//! (and does) re-enroll the entry.  Under uniform repairs and uniform
//! operations the per-component repair marginals are independent of the
//! rest of the database, so the per-entry fingerprint is a sound reuse
//! gate on its own; under uniform **sequences** the marginals also
//! depend on how sequences of *other* components interleave, so any tick
//! that changes the conflict-component structure anywhere
//! ([`ConflictStructure::fingerprint`]) re-enrolls the whole bank.
//! Consistent churn — facts that conflict with nothing sliding in and
//! out — never disturbs reuse under any semantics.
//!
//! Within one tick the estimate stream is tick-local and interruptible:
//! a [`RunBudget`] can cut it, and calling
//! [`WindowedEstimator::estimate`] again with the same RNG resumes it
//! bit-for-bit (the same resume guarantee as the static batched paths).
//!
//! The windowed state is property-tested indistinguishable from a
//! from-scratch rebuild of the live window after every tick (conflict
//! index, bank witness sets, and same-seed estimates), and the
//! enrollment mechanism doubles as the concurrent-admission groundwork
//! for a long-running estimation service: admitting a new query to a
//! draining bank is the same operation as re-admitting a changed one.

use rand::Rng;

use ucqa_db::{
    ConflictIndex, ConflictStructure, Database, Fact, FactId, FdSet, StatsSnapshot, Value,
};
use ucqa_query::{BankQueryRef, LineageBank, QueryEvaluator};
use ucqa_repair::{GeneratorSpec, UniformSemantics};

use crate::budget::{AchievedBound, BudgetStatus, EstimateOutcome, QueryOutcome, RunBudget};
use crate::fpras::{ApproximationParams, BatchEstimator, BatchQuery};
use crate::CoreError;

/// How facts expire from the sliding window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpec {
    /// No expiry: facts stay live until explicitly retracted.
    Unbounded,
    /// A count-bounded window: after each tick at most this many facts
    /// stay live, oldest (lowest live fact id — insertion order) expiring
    /// first.
    Count(usize),
    /// A tick-bounded window: a fact arriving at tick `t` stays live
    /// through tick `t + lifetime - 1` and expires at tick
    /// `t + lifetime`.  Facts present at construction arrive at tick 0.
    Ticks(usize),
}

/// What one [`WindowedEstimator::tick`] did to the window and its
/// derived state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickReport {
    /// The tick number (the first call to `tick` is tick 1).
    pub tick: u64,
    /// Facts inserted this tick.
    pub inserted: usize,
    /// Explicit retractions that hit a live fact (retraction is
    /// idempotent; misses are not counted).
    pub retracted: usize,
    /// Fact ids the window slid out, oldest first.
    pub expired: Vec<FactId>,
    /// Changelog entries the index/bank refreshes replayed.
    pub replayed: usize,
    /// Per bank entry: `true` iff its fingerprint — witness sets plus
    /// the composition of each witness fact's conflict component (see
    /// [`LineageBank::refresh_with_delta`]) — changed, i.e. its answer
    /// probability may have moved and its converged outcome cannot be
    /// reused.  Under uniform-sequences generators any change to the
    /// conflict-component structure flags every entry (the marginals do
    /// not factorize across components).
    pub changed: Vec<bool>,
    /// Per bank entry: `true` iff the next [`WindowedEstimator::estimate`]
    /// will re-enter it into the stopping loop (changed this tick, still
    /// enrolled from an earlier tick, or never fully estimated).
    pub enrolled: Vec<bool>,
}

/// The result of one windowed estimation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct TickOutcome {
    /// Per-query outcomes: reused entries verbatim from the last
    /// converged pass, enrolled entries freshly (re-)estimated.
    pub outcome: EstimateOutcome,
    /// Per bank entry: `true` iff its converged outcome was carried over
    /// verbatim without consuming a single draw.
    pub reused: Vec<bool>,
    /// Draws consumed by **this tick's** stream (`outcome.total_draws`
    /// is tick-local; an all-reused pass reports zero).
    pub tick_draws: u64,
}

/// A continuous-query estimator over a sliding window of a fact stream.
///
/// See the [module documentation](self) for the design.  The lifecycle
/// is `new → (tick → estimate)*`; [`WindowedEstimator::estimate`] may be
/// called repeatedly between ticks (an interrupted pass resumes, a
/// converged pass returns verbatim at zero draws).
///
/// `params` should be held fixed across the stream: reused outcomes
/// carry the `(ε, δ/k)` they converged under, so a call with different
/// params drops the reuse baseline and re-estimates the whole bank.
pub struct WindowedEstimator {
    db: Database,
    sigma: FdSet,
    spec: GeneratorSpec,
    window: WindowSpec,
    conflict: ConflictIndex,
    queries: Vec<(QueryEvaluator, Vec<Value>)>,
    bank: LineageBank,
    /// Per-entry fingerprints current with `bank` and `conflict` (see
    /// [`LineageBank::entry_fingerprint`]) — the `before` of the next
    /// tick's delta.  Cached because the conflict structure they were
    /// computed under no longer exists once a tick has mutated the
    /// database.
    fingerprints: Vec<Option<u64>>,
    /// The [`ConflictStructure::fingerprint`] current with `conflict` —
    /// the global freshness gate for uniform-sequences generators.
    structure: u64,
    /// The last fully-converged estimation pass over the current (or an
    /// earlier, fingerprint-equivalent) window state.
    prior: Option<EstimateOutcome>,
    /// An interrupted tick-local pass, resumable until the next mutating
    /// tick.
    pending: Option<EstimateOutcome>,
    /// The params `prior`/`pending` were produced under; estimating with
    /// different params restarts the whole bank.
    baseline_params: Option<ApproximationParams>,
    /// Sticky per-entry re-admission flags: set when a tick changes an
    /// entry's fingerprint (or at construction), cleared only when a
    /// pass converges for every entry.
    enrolled: Vec<bool>,
    tick: u64,
    /// Arrival ticks of live facts, in insertion order; only maintained
    /// for [`WindowSpec::Ticks`].
    arrivals: std::collections::VecDeque<(u64, FactId)>,
    /// The [`RelationIndex`](ucqa_db::RelationIndex) statistics the
    /// current query plans were costed against.  Steady-state ticks keep
    /// the compiled plans (and therefore the bit-identical reuse path);
    /// a tick whose maintained stats drift by more than
    /// [`REPLAN_DRIFT_FACTOR`] against this snapshot re-costs every
    /// evaluator before the next enumeration.
    planning_stats: StatsSnapshot,
    /// How many times the stream has re-costed its plans (see
    /// [`WindowedEstimator::replans`]).
    replans: u64,
}

/// A maintained statistic (relation cardinality or longest posting run)
/// must move by more than this factor against the snapshot the current
/// plans were costed under before a tick triggers a replan.  2× is
/// deliberately coarse: the greedy cost order only changes when relative
/// selectivities shift materially, and replanning on every tick would
/// re-cost plans whose order cannot have moved.
pub const REPLAN_DRIFT_FACTOR: f64 = 2.0;

impl WindowedEstimator {
    /// Creates a windowed estimator over an initial database state,
    /// taking ownership of the window's single source of truth.
    ///
    /// Validates the generator/constraint combination up front (the same
    /// table as [`BatchEstimator::new`]), builds the conflict index,
    /// compiles the bank, and applies the window to the initial facts
    /// (a count window narrower than the initial database expires the
    /// oldest facts immediately; under a tick window the initial facts
    /// arrive at tick 0).
    pub fn new(
        db: Database,
        sigma: FdSet,
        spec: GeneratorSpec,
        window: WindowSpec,
        queries: Vec<(QueryEvaluator, Vec<Value>)>,
    ) -> Result<Self, CoreError> {
        if window == WindowSpec::Ticks(0) {
            return Err(CoreError::InvalidParameters {
                message: "a tick window needs a lifetime of at least one tick \
                          (WindowSpec::Ticks(0) would expire every fact on arrival)"
                    .to_string(),
            });
        }
        let mut db = db;
        let arrivals: std::collections::VecDeque<(u64, FactId)> =
            if matches!(window, WindowSpec::Ticks(_)) {
                db.fact_ids().map(|id| (0, id)).collect()
            } else {
                Default::default()
            };
        // Apply the window to the initial state.  A tick window never
        // expires anything at tick 0 (lifetime ≥ 1).
        if let WindowSpec::Count(keep) = window {
            db.expire_oldest(keep)?;
        }
        let conflict = ConflictIndex::build(&db, &sigma);
        let refs = Self::query_refs(&queries);
        let bank = LineageBank::compile(&db, &refs)?;
        drop(refs);
        let structure = conflict.structure();
        let fingerprints = bank.fingerprints(&structure);
        let enrolled = vec![true; queries.len()];
        let planning_stats = db.relation_index().stats_snapshot();
        let this = WindowedEstimator {
            db,
            sigma,
            spec,
            window,
            conflict,
            queries,
            bank,
            fingerprints,
            structure: structure.fingerprint(),
            prior: None,
            pending: None,
            baseline_params: None,
            enrolled,
            tick: 0,
            arrivals,
            planning_stats,
            replans: 0,
        };
        // Validate the generator/constraint combination now rather than
        // at the first estimate.
        this.estimator()?;
        Ok(this)
    }

    fn query_refs(queries: &[(QueryEvaluator, Vec<Value>)]) -> Vec<BankQueryRef<'_>> {
        queries.iter().map(|(e, c)| (e, c.as_slice())).collect()
    }

    /// The estimator of the current window state.  The uniform-operations
    /// walk reuses the maintained conflict index (bit-identical to a
    /// fresh build, per the PR 8 property tests); the repair and sequence
    /// samplers derive their own block structure from the database.
    fn estimator(&self) -> Result<BatchEstimator<'_>, CoreError> {
        if self.spec.semantics == UniformSemantics::Operations {
            BatchEstimator::with_conflict_index(
                &self.db,
                &self.sigma,
                self.spec,
                self.conflict.clone(),
            )
        } else {
            BatchEstimator::new(&self.db, &self.sigma, self.spec)
        }
    }

    fn expire(&mut self) -> Result<Vec<FactId>, CoreError> {
        match self.window {
            WindowSpec::Unbounded => Ok(Vec::new()),
            WindowSpec::Count(keep) => Ok(self.db.expire_oldest(keep)?),
            WindowSpec::Ticks(lifetime) => {
                let mut expired = Vec::new();
                while let Some(&(arrived, id)) = self.arrivals.front() {
                    if self.tick < arrived + lifetime as u64 {
                        break;
                    }
                    self.arrivals.pop_front();
                    // An explicit retraction may have beaten the window
                    // to this fact.
                    if self.db.is_live(id) {
                        self.db.delete(id)?;
                        expired.push(id);
                    }
                }
                Ok(expired)
            }
        }
    }

    /// Advances the stream by one tick: applies the explicit
    /// retractions, inserts the new facts, slides the window, and
    /// replays the resulting changelog suffix into the conflict index
    /// and the bank.  Entries whose fingerprint changed are marked for
    /// re-admission; an interrupted estimation pass is dropped if
    /// anything at all changed (its stream no longer matches the window)
    /// and kept resumable across a no-op tick.
    ///
    /// A tick that errors part-way (say, a schema-mismatched insert
    /// after some retractions applied) leaves the database ahead of the
    /// derived state; the next [`WindowedEstimator::tick`] or
    /// [`WindowedEstimator::estimate`] replays the gap before doing
    /// anything else, so a failed tick is self-healing rather than
    /// poisoning the stream.
    pub fn tick(&mut self, inserts: Vec<Fact>, retracts: &[Fact]) -> Result<TickReport, CoreError> {
        self.tick += 1;
        let mut retracted = 0usize;
        for fact in retracts {
            if self.db.retract(fact)?.is_some() {
                retracted += 1;
            }
        }
        let inserted_ids = self.db.extend(inserts)?;
        if matches!(self.window, WindowSpec::Ticks(_)) {
            let tick = self.tick;
            self.arrivals
                .extend(inserted_ids.iter().map(|&id| (tick, id)));
        }
        let expired = self.expire()?;
        let (replayed, changed) = self.refresh_derived()?;
        Ok(TickReport {
            tick: self.tick,
            inserted: inserted_ids.len(),
            retracted,
            expired,
            replayed,
            changed,
            enrolled: self.enrolled.clone(),
        })
    }

    /// Brings the conflict index, the bank, the cached fingerprints, and
    /// the per-entry enrollment flags up to date with the database,
    /// replaying the changelog since the last successful refresh.
    /// Returns `(replayed, changed)` — a no-op when everything is
    /// already current.
    ///
    /// Called by [`WindowedEstimator::tick`] after the tick's mutations
    /// and defensively at the top of [`WindowedEstimator::estimate`]: if
    /// an earlier tick failed between mutating the database and
    /// refreshing the derived state, the estimate call heals the gap
    /// instead of running the batch paths against a stale bank (which
    /// panic by contract).
    fn refresh_derived(&mut self) -> Result<(usize, Vec<bool>), CoreError> {
        if self.conflict.version() == self.db.version() && self.bank.version() == self.db.version()
        {
            return Ok((0, vec![false; self.queries.len()]));
        }
        let conflict_replayed = self.conflict.refresh(&self.db, &self.sigma);
        let structure: ConflictStructure = self.conflict.structure();
        let refs = Self::query_refs(&self.queries);
        let delta =
            self.bank
                .refresh_with_delta(&self.db, &refs, &self.fingerprints, &structure)?;
        drop(refs);
        let mut changed = delta.changed;
        // Uniform-sequences marginals depend on how the repairing
        // sequences of *other* components interleave with a witness's
        // own: a changed component anywhere invalidates every entry, not
        // just those whose witness facts touch it.  (Uniform repairs and
        // uniform operations factorize per component, so their per-entry
        // fingerprints already tell the whole story.)
        if self.spec.semantics == UniformSemantics::Sequences
            && structure.fingerprint() != self.structure
        {
            changed.iter_mut().for_each(|c| *c = true);
        }
        self.fingerprints = delta.fingerprints;
        self.structure = structure.fingerprint();
        for (flag, &c) in self.enrolled.iter_mut().zip(&changed) {
            *flag |= c;
        }
        // After a partial failure the two replays can differ (one
        // structure healed earlier than the other); report the wider
        // window.
        let replayed = conflict_replayed.max(delta.replayed);
        if replayed > 0 {
            // A mutated window invalidates a mid-stream pass: its draws
            // came from the previous window's repair distribution.
            self.pending = None;
            // Replan only when the maintained statistics have drifted
            // materially since the plans were last costed.  Witness sets
            // are plan-independent (the planner only reorders the join
            // enumeration), so re-costing evaluators never perturbs the
            // fingerprints above — steady-state ticks and replanning
            // ticks alike keep the bit-identical reuse path.
            let current = self.db.relation_index().stats_snapshot();
            if self.planning_stats.drifted(&current, REPLAN_DRIFT_FACTOR) {
                for (evaluator, _) in &mut self.queries {
                    *evaluator = QueryEvaluator::with_stats(evaluator.query().clone(), &self.db)?;
                }
                self.planning_stats = current;
                self.replans += 1;
            }
        }
        Ok((replayed, changed))
    }

    /// Estimates the bank over the current window with draw reuse.
    ///
    /// Entries not enrolled keep their converged outcome from the last
    /// converged pass **verbatim** — bit-identical [`QueryOutcome`]s,
    /// zero draws — while enrolled entries run the shared DKLR stopping
    /// loop from draw zero of a tick-local stream (requires
    /// [`OptimalStopping`](crate::fpras::EstimatorMode::OptimalStopping)).
    /// When every entry ends [`Converged`](BudgetStatus::Converged) the
    /// pass becomes the new reuse baseline; a pass interrupted by
    /// `budget` is stored instead and the next call resumes it
    /// bit-for-bit (same RNG, absolute tick-local draw counts) as long
    /// as no mutating tick intervened.
    ///
    /// Reused outcomes carry the `(ε, δ/k)` they converged under, so
    /// `params` is part of what "converged" means: calling with params
    /// different from the baseline's drops the prior and any pending
    /// pass and re-enrolls the whole bank rather than silently mixing
    /// stopping targets.
    pub fn estimate<R: Rng + ?Sized>(
        &mut self,
        params: ApproximationParams,
        budget: &RunBudget,
        rng: &mut R,
    ) -> Result<TickOutcome, CoreError> {
        // Heal a tick that failed between mutating the database and
        // refreshing the derived state (newly changed entries enroll
        // here exactly as they would have in the failed tick).
        self.refresh_derived()?;
        if self.baseline_params.is_some_and(|p| p != params) {
            self.prior = None;
            self.pending = None;
            self.enrolled = vec![true; self.queries.len()];
        }
        self.baseline_params = Some(params);
        let per_delta = params.delta / self.queries.len().max(1) as f64;
        let source = match &self.pending {
            Some(pending) => pending.clone(),
            None => EstimateOutcome {
                queries: self
                    .enrolled
                    .iter()
                    .enumerate()
                    .map(|(q, &enrolled)| match (&self.prior, enrolled) {
                        (Some(prior), false) => prior.queries[q],
                        _ => QueryOutcome {
                            estimate: 0.0,
                            samples: 0,
                            successes: 0,
                            status: BudgetStatus::BudgetExhausted,
                            achieved: AchievedBound::at(0, 0, per_delta),
                        },
                    })
                    .collect(),
                total_draws: 0,
            },
        };
        let reused: Vec<bool> = self.enrolled.iter().map(|&e| !e).collect();
        let batch: Vec<BatchQuery<'_>> = self
            .queries
            .iter()
            .map(|(e, c)| BatchQuery::new(e, c.as_slice()))
            .collect();
        let estimator = self.estimator()?;
        let outcome = estimator.estimate_stopping_batch_resume_with_bank(
            &self.bank, &batch, params, budget, &source, rng,
        )?;
        let tick_draws = outcome.total_draws;
        if outcome.converged() {
            self.prior = Some(outcome.clone());
            self.pending = None;
            self.enrolled = vec![false; self.queries.len()];
        } else {
            self.pending = Some(outcome.clone());
        }
        Ok(TickOutcome {
            outcome,
            reused,
            tick_draws,
        })
    }

    /// The current window contents — the single source of truth the
    /// derived indexes and the bank are maintained against.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The constraints the window is repaired against.
    pub fn sigma(&self) -> &FdSet {
        &self.sigma
    }

    /// The generator this estimator approximates.
    pub fn spec(&self) -> GeneratorSpec {
        self.spec
    }

    /// The window policy.
    pub fn window(&self) -> WindowSpec {
        self.window
    }

    /// The maintained conflict index (current with [`WindowedEstimator::db`]).
    pub fn conflict_index(&self) -> &ConflictIndex {
        &self.conflict
    }

    /// The maintained lineage bank (current with [`WindowedEstimator::db`]).
    pub fn bank(&self) -> &LineageBank {
        &self.bank
    }

    /// How many ticks the stream has advanced.
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// How many times the stream has re-costed its query plans.
    ///
    /// Plans are costed against a [`StatsSnapshot`] of the relation
    /// index; a tick replans only when a maintained statistic (relation
    /// cardinality or longest posting run) moves by more than
    /// [`REPLAN_DRIFT_FACTOR`] against the snapshot the current plans
    /// were costed under.  Steady-state ticks leave the compiled plans
    /// untouched, so this counter staying flat certifies the
    /// bit-identical reuse path was never re-entered for planning
    /// reasons.
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// The last fully-converged estimation pass, if any — the baseline
    /// unchanged entries are reused from.
    pub fn last_converged(&self) -> Option<&EstimateOutcome> {
        self.prior.as_ref()
    }

    /// `true` iff an interrupted tick-local pass is waiting to be
    /// resumed by the next [`WindowedEstimator::estimate`].
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::CancelToken;
    use crate::fpras::EstimatorMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ucqa_db::{FunctionalDependency, Schema, Value};
    use ucqa_query::parser::parse_query;

    fn blocks() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["K", "V"]).unwrap();
        let mut db = Database::with_schema(schema);
        for (k, v) in [(1, 1), (1, 2), (2, 1), (2, 2), (3, 7)] {
            db.insert_values("R", [Value::int(k), Value::int(v)])
                .unwrap();
        }
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["K"], &["V"]).unwrap());
        (db, sigma)
    }

    fn fact(db: &Database, k: i64, v: i64) -> Fact {
        Fact::new(
            db.schema().relation_id("R").unwrap(),
            vec![Value::int(k), Value::int(v)],
        )
    }

    fn queries(db: &Database, texts: &[&str]) -> Vec<(QueryEvaluator, Vec<Value>)> {
        texts
            .iter()
            .map(|t| {
                (
                    QueryEvaluator::new(parse_query(db.schema(), t).unwrap()),
                    Vec::new(),
                )
            })
            .collect()
    }

    fn params() -> ApproximationParams {
        ApproximationParams::new(0.3, 0.2)
            .unwrap()
            .with_mode(EstimatorMode::OptimalStopping {
                max_samples: 200_000,
            })
    }

    fn windowed(window: WindowSpec) -> WindowedEstimator {
        let (db, sigma) = blocks();
        let qs = queries(&db, &["Ans() :- R(1, 1)", "Ans() :- R(3, x)"]);
        WindowedEstimator::new(
            db,
            sigma,
            GeneratorSpec::uniform_operations().with_singleton_only(),
            window,
            qs,
        )
        .unwrap()
    }

    #[test]
    fn count_window_expires_the_oldest_facts() {
        let mut w = windowed(WindowSpec::Count(4));
        // The initial database holds 5 facts: construction already
        // narrowed it to the newest 4.
        assert_eq!(w.db().live_count(), 4);
        let insert = fact(w.db(), 4, 4);
        let report = w.tick(vec![insert], &[]).unwrap();
        assert_eq!(report.inserted, 1);
        assert_eq!(report.expired.len(), 1, "one fact slid out");
        assert_eq!(w.db().live_count(), 4);
        // Derived state is current with the mutated window.
        assert_eq!(w.conflict_index().version(), w.db().version());
        assert_eq!(w.bank().version(), w.db().version());
    }

    #[test]
    fn tick_window_expires_by_arrival_tick() {
        let mut w = windowed(WindowSpec::Ticks(2));
        assert_eq!(w.db().live_count(), 5);
        let insert = fact(w.db(), 4, 4);
        let report = w.tick(vec![insert], &[]).unwrap();
        assert!(report.expired.is_empty(), "tick 1 < lifetime 2");
        // Tick 2: the five construction-time facts (arrival tick 0)
        // expire; the tick-1 arrival stays.
        let report = w.tick(vec![], &[]).unwrap();
        assert_eq!(report.expired.len(), 5);
        assert_eq!(w.db().live_count(), 1);
        // Tick 3: the tick-1 arrival expires and the window runs empty.
        let report = w.tick(vec![], &[]).unwrap();
        assert_eq!(report.expired.len(), 1);
        assert_eq!(w.db().live_count(), 0);
    }

    #[test]
    fn ticks_zero_is_rejected() {
        let (db, sigma) = blocks();
        let qs = queries(&db, &["Ans() :- R(1, 1)"]);
        let err = WindowedEstimator::new(
            db,
            sigma,
            GeneratorSpec::uniform_operations().with_singleton_only(),
            WindowSpec::Ticks(0),
            qs,
        );
        assert!(matches!(err, Err(CoreError::InvalidParameters { .. })));
    }

    #[test]
    fn unchanged_entries_are_reused_verbatim_at_zero_draws() {
        let mut w = windowed(WindowSpec::Unbounded);
        let first = w
            .estimate(
                params(),
                &RunBudget::unlimited(),
                &mut StdRng::seed_from_u64(7),
            )
            .unwrap();
        assert!(first.outcome.converged());
        assert!(
            first.reused.iter().all(|&r| !r),
            "first pass reuses nothing"
        );

        // A block-9 insert conflicts with nothing and enters no witness:
        // every fingerprint survives, the whole bank is reused, and the
        // pass consumes zero draws without touching the RNG.
        let insert = fact(w.db(), 9, 9);
        let report = w.tick(vec![insert], &[]).unwrap();
        assert!(report.changed.iter().all(|&c| !c));
        assert!(report.enrolled.iter().all(|&e| !e));
        let reuse = w
            .estimate(
                params(),
                &RunBudget::unlimited(),
                &mut StdRng::seed_from_u64(999),
            )
            .unwrap();
        assert_eq!(reuse.tick_draws, 0);
        assert!(reuse.reused.iter().all(|&r| r));
        assert_eq!(reuse.outcome.queries, first.outcome.queries);
    }

    #[test]
    fn changed_entries_reenter_the_stopping_loop() {
        let mut w = windowed(WindowSpec::Unbounded);
        let first = w
            .estimate(
                params(),
                &RunBudget::unlimited(),
                &mut StdRng::seed_from_u64(7),
            )
            .unwrap();
        // R(3, 8) joins block 3: entry 1's lineage gains a conflict and
        // must re-converge; entry 0 (block 1) is untouched and reused.
        let insert = fact(w.db(), 3, 8);
        let report = w.tick(vec![insert], &[]).unwrap();
        assert_eq!(report.changed, vec![false, true]);
        let second = w
            .estimate(
                params(),
                &RunBudget::unlimited(),
                &mut StdRng::seed_from_u64(8),
            )
            .unwrap();
        assert_eq!(second.reused, vec![true, false]);
        assert!(second.tick_draws > 0);
        assert_eq!(second.outcome.queries[0], first.outcome.queries[0]);
        // The re-estimated entry matches a from-scratch estimator over
        // the same window under the same seed (draw-for-draw: enrolled
        // entries start at draw zero of the tick-local stream).
        let scratch_est = BatchEstimator::new(w.db(), w.sigma(), w.spec()).unwrap();
        let evals = queries(w.db(), &["Ans() :- R(3, x)"]);
        let batch = [BatchQuery::new(&evals[0].0, &evals[0].1)];
        let scratch = scratch_est
            .estimate_stopping_batch_with_budget(
                &batch,
                // δ/k must match the windowed pass (k = 2 there).
                ApproximationParams::new(0.3, 0.1).unwrap().with_mode(
                    EstimatorMode::OptimalStopping {
                        max_samples: 200_000,
                    },
                ),
                &RunBudget::unlimited(),
                &mut StdRng::seed_from_u64(8),
            )
            .unwrap();
        assert_eq!(
            (
                second.outcome.queries[1].estimate,
                second.outcome.queries[1].samples,
                second.outcome.queries[1].successes,
            ),
            (
                scratch.queries[0].estimate,
                scratch.queries[0].samples,
                scratch.queries[0].successes,
            ),
        );
    }

    #[test]
    fn interrupted_pass_resumes_bit_for_bit_and_survives_noop_ticks() {
        let mut uninterrupted = windowed(WindowSpec::Unbounded);
        let full = uninterrupted
            .estimate(
                params(),
                &RunBudget::unlimited(),
                &mut StdRng::seed_from_u64(21),
            )
            .unwrap();

        let mut w = windowed(WindowSpec::Unbounded);
        let mut rng = StdRng::seed_from_u64(21);
        let cut = RunBudget::unlimited().with_cancel_token(CancelToken::tripped_at_draw(5));
        let partial = w.estimate(params(), &cut, &mut rng).unwrap();
        assert!(!partial.outcome.converged());
        assert!(w.has_pending());
        // A tick that replays nothing keeps the pass resumable.
        let report = w.tick(vec![], &[]).unwrap();
        assert_eq!(report.replayed, 0);
        assert!(w.has_pending());
        let resumed = w
            .estimate(params(), &RunBudget::unlimited(), &mut rng)
            .unwrap();
        assert_eq!(
            resumed.outcome, full.outcome,
            "concatenated ≡ uninterrupted"
        );
        assert!(!w.has_pending());
    }

    #[test]
    fn mutating_tick_drops_a_pending_pass() {
        let mut w = windowed(WindowSpec::Unbounded);
        let cut = RunBudget::unlimited().with_cancel_token(CancelToken::tripped_at_draw(3));
        let _ = w
            .estimate(params(), &cut, &mut StdRng::seed_from_u64(21))
            .unwrap();
        assert!(w.has_pending());
        // R(3, 8) adds a witness to entry 1's lineage.
        let insert = fact(w.db(), 3, 8);
        let report = w.tick(vec![insert], &[]).unwrap();
        assert!(report.replayed > 0);
        assert!(!w.has_pending(), "a mutated window invalidates the stream");
        // The changed entry is enrolled for a full re-run — and so is the
        // unchanged one, whose interrupted pass never converged.
        assert_eq!(report.changed, vec![false, true]);
        assert_eq!(report.enrolled, vec![true, true]);
    }

    #[test]
    fn conflict_growth_without_lineage_change_reenrolls_the_entry() {
        // The reuse-soundness counterexample from review: blocks
        // {1: 2, 2: 2, 3: 1} and the membership query R(1, 1).  Insert
        // R(1, 100): it matches no query atom, so entry 0's witness set
        // stays {R(1, 1)} — but block 1 grows from 2 to 3 facts and the
        // exact probability drops from 1/2 to 1/3.  The fingerprint must
        // catch this, and the re-estimate must track the new truth.
        let (db, sigma) = blocks();
        let qs = queries(&db, &["Ans() :- R(1, 1)"]);
        let mut w = WindowedEstimator::new(
            db,
            sigma,
            GeneratorSpec::uniform_operations().with_singleton_only(),
            WindowSpec::Unbounded,
            qs,
        )
        .unwrap();
        let first = w
            .estimate(
                params(),
                &RunBudget::unlimited(),
                &mut StdRng::seed_from_u64(7),
            )
            .unwrap();
        assert!(first.outcome.converged());
        assert!((first.outcome.queries[0].estimate - 0.5).abs() <= 0.3 * 0.5);

        let insert = fact(w.db(), 1, 100);
        let report = w.tick(vec![insert], &[]).unwrap();
        assert_eq!(
            report.changed,
            vec![true],
            "a block-mate insert must invalidate the membership entry"
        );
        let second = w
            .estimate(
                params(),
                &RunBudget::unlimited(),
                &mut StdRng::seed_from_u64(8),
            )
            .unwrap();
        assert!(second.outcome.converged());
        assert!(second.tick_draws > 0, "the entry re-entered the loop");
        let exact = 1.0 / 3.0;
        assert!(
            (second.outcome.queries[0].estimate - exact).abs() <= 0.3 * exact,
            "re-estimate {} missed the post-tick truth {}",
            second.outcome.queries[0].estimate,
            exact
        );
    }

    #[test]
    fn failed_tick_heals_on_the_next_estimate() {
        let mut w = windowed(WindowSpec::Unbounded);
        let first = w
            .estimate(
                params(),
                &RunBudget::unlimited(),
                &mut StdRng::seed_from_u64(7),
            )
            .unwrap();
        assert!(first.outcome.converged());

        // A tick that applies its retraction and then fails on an
        // arity-mismatched insert (inserts are staged after retracts)
        // leaves the database ahead of the derived state.
        let bad = Fact::new(
            w.db().schema().relation_id("R").unwrap(),
            vec![Value::int(1)],
        );
        let gone = fact(w.db(), 1, 2);
        assert!(w.tick(vec![bad], &[gone]).is_err());
        assert!(w.bank().version() < w.db().version(), "derived state lags");

        // The next estimate replays the gap first: entry 0 (block 1 lost
        // its conflict, the probability jumped to 1) re-enrolls and
        // re-converges; entry 1 is reused.
        let healed = w
            .estimate(
                params(),
                &RunBudget::unlimited(),
                &mut StdRng::seed_from_u64(9),
            )
            .unwrap();
        assert!(healed.outcome.converged());
        assert_eq!(w.bank().version(), w.db().version());
        assert_eq!(healed.reused, vec![false, true]);
        assert_eq!(healed.outcome.queries[1], first.outcome.queries[1]);
        assert!((healed.outcome.queries[0].estimate - 1.0).abs() <= 0.3);
        // And so does the next tick, reporting the healed backlog.
        let report = w.tick(vec![], &[]).unwrap();
        assert_eq!(report.replayed, 0, "nothing left to heal");
    }

    #[test]
    fn changing_params_restarts_the_whole_bank() {
        let mut w = windowed(WindowSpec::Unbounded);
        let first = w
            .estimate(
                params(),
                &RunBudget::unlimited(),
                &mut StdRng::seed_from_u64(7),
            )
            .unwrap();
        assert!(first.outcome.converged());
        // Same params: reused verbatim.
        let again = w
            .estimate(
                params(),
                &RunBudget::unlimited(),
                &mut StdRng::seed_from_u64(8),
            )
            .unwrap();
        assert_eq!(again.tick_draws, 0);

        // Tighter ε: the converged baseline no longer certifies the
        // requested bound, so nothing is reused.
        let tighter =
            ApproximationParams::new(0.2, 0.2)
                .unwrap()
                .with_mode(EstimatorMode::OptimalStopping {
                    max_samples: 200_000,
                });
        let restarted = w
            .estimate(
                tighter,
                &RunBudget::unlimited(),
                &mut StdRng::seed_from_u64(8),
            )
            .unwrap();
        assert!(restarted.reused.iter().all(|&r| !r));
        assert!(restarted.tick_draws > 0);
        assert!(restarted.outcome.converged());
    }

    #[test]
    fn steady_ticks_keep_plans_and_forced_skew_replans_exactly_once() {
        let mut w = windowed(WindowSpec::Unbounded);
        let first = w
            .estimate(
                params(),
                &RunBudget::unlimited(),
                &mut StdRng::seed_from_u64(7),
            )
            .unwrap();
        assert!(first.outcome.converged());
        // Steady state: singleton inserts move no maintained statistic
        // past the 2× drift factor (cardinality 5 → 7, runs stay 2).
        for (k, v) in [(4, 4), (5, 5)] {
            let insert = fact(w.db(), k, v);
            let report = w.tick(vec![insert], &[]).unwrap();
            assert!(report.replayed > 0);
            assert_eq!(w.replans(), 0, "steady-state ticks keep compiled plans");
        }
        // A burst under one key more than doubles both the relation
        // cardinality (5 → 13 against the planning snapshot) and the
        // longest K posting run (2 → 6): exactly one replan.
        let burst: Vec<Fact> = (0..6).map(|v| fact(w.db(), 9, v)).collect();
        w.tick(burst, &[]).unwrap();
        assert_eq!(w.replans(), 1, "the skewed tick replans exactly once");
        // The replan only re-costs join order — witness sets are
        // plan-independent and block 9 intersects no witness, so every
        // entry still reuses its converged outcome verbatim.
        let reuse = w
            .estimate(
                params(),
                &RunBudget::unlimited(),
                &mut StdRng::seed_from_u64(99),
            )
            .unwrap();
        assert_eq!(reuse.tick_draws, 0);
        assert!(reuse.reused.iter().all(|&r| r));
        assert_eq!(reuse.outcome.queries, first.outcome.queries);
        // The snapshot rebased on the replan, so the next steady tick
        // does not replan again.
        let insert = fact(w.db(), 10, 10);
        w.tick(vec![insert], &[]).unwrap();
        assert_eq!(w.replans(), 1);
    }

    #[test]
    fn explicit_retraction_is_idempotent_and_counted() {
        let mut w = windowed(WindowSpec::Unbounded);
        let gone = fact(w.db(), 3, 7);
        let report = w.tick(vec![], &[gone.clone(), gone]).unwrap();
        assert_eq!(report.retracted, 1, "second retraction misses");
        assert_eq!(w.db().live_count(), 4);
        assert_eq!(report.changed, vec![false, true]);
    }
}
