//! Polynomial-time counting for primary keys.
//!
//! * `|CORep(D, Σ)|` — the number of candidate operational repairs
//!   (Lemma 5.2): every block `B` with at least two facts contributes a
//!   factor `|B| + 1` (keep one of its facts, or none of them).
//! * `|CORep¹(D, Σ)|` — the singleton-operation variant (Lemma E.2): every
//!   block contributes a factor `|B|` (exactly one surviving fact).
//! * `|CRS(D, Σ)|` — the number of complete repairing sequences, via the
//!   dynamic program of Lemma C.1 over the block-size profile.
//! * `|CRS¹(D, Σ)|` — the singleton-operation variant, in closed form.
//!
//! All counts are returned as exact [`Natural`]s: they grow factorially in
//! the database size and overflow machine integers almost immediately.

use std::collections::HashMap;

use ucqa_db::{BlockPartition, Database, DbError, FactSet, FdSet};
use ucqa_numeric::combinatorics::{binomial, factorial};
use ucqa_numeric::Natural;

/// The block-size profile of a sub-database w.r.t. a set of primary keys:
/// the multiset of block cardinalities restricted to `subset`, with empty
/// blocks dropped.
///
/// All the primary-key counting formulas and samplers depend on the
/// database only through this profile, which is what makes them polynomial.
pub fn block_sizes(db: &Database, sigma: &FdSet, subset: &FactSet) -> Result<Vec<usize>, DbError> {
    let partition = BlockPartition::compute(db, sigma)?;
    Ok(block_sizes_from_partition(&partition, subset))
}

/// As [`block_sizes`], but reusing a precomputed block partition of the
/// *full* database (the partition never changes along a repairing
/// sequence; only the per-block live counts do).
pub fn block_sizes_from_partition(partition: &BlockPartition, subset: &FactSet) -> Vec<usize> {
    partition
        .blocks()
        .iter()
        .map(|block| {
            block
                .facts()
                .iter()
                .filter(|f| subset.contains(**f))
                .count()
        })
        .filter(|size| *size > 0)
        .collect()
}

/// `|CORep(D, Σ)|` for a set of primary keys, from the block-size profile:
/// the product of `m + 1` over the blocks with `m ≥ 2` facts (Lemma 5.2).
pub fn count_candidate_repairs(sizes: &[usize]) -> Natural {
    let mut count = Natural::one();
    for &m in sizes {
        if m >= 2 {
            count = &count * &Natural::from_u64(m as u64 + 1);
        }
    }
    count
}

/// `|CORep¹(D, Σ)|` for a set of primary keys, from the block-size
/// profile: the product of `m` over all blocks (Lemma E.2) — every block
/// keeps exactly one fact under singleton operations.
pub fn count_candidate_repairs_singleton(sizes: &[usize]) -> Natural {
    let mut count = Natural::one();
    for &m in sizes {
        count = &count * &Natural::from_u64(m as u64);
    }
    count
}

/// `S^{ne,i}_m` of Lemma C.1: the number of complete repairing sequences of
/// a single block of `m ≥ 2` facts that leave the block *non-empty* and use
/// exactly `i` pair removals.
pub fn sequences_nonempty_block(m: u64, i: u64) -> Natural {
    if m < 2 || 2 * i + 1 > m {
        return Natural::zero();
    }
    // m! · (m − i − 1)! / (2^i · i! · (m − 2i − 1)!)
    let numerator = &factorial(m) * &factorial(m - i - 1);
    let denominator =
        &(&Natural::from_u64(2).pow(i as u32) * &factorial(i)) * &factorial(m - 2 * i - 1);
    let (q, r) = numerator.div_rem(&denominator);
    debug_assert!(r.is_zero(), "S^ne must be an integer");
    q
}

/// `S^{e,i}_m` of Lemma C.1: the number of complete repairing sequences of
/// a single block of `m ≥ 2` facts that leave the block *empty* and use
/// exactly `i` pair removals.
pub fn sequences_empty_block(m: u64, i: u64) -> Natural {
    if m < 2 || i == 0 || 2 * i > m {
        return Natural::zero();
    }
    // m! · (m − i − 1)! / (2^i · (i−1)! · (m − 2i)!)
    let numerator = &factorial(m) * &factorial(m - i - 1);
    let denominator =
        &(&Natural::from_u64(2).pow(i as u32) * &factorial(i - 1)) * &factorial(m - 2 * i);
    let (q, r) = numerator.div_rem(&denominator);
    debug_assert!(r.is_zero(), "S^e must be an integer");
    q
}

/// `|CRS(D, Σ)|` for a set of primary keys, computed from the block-size
/// profile via the dynamic program of Lemma C.1.
///
/// The DP state `P^{k,i}_j` counts the interleaved complete sequences over
/// the first `j` conflicting blocks that use exactly `i` pair removals and
/// leave exactly `k` of those blocks non-empty; block sequences are
/// interleaved with multinomial factors.
pub fn count_complete_sequences(sizes: &[usize]) -> Natural {
    // Only blocks with at least two facts host operations.
    let blocks: Vec<u64> = sizes
        .iter()
        .filter(|&&m| m >= 2)
        .map(|&m| m as u64)
        .collect();
    if blocks.is_empty() {
        // A consistent database has exactly one complete sequence: ε.
        return Natural::one();
    }
    let max_pairs: u64 = blocks.iter().map(|m| m / 2).sum();
    let n = blocks.len();

    // prefix_facts[j] = |B_1 ∪ … ∪ B_j|.
    let mut prefix_facts = vec![0u64; n + 1];
    for (j, &m) in blocks.iter().enumerate() {
        prefix_facts[j + 1] = prefix_facts[j] + m;
    }

    // table[k][i] = P^{k,i}_j for the current j.
    let zero_table = || vec![vec![Natural::zero(); (max_pairs + 1) as usize]; n + 1];
    let mut table = zero_table();
    let first = blocks[0];
    for i in 0..=max_pairs {
        table[0][i as usize] = sequences_empty_block(first, i);
        table[1][i as usize] = sequences_nonempty_block(first, i);
    }

    for j in 2..=n {
        let block = blocks[j - 1];
        let total_now = prefix_facts[j];
        let mut next = zero_table();
        #[allow(clippy::needless_range_loop)]
        for k in 0..=j {
            for i in 0..=max_pairs {
                let mut cell = Natural::zero();
                for i2 in 0..=i.min(block / 2) {
                    let i1 = i - i2;
                    // Case 1: block j ends empty (k blocks among the first
                    // j−1 are non-empty).
                    let prev = &table[k][i1 as usize];
                    if !prev.is_zero() {
                        let s_e = sequences_empty_block(block, i2);
                        if !s_e.is_zero() {
                            let total_ops = total_now - i - k as u64;
                            let ops_block = block - i2;
                            let interleave = binomial(total_ops, ops_block);
                            cell = &cell + &(&(prev * &s_e) * &interleave);
                        }
                    }
                    // Case 2: block j ends non-empty (k−1 blocks among the
                    // first j−1 are non-empty).
                    if k >= 1 {
                        let prev = &table[k - 1][i1 as usize];
                        if !prev.is_zero() {
                            let s_ne = sequences_nonempty_block(block, i2);
                            if !s_ne.is_zero() {
                                let total_ops = total_now - i - k as u64;
                                let ops_block = block - i2 - 1;
                                let interleave = binomial(total_ops, ops_block);
                                cell = &cell + &(&(prev * &s_ne) * &interleave);
                            }
                        }
                    }
                }
                next[k][i as usize] = cell;
            }
        }
        table = next;
    }

    let mut total = Natural::zero();
    for row in &table {
        for cell in row {
            total = &total + cell;
        }
    }
    total
}

/// `|CRS¹(D, Σ)|` for a set of primary keys, in closed form: each block of
/// `m ≥ 2` facts has `m!` singleton-only complete sequences (`m` choices of
/// survivor × `(m−1)!` removal orders), and block sequences interleave
/// multinomially, which simplifies to `(Σ (mⱼ − 1))! · Π mⱼ`.
pub fn count_complete_sequences_singleton(sizes: &[usize]) -> Natural {
    let blocks: Vec<u64> = sizes
        .iter()
        .filter(|&&m| m >= 2)
        .map(|&m| m as u64)
        .collect();
    if blocks.is_empty() {
        return Natural::one();
    }
    let total_ops: u64 = blocks.iter().map(|m| m - 1).sum();
    let mut count = factorial(total_ops);
    for &m in &blocks {
        count = &count * &Natural::from_u64(m);
    }
    count
}

/// A memoising wrapper around [`count_complete_sequences`] /
/// [`count_complete_sequences_singleton`], keyed by the sorted block-size
/// profile.
///
/// The uniform-sequence sampler calls the count once per candidate
/// operation per step; along a single repairing walk many of those calls
/// share a profile, so memoisation removes most of the DP work.
#[derive(Debug, Default)]
pub struct SequenceCountCache {
    pair_counts: HashMap<Vec<usize>, Natural>,
    singleton_counts: HashMap<Vec<usize>, Natural>,
}

impl SequenceCountCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SequenceCountCache::default()
    }

    /// `|CRS|` for the given block-size profile (order-insensitive).
    pub fn count(&mut self, sizes: &[usize], singleton_only: bool) -> Natural {
        let mut key: Vec<usize> = sizes.iter().copied().filter(|&m| m >= 2).collect();
        key.sort_unstable();
        let map = if singleton_only {
            &mut self.singleton_counts
        } else {
            &mut self.pair_counts
        };
        if let Some(cached) = map.get(&key) {
            return cached.clone();
        }
        let value = if singleton_only {
            count_complete_sequences_singleton(&key)
        } else {
            count_complete_sequences(&key)
        };
        map.insert(key, value.clone());
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucqa_db::{Database, FunctionalDependency, Schema, Value};
    use ucqa_repair::{RepairingTree, TreeLimits};

    /// The Figure 2 database: blocks of sizes 3, 1, 2.
    fn figure2() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A1", "A2"]).unwrap();
        let mut db = Database::with_schema(schema);
        for (a, b) in [
            ("a1", "b1"),
            ("a1", "b2"),
            ("a1", "b3"),
            ("a2", "b1"),
            ("a3", "b1"),
            ("a3", "b2"),
        ] {
            db.insert_values("R", [Value::str(a), Value::str(b)])
                .unwrap();
        }
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A1"], &["A2"]).unwrap());
        (db, sigma)
    }

    #[test]
    fn block_sizes_of_figure2() {
        let (db, sigma) = figure2();
        let mut sizes = block_sizes(&db, &sigma, &db.all_facts()).unwrap();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
    }

    #[test]
    fn candidate_repair_counts_match_example_b2() {
        // Example B.2: (3+1) × (2+1) = 12 candidate repairs.
        assert_eq!(count_candidate_repairs(&[3, 1, 2]).to_u64(), Some(12));
        // Singleton variant: 3 × 1 × 2 = 6.
        assert_eq!(
            count_candidate_repairs_singleton(&[3, 1, 2]).to_u64(),
            Some(6)
        );
        // A consistent database has exactly one candidate repair.
        assert_eq!(count_candidate_repairs(&[1, 1]).to_u64(), Some(1));
    }

    #[test]
    fn per_block_sequence_counts_match_example_c2() {
        // Example C.2: for the block of size 3,
        // S^{ne,0} = 6, S^{ne,1} = 3, S^{e,0} = 0, S^{e,1} = 3;
        // for the block of size 2, S^{ne,0} = 2, S^{ne,1} = 0, S^{e,1} = 1.
        assert_eq!(sequences_nonempty_block(3, 0).to_u64(), Some(6));
        assert_eq!(sequences_nonempty_block(3, 1).to_u64(), Some(3));
        assert_eq!(sequences_empty_block(3, 0).to_u64(), Some(0));
        assert_eq!(sequences_empty_block(3, 1).to_u64(), Some(3));
        assert_eq!(sequences_nonempty_block(2, 0).to_u64(), Some(2));
        assert_eq!(sequences_nonempty_block(2, 1).to_u64(), Some(0));
        assert_eq!(sequences_empty_block(2, 1).to_u64(), Some(1));
    }

    #[test]
    fn crs_count_matches_example_c2() {
        // Example C.2: |CRS(D, Σ)| = 99 for the Figure 2 database.
        assert_eq!(count_complete_sequences(&[3, 1, 2]).to_u64(), Some(99));
    }

    #[test]
    fn crs_count_matches_tree_enumeration_on_small_profiles() {
        // Cross-check the DP against brute-force enumeration for several
        // block profiles.
        for profile in [
            vec![2usize],
            vec![3],
            vec![4],
            vec![2, 2],
            vec![3, 2],
            vec![2, 2, 2],
            vec![3, 3],
        ] {
            let (db, sigma) = database_with_blocks(&profile);
            let tree = RepairingTree::build(&db, &sigma, false, TreeLimits::default()).unwrap();
            let expected = tree.leaf_count() as u64;
            assert_eq!(
                count_complete_sequences(&profile).to_u64(),
                Some(expected),
                "profile {profile:?}"
            );
        }
    }

    #[test]
    fn singleton_crs_count_matches_tree_enumeration() {
        for profile in [vec![2usize], vec![3], vec![3, 2], vec![2, 2, 2], vec![4, 3]] {
            let (db, sigma) = database_with_blocks(&profile);
            let tree = RepairingTree::build(&db, &sigma, true, TreeLimits::default()).unwrap();
            let expected = tree.leaf_count() as u64;
            assert_eq!(
                count_complete_sequences_singleton(&profile).to_u64(),
                Some(expected),
                "profile {profile:?}"
            );
        }
    }

    #[test]
    fn consistent_profiles_have_one_sequence() {
        assert_eq!(count_complete_sequences(&[]).to_u64(), Some(1));
        assert_eq!(count_complete_sequences(&[1, 1, 1]).to_u64(), Some(1));
        assert_eq!(count_complete_sequences_singleton(&[1]).to_u64(), Some(1));
    }

    #[test]
    fn cache_returns_consistent_values() {
        let mut cache = SequenceCountCache::new();
        let direct = count_complete_sequences(&[3, 2]);
        assert_eq!(cache.count(&[3, 2], false), direct);
        assert_eq!(cache.count(&[2, 3, 1], false), direct); // order/singletons ignored
        assert_eq!(
            cache.count(&[3, 2], true),
            count_complete_sequences_singleton(&[3, 2])
        );
    }

    /// Builds a primary-key database whose block profile is `sizes`.
    fn database_with_blocks(sizes: &[usize]) -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        let mut db = Database::with_schema(schema);
        for (block, &size) in sizes.iter().enumerate() {
            for row in 0..size {
                db.insert_values("R", [Value::int(block as i64), Value::int(row as i64)])
                    .unwrap();
            }
        }
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        (db, sigma)
    }
}
