//! Uniform sampling of candidate operational repairs for primary keys.
//!
//! * [`RepairSampler::sample`] — `SampleRep` of Lemma 5.2: draws a repair
//!   uniformly from `CORep(D, Σ)` by choosing, independently for every
//!   block `B` with `|B| ≥ 2`, one of its `|B| + 1` outcomes (keep one
//!   specific fact, or keep none).
//! * [`RepairSampler::sample_singleton`] — `SampleRep¹` of Lemma E.2: the
//!   singleton-operation variant, where every block keeps exactly one fact
//!   (`|B|` outcomes).
//!
//! Both samplers run in time linear in `|D|` per sample and are *exactly*
//! uniform over their respective repair spaces, which is what makes the
//! Monte-Carlo estimators of Theorems 5.1(2) and E.1(2) correct.

use rand::Rng;

use ucqa_db::{BlockPartition, Database, DbError, FactSet, FdSet};

/// A reusable uniform sampler over `CORep(D, Σ)` / `CORep¹(D, Σ)` for a
/// fixed database and set of primary keys.
///
/// The block partition is computed once at construction; each call to
/// [`RepairSampler::sample`] then only draws one random choice per
/// conflicting block.
#[derive(Debug, Clone)]
pub struct RepairSampler {
    partition: BlockPartition,
    universe: usize,
}

impl RepairSampler {
    /// Creates a sampler for `db` w.r.t. the set `sigma` of primary keys.
    ///
    /// Fails if `sigma` is not a set of primary keys — the block-based
    /// sampler is only uniform in that case (Lemma 5.2 is stated for
    /// primary keys).
    pub fn new(db: &Database, sigma: &FdSet) -> Result<Self, DbError> {
        let partition = BlockPartition::compute(db, sigma)?;
        Ok(RepairSampler {
            partition,
            universe: db.len(),
        })
    }

    /// Draws a repair uniformly at random from `CORep(D, Σ)`
    /// (Lemma 5.2).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> FactSet {
        let mut repair = FactSet::empty(self.universe);
        self.sample_into(rng, &mut repair);
        repair
    }

    /// As [`RepairSampler::sample`], writing the repair into a reused
    /// buffer: the Monte-Carlo hot loop performs no heap allocation.
    ///
    /// # Panics
    /// Panics if `out`'s universe differs from the sampler's database.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut FactSet) {
        assert_eq!(out.universe(), self.universe, "buffer universe mismatch");
        out.clear();
        for block in self.partition.blocks() {
            let facts = block.facts();
            if facts.len() == 1 {
                // Facts in singleton blocks are never removable.
                out.insert(facts[0]);
                continue;
            }
            // |B| + 1 outcomes: keep facts[i] for i < |B|, or keep none.
            let choice = rng.random_range(0..=facts.len());
            if choice < facts.len() {
                out.insert(facts[choice]);
            }
        }
    }

    /// Draws a repair uniformly at random from `CORep¹(D, Σ)`
    /// (Lemma E.2): every block keeps exactly one of its facts.
    pub fn sample_singleton<R: Rng + ?Sized>(&self, rng: &mut R) -> FactSet {
        let mut repair = FactSet::empty(self.universe);
        self.sample_singleton_into(rng, &mut repair);
        repair
    }

    /// As [`RepairSampler::sample_singleton`], writing into a reused buffer.
    ///
    /// # Panics
    /// Panics if `out`'s universe differs from the sampler's database.
    pub fn sample_singleton_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut FactSet) {
        assert_eq!(out.universe(), self.universe, "buffer universe mismatch");
        out.clear();
        for block in self.partition.blocks() {
            let facts = block.facts();
            let choice = rng.random_range(0..facts.len());
            out.insert(facts[choice]);
        }
    }

    /// The block partition backing the sampler.
    pub fn partition(&self) -> &BlockPartition {
        &self.partition
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;
    use ucqa_db::{FunctionalDependency, Schema, Value, ViolationSet};

    fn figure2() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A1", "A2"]).unwrap();
        let mut db = Database::with_schema(schema);
        for (a, b) in [
            ("a1", "b1"),
            ("a1", "b2"),
            ("a1", "b3"),
            ("a2", "b1"),
            ("a3", "b1"),
            ("a3", "b2"),
        ] {
            db.insert_values("R", [Value::str(a), Value::str(b)])
                .unwrap();
        }
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A1"], &["A2"]).unwrap());
        (db, sigma)
    }

    #[test]
    fn samples_are_consistent_candidate_repairs() {
        let (db, sigma) = figure2();
        let sampler = RepairSampler::new(&db, &sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let repair = sampler.sample(&mut rng);
            assert!(ViolationSet::compute(&db, &sigma, &repair).is_empty());
            // The isolated fact f2,1 (id 3) must always survive.
            assert!(repair.contains(ucqa_db::FactId::new(3)));
        }
    }

    #[test]
    fn sampler_hits_all_12_repairs_roughly_uniformly() {
        let (db, sigma) = figure2();
        let sampler = RepairSampler::new(&db, &sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let samples = 24_000usize;
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        for _ in 0..samples {
            let repair = sampler.sample(&mut rng);
            let key: Vec<usize> = repair.iter().map(|f| f.index()).collect();
            *counts.entry(key).or_insert(0) += 1;
        }
        // Example B.2: exactly 12 candidate repairs; each should receive
        // about samples/12 = 2000 hits (±25 %).
        assert_eq!(counts.len(), 12);
        for (repair, count) in counts {
            let expected = samples as f64 / 12.0;
            assert!(
                (count as f64 - expected).abs() < expected * 0.25,
                "repair {repair:?} sampled {count} times (expected ≈ {expected})"
            );
        }
    }

    #[test]
    fn singleton_sampler_hits_all_6_repairs() {
        let (db, sigma) = figure2();
        let sampler = RepairSampler::new(&db, &sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            let repair = sampler.sample_singleton(&mut rng);
            assert!(ViolationSet::compute(&db, &sigma, &repair).is_empty());
            // Singleton repairs keep one fact per block: 3 facts in total.
            assert_eq!(repair.len(), 3);
            seen.insert(repair.to_vec());
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn sample_into_reuses_the_buffer_and_matches_fresh_samples() {
        let (db, sigma) = figure2();
        let sampler = RepairSampler::new(&db, &sigma).unwrap();
        let mut fresh_rng = StdRng::seed_from_u64(77);
        let mut reused_rng = StdRng::seed_from_u64(77);
        let mut buffer = FactSet::empty(db.len());
        for _ in 0..100 {
            let fresh = sampler.sample(&mut fresh_rng);
            sampler.sample_into(&mut reused_rng, &mut buffer);
            assert_eq!(fresh, buffer);
            let fresh1 = sampler.sample_singleton(&mut fresh_rng);
            sampler.sample_singleton_into(&mut reused_rng, &mut buffer);
            assert_eq!(fresh1, buffer);
        }
    }

    #[test]
    fn non_primary_keys_are_rejected() {
        let (db, _) = figure2();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A1"], &["A2"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A2"], &["A1"]).unwrap());
        assert!(RepairSampler::new(&db, &sigma).is_err());
    }
}
