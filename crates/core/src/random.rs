//! Sampling utilities over exact big-integer weights.
//!
//! The uniform-sequence sampler selects among alternatives whose weights
//! are huge exact counts (`Natural`s with hundreds of digits).  Converting
//! those weights to `f64` would silently destroy uniformity, so selection
//! is performed with exact integer arithmetic: draw a uniform natural below
//! the total weight and walk the cumulative sums.

use rand::Rng;
use ucqa_numeric::Natural;

/// Draws a natural number uniformly at random from `[0, bound)`.
///
/// Uses rejection sampling over the smallest power-of-two range covering
/// `bound`, so the expected number of draws is at most 2.
///
/// # Panics
/// Panics if `bound` is zero.
pub fn random_natural_below<R: Rng + ?Sized>(rng: &mut R, bound: &Natural) -> Natural {
    assert!(!bound.is_zero(), "bound must be positive");
    if let Some(small) = bound.to_u64() {
        return Natural::from_u64(rng.random_range(0..small));
    }
    let bits = bound.bits();
    let limbs = bits.div_ceil(32) as usize;
    let top_bits = bits - 32 * (limbs as u64 - 1);
    let top_mask: u32 = if top_bits >= 32 {
        u32::MAX
    } else {
        (1u32 << top_bits) - 1
    };
    loop {
        let mut raw: Vec<u32> = (0..limbs).map(|_| rng.random::<u32>()).collect();
        if let Some(top) = raw.last_mut() {
            *top &= top_mask;
        }
        let candidate = Natural::from_limbs_le(raw);
        if candidate < *bound {
            return candidate;
        }
    }
}

/// Picks an index with probability proportional to the exact weights.
///
/// Zero-weight entries are never selected.
///
/// # Panics
/// Panics if all weights are zero.
pub fn pick_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[Natural]) -> usize {
    let total: Natural = weights.iter().sum();
    assert!(!total.is_zero(), "at least one weight must be positive");
    let target = random_natural_below(rng, &total);
    let mut cumulative = Natural::zero();
    for (index, weight) in weights.iter().enumerate() {
        if weight.is_zero() {
            continue;
        }
        cumulative = &cumulative + weight;
        if target < cumulative {
            return index;
        }
    }
    unreachable!("target is below the total weight, so some prefix must exceed it")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_bounds_cover_the_range_uniformly() {
        let mut rng = StdRng::seed_from_u64(1);
        let bound = Natural::from_u64(5);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            let v = random_natural_below(&mut rng, &bound).to_u64().unwrap() as usize;
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 2000.0).abs() < 400.0, "counts {counts:?}");
        }
    }

    #[test]
    fn large_bounds_stay_below_the_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        // 2^200 + 12345
        let bound = &Natural::from_u64(2).pow(200) + &Natural::from_u64(12_345);
        for _ in 0..200 {
            let v = random_natural_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn weighted_pick_respects_proportions() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = vec![Natural::from_u64(1), Natural::zero(), Natural::from_u64(3)];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[pick_weighted(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = random_natural_below(&mut rng, &Natural::zero());
    }
}
