//! The uniform-operations random walk (Lemmas 7.2 and D.7).
//!
//! Sampling a leaf of `M^uo_Σ(D)` (or `M^{uo,1}_Σ(D)`) according to its
//! leaf distribution is straightforward because the generator is *local*:
//! starting from `D`, repeatedly pick one of the currently justified
//! operations uniformly at random and apply it, until the database is
//! consistent.  The walk works for **arbitrary FDs** — this locality is
//! precisely what Section 7 exploits to push approximability beyond
//! primary keys.
//!
//! The hot path is backed by the precomputed incremental
//! [`ConflictIndex`]: `V(D, Σ)` is computed **once** when the sampler is
//! built, each walk resets a [`LiveOps`] cursor and maintains the justified
//! operation sets under removals in O(degree) per removed fact, and the
//! uniform pick over `Ops_s(D, Σ)` is O(1) per step.  The pre-index
//! behaviour (recomputing the violations from scratch on every step) is
//! kept as [`OperationWalkSampler::sample_result_rescan_into`], the
//! baseline of the `e14` bench and of the cross-checking tests.

use rand::Rng;

use ucqa_db::{ConflictIndex, Database, FactId, FactSet, FdSet, LiveOps, ViolationSet};
use ucqa_numeric::LogFloat;
use ucqa_repair::{operation::justified_operations_from_index, Operation, RepairingSequence};

/// Reusable buffers for the allocation-free walk
/// [`OperationWalkSampler::sample_result_into`].
///
/// Holding the mutable walk state outside the sampler keeps
/// `OperationWalkSampler` `Sync` (one sampler is shared across threads by
/// the parallel estimator); each sampling loop owns one scratch.
#[derive(Debug, Default, Clone)]
pub struct WalkScratch {
    /// The incremental live-operations cursor of the index-backed walk.
    ops: LiveOps,
    /// Buffers of the rescan baseline walk.
    violations: ViolationSet,
    live: Vec<FactId>,
    singles: Vec<FactId>,
    pairs: Vec<(FactId, FactId)>,
}

impl WalkScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        WalkScratch::default()
    }
}

/// The outcome of one uniform-operations walk.
#[derive(Debug, Clone)]
pub struct WalkOutcome {
    /// The sampled complete repairing sequence.
    pub sequence: RepairingSequence,
    /// Its result `s(D)` — an operational repair.
    pub result: FactSet,
    /// The leaf probability `π(s)` of the sampled sequence (a product of
    /// `1/|Ops_s|` factors, kept in log-space because it underflows `f64`
    /// for large databases).
    pub probability: LogFloat,
}

/// A sampler for the leaf distribution of `M^uo_Σ(D)` / `M^{uo,1}_Σ(D)`.
///
/// Unlike the primary-key samplers, this one accepts any set of FDs.
///
/// Construction computes `V(D, Σ)` once and builds the incremental
/// [`ConflictIndex`]; every walk then costs O(|V| + |D|/64) in total
/// instead of O(|D|) *per step*.  The sampler itself is immutable after
/// construction (`Sync`), so the parallel estimator shares one instance
/// across its worker threads; the per-walk mutable state lives in
/// [`WalkScratch`].
#[derive(Debug, Clone)]
pub struct OperationWalkSampler<'a> {
    db: &'a Database,
    sigma: &'a FdSet,
    index: ConflictIndex,
    singleton_only: bool,
}

impl<'a> OperationWalkSampler<'a> {
    /// Creates a sampler over all justified operations (`M^uo_Σ`),
    /// computing the violations of `D` once.
    pub fn new(db: &'a Database, sigma: &'a FdSet) -> Self {
        OperationWalkSampler {
            db,
            sigma,
            index: ConflictIndex::build(db, sigma),
            singleton_only: false,
        }
    }

    /// As [`OperationWalkSampler::new`], reusing a caller-maintained
    /// [`ConflictIndex`] — typically one kept current across database
    /// mutations with [`ConflictIndex::refresh`] — instead of rebuilding
    /// the violations from scratch.  Walks are bit-identical to a sampler
    /// built by [`OperationWalkSampler::new`] under the same seed; only
    /// the construction cost differs.
    ///
    /// # Panics
    /// Panics if `index` is stale: its universe must equal `db.len()` and
    /// its changelog version must equal `db.version()` (a freshly built or
    /// just-refreshed index satisfies both).
    pub fn with_index(db: &'a Database, sigma: &'a FdSet, index: ConflictIndex) -> Self {
        assert_eq!(
            index.universe(),
            db.len(),
            "conflict index universe is stale"
        );
        assert_eq!(
            index.version(),
            db.version(),
            "conflict index version is stale; refresh it first"
        );
        OperationWalkSampler {
            db,
            sigma,
            index,
            singleton_only: false,
        }
    }

    /// Restricts the walk to singleton removals (`M^{uo,1}_Σ`).
    pub fn singleton_only(mut self) -> Self {
        self.singleton_only = true;
        self
    }

    /// Whether the walk is restricted to singleton removals.
    pub fn is_singleton_only(&self) -> bool {
        self.singleton_only
    }

    /// The precomputed conflict index backing the walks.
    pub fn conflict_index(&self) -> &ConflictIndex {
        &self.index
    }

    /// One step of the walk: a uniform pick over the live operations,
    /// applied to the cursor.  Returns the removed fact(s) and the size of
    /// the operation set `|Ops_s(D, Σ)|` the pick was uniform over, or
    /// `None` when the live sub-database is already consistent.
    ///
    /// Every walk variant goes through this helper, so the operation
    /// universe and the pick are defined in exactly one place.
    fn step<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        ops: &mut LiveOps,
    ) -> Option<(FactId, Option<FactId>, usize)> {
        let singles = ops.single_count();
        if singles == 0 {
            return None;
        }
        let pairs = if self.singleton_only {
            0
        } else {
            ops.pair_count()
        };
        let count = singles + pairs;
        let choice = rng.random_range(0..count);
        let (first, second) = if choice < singles {
            (ops.single(choice), None)
        } else {
            let (f, g) = ops.pair(&self.index, choice - singles);
            (f, Some(g))
        };
        ops.remove_fact(&self.index, first);
        if let Some(second) = second {
            ops.remove_fact(&self.index, second);
        }
        Some((first, second, count))
    }

    /// Runs one walk: a sequence drawn according to the leaf distribution
    /// of the uniform-operations Markov chain.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> WalkOutcome {
        let mut ops = LiveOps::new();
        ops.reset_full(&self.index);
        let mut operations = Vec::new();
        let mut probability = LogFloat::one();
        while let Some((first, second, count)) = self.step(rng, &mut ops) {
            probability *= LogFloat::from_value(1.0 / count as f64);
            operations.push(match second {
                None => Operation::remove_one(first),
                Some(second) => Operation::remove_pair(first, second),
            });
        }
        WalkOutcome {
            sequence: RepairingSequence::from_operations(operations),
            result: ops.live().clone(),
            probability,
        }
    }

    /// Runs one walk and returns only the resulting repair (the common case
    /// for Monte-Carlo estimation).
    pub fn sample_result<R: Rng + ?Sized>(&self, rng: &mut R) -> FactSet {
        self.sample(rng).result
    }

    /// As [`OperationWalkSampler::sample_result`], writing the repair into a
    /// reused buffer and reusing `scratch` across walks, so the walk
    /// performs no heap allocation once the buffers reach steady-state
    /// capacity.
    ///
    /// Each walk resets the scratch's [`LiveOps`] cursor against the
    /// precomputed index and maintains it incrementally: a uniform pick
    /// over the live singleton/pair arrays is O(1), and each removal
    /// updates only the operations touching the removed fact.  The live
    /// operation sets equal `Ops_s(D, Σ)` at every step (the property the
    /// cross-checking tests assert), hence the leaf distribution is the
    /// same as [`OperationWalkSampler::sample`]'s.
    ///
    /// # Panics
    /// Panics if `out`'s universe differs from the sampler's database.
    pub fn sample_result_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut FactSet,
        scratch: &mut WalkScratch,
    ) {
        assert_eq!(out.universe(), self.db.len(), "buffer universe mismatch");
        let ops = &mut scratch.ops;
        ops.reset_full(&self.index);
        while self.step(rng, ops).is_some() {}
        out.copy_from(ops.live());
    }

    /// The pre-index walk: recomputes the violation set from scratch on
    /// every step (O(|D|) per step, O(|D|²) per walk).
    ///
    /// Kept as the measured baseline of the `e14` bench and as an
    /// independent implementation of the same leaf distribution for the
    /// cross-checking tests; new code should use
    /// [`OperationWalkSampler::sample_result_into`].
    ///
    /// # Panics
    /// Panics if `out`'s universe differs from the sampler's database.
    pub fn sample_result_rescan_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut FactSet,
        scratch: &mut WalkScratch,
    ) {
        assert_eq!(out.universe(), self.db.len(), "buffer universe mismatch");
        out.fill();
        loop {
            scratch
                .violations
                .recompute(self.db, self.sigma, out, &mut scratch.live);
            if scratch.violations.is_empty() {
                return;
            }
            scratch
                .violations
                .conflicting_facts_into(&mut scratch.singles);
            let pair_count = if self.singleton_only {
                0
            } else {
                scratch
                    .violations
                    .conflicting_pairs_into(&mut scratch.pairs);
                scratch.pairs.len()
            };
            let choice = rng.random_range(0..scratch.singles.len() + pair_count);
            if choice < scratch.singles.len() {
                out.remove(scratch.singles[choice]);
            } else {
                let (f, g) = scratch.pairs[choice - scratch.singles.len()];
                out.remove(f);
                out.remove(g);
            }
        }
    }

    /// Counts the justified operations available on `subset` — the factor
    /// `|Ops_s(D, Σ)|` of the leaf distribution, exposed for diagnostics
    /// and the lower-bound experiments.
    pub fn available_operation_count(&self, subset: &FactSet) -> usize {
        let mut ops = LiveOps::new();
        ops.reset_to(&self.index, subset);
        let singles = ops.single_count();
        if self.singleton_only {
            singles
        } else {
            singles + ops.pair_count()
        }
    }

    /// The justified operations available on `subset`, in canonical order.
    pub fn available_operations(&self, subset: &FactSet) -> Vec<Operation> {
        let mut ops = LiveOps::new();
        ops.reset_to(&self.index, subset);
        justified_operations_from_index(&self.index, &ops, self.singleton_only)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;
    use ucqa_db::{FunctionalDependency, Schema, Value};
    use ucqa_repair::{GeneratorSpec, OperationalSemantics, TreeLimits};

    fn running_example() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B", "C"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::str("a1"), Value::str("b1"), Value::str("c1")])
            .unwrap();
        db.insert_values("R", [Value::str("a1"), Value::str("b2"), Value::str("c2")])
            .unwrap();
        db.insert_values("R", [Value::str("a2"), Value::str("b1"), Value::str("c2")])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["C"], &["B"]).unwrap());
        (db, sigma)
    }

    #[test]
    fn walks_produce_valid_complete_sequences() {
        let (db, sigma) = running_example();
        let sampler = OperationWalkSampler::new(&db, &sigma);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let outcome = sampler.sample(&mut rng);
            let result = outcome.sequence.validate(&db, &sigma).unwrap();
            assert_eq!(result, outcome.result);
            assert!(outcome.sequence.is_complete(&db, &sigma));
            assert!(outcome.probability.to_f64() > 0.0);
        }
    }

    #[test]
    fn repair_distribution_matches_exact_uniform_operations_semantics() {
        let (db, sigma) = running_example();
        let chain = GeneratorSpec::uniform_operations()
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        let semantics = OperationalSemantics::from_chain(&chain);
        let exact: HashMap<Vec<usize>, f64> = semantics
            .repairs()
            .iter()
            .map(|entry| {
                (
                    entry.repair.iter().map(|f| f.index()).collect(),
                    entry.probability.to_f64(),
                )
            })
            .collect();
        let sampler = OperationWalkSampler::new(&db, &sigma);
        let mut rng = StdRng::seed_from_u64(9);
        let samples = 40_000usize;
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        for _ in 0..samples {
            let result = sampler.sample_result(&mut rng);
            *counts
                .entry(result.iter().map(|f| f.index()).collect())
                .or_insert(0) += 1;
        }
        assert_eq!(counts.len(), exact.len());
        for (repair, probability) in exact {
            let observed = counts.get(&repair).copied().unwrap_or(0) as f64 / samples as f64;
            assert!(
                (observed - probability).abs() < 0.02,
                "repair {repair:?}: observed {observed}, exact {probability}"
            );
        }
    }

    #[test]
    fn running_example_leaf_probabilities_are_fifth_or_fifteenth() {
        let (db, sigma) = running_example();
        let sampler = OperationWalkSampler::new(&db, &sigma);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let outcome = sampler.sample(&mut rng);
            let p = outcome.probability.to_f64();
            let matches_one_fifth = (p - 0.2).abs() < 1e-12;
            let matches_one_fifteenth = (p - 1.0 / 15.0).abs() < 1e-12;
            assert!(
                matches_one_fifth || matches_one_fifteenth,
                "unexpected leaf probability {p}"
            );
        }
    }

    #[test]
    fn buffered_walk_matches_exact_uniform_operations_semantics() {
        let (db, sigma) = running_example();
        let chain = GeneratorSpec::uniform_operations()
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        let semantics = OperationalSemantics::from_chain(&chain);
        let exact: HashMap<Vec<usize>, f64> = semantics
            .repairs()
            .iter()
            .map(|entry| {
                (
                    entry.repair.iter().map(|f| f.index()).collect(),
                    entry.probability.to_f64(),
                )
            })
            .collect();
        let sampler = OperationWalkSampler::new(&db, &sigma);
        let mut rng = StdRng::seed_from_u64(31);
        let mut repair = FactSet::empty(db.len());
        let mut scratch = WalkScratch::new();
        let samples = 40_000usize;
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        for _ in 0..samples {
            sampler.sample_result_into(&mut rng, &mut repair, &mut scratch);
            assert!(ucqa_db::ViolationSet::compute(&db, &sigma, &repair).is_empty());
            *counts
                .entry(repair.iter().map(|f| f.index()).collect())
                .or_insert(0) += 1;
        }
        assert_eq!(counts.len(), exact.len());
        for (repair, probability) in exact {
            let observed = counts.get(&repair).copied().unwrap_or(0) as f64 / samples as f64;
            assert!(
                (observed - probability).abs() < 0.02,
                "repair {repair:?}: observed {observed}, exact {probability}"
            );
        }
    }

    #[test]
    fn rescan_baseline_matches_exact_uniform_operations_semantics() {
        // The pre-index walk must still realise the same leaf distribution
        // (it is the measured baseline of the e14 bench).
        let (db, sigma) = running_example();
        let chain = GeneratorSpec::uniform_operations()
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        let semantics = OperationalSemantics::from_chain(&chain);
        let exact: HashMap<Vec<usize>, f64> = semantics
            .repairs()
            .iter()
            .map(|entry| {
                (
                    entry.repair.iter().map(|f| f.index()).collect(),
                    entry.probability.to_f64(),
                )
            })
            .collect();
        let sampler = OperationWalkSampler::new(&db, &sigma);
        let mut rng = StdRng::seed_from_u64(77);
        let mut repair = FactSet::empty(db.len());
        let mut scratch = WalkScratch::new();
        let samples = 40_000usize;
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        for _ in 0..samples {
            sampler.sample_result_rescan_into(&mut rng, &mut repair, &mut scratch);
            *counts
                .entry(repair.iter().map(|f| f.index()).collect())
                .or_insert(0) += 1;
        }
        assert_eq!(counts.len(), exact.len());
        for (repair, probability) in exact {
            let observed = counts.get(&repair).copied().unwrap_or(0) as f64 / samples as f64;
            assert!(
                (observed - probability).abs() < 0.02,
                "repair {repair:?}: observed {observed}, exact {probability}"
            );
        }
    }

    #[test]
    fn incremental_walk_state_matches_recompute_at_every_step() {
        // Drive the index-backed walk by hand on a general-FD database and
        // cross-check the live operation sets against a from-scratch
        // recompute after every removal.
        let (db, sigma) = ucqa_workload_like_database();
        let sampler = OperationWalkSampler::new(&db, &sigma);
        let index = sampler.conflict_index();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let mut ops = ucqa_db::LiveOps::new();
            ops.reset_full(index);
            let mut subset = db.all_facts();
            while !ops.is_consistent() {
                let singles = ops.single_count();
                let choice = rng.random_range(0..singles + ops.pair_count());
                if choice < singles {
                    let f = ops.single(choice);
                    ops.remove_fact(index, f);
                    subset.remove(f);
                } else {
                    let (f, g) = ops.pair(index, choice - singles);
                    ops.remove_fact(index, f);
                    ops.remove_fact(index, g);
                    subset.remove(f);
                    subset.remove(g);
                }
                let violations = ViolationSet::compute(&db, &sigma, &subset);
                let mut singles: Vec<_> = ops.live_singles().to_vec();
                singles.sort();
                let mut pairs: Vec<_> = ops.live_pairs(index).collect();
                pairs.sort();
                assert_eq!(singles, violations.conflicting_facts());
                assert_eq!(pairs, violations.conflicting_pairs());
                assert_eq!(ops.live(), &subset);
            }
            assert!(ViolationSet::compute(&db, &sigma, &subset).is_empty());
        }
    }

    /// A small multi-FD database with overlapping, non-key FDs.
    fn ucqa_workload_like_database() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B", "C", "P"]).unwrap();
        let mut db = Database::with_schema(schema);
        for (payload, (a, b, c)) in [
            (0, 0, 0),
            (0, 1, 0),
            (0, 0, 1),
            (1, 1, 1),
            (1, 0, 0),
            (2, 2, 1),
            (2, 2, 2),
            (2, 0, 2),
            (0, 2, 2),
            (1, 1, 0),
        ]
        .into_iter()
        .enumerate()
        {
            db.insert_values(
                "R",
                [
                    Value::int(a),
                    Value::int(b),
                    Value::int(c),
                    Value::int(payload as i64),
                ],
            )
            .unwrap();
        }
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["C"], &["B"]).unwrap());
        (db, sigma)
    }

    #[test]
    fn buffered_singleton_walk_only_removes_single_facts() {
        let (db, sigma) = running_example();
        let sampler = OperationWalkSampler::new(&db, &sigma).singleton_only();
        let mut rng = StdRng::seed_from_u64(13);
        let mut repair = FactSet::empty(db.len());
        let mut scratch = WalkScratch::new();
        for _ in 0..200 {
            sampler.sample_result_into(&mut rng, &mut repair, &mut scratch);
            // Singleton walks keep at least one fact of the running example
            // (removing everything requires a pair removal).
            assert!(!repair.is_empty());
            assert!(ucqa_db::ViolationSet::compute(&db, &sigma, &repair).is_empty());
        }
    }

    #[test]
    fn singleton_walk_never_uses_pair_removals() {
        let (db, sigma) = running_example();
        let sampler = OperationWalkSampler::new(&db, &sigma).singleton_only();
        assert!(sampler.is_singleton_only());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let outcome = sampler.sample(&mut rng);
            assert!(outcome.sequence.is_singleton_only());
            assert!(!outcome.result.is_empty());
        }
        assert_eq!(sampler.available_operation_count(&db.all_facts()), 3);
        assert_eq!(
            OperationWalkSampler::new(&db, &sigma).available_operation_count(&db.all_facts()),
            5
        );
    }

    #[test]
    fn works_with_general_fds_not_just_keys() {
        // The Proposition D.6 family for n = 4: R(0,0,0) conflicts with
        // three facts R(0,1,i) under R : A1 → A2.
        let mut schema = Schema::new();
        schema.add_relation("R", &["A1", "A2", "A3"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::int(0), Value::int(0), Value::int(0)])
            .unwrap();
        for i in 1..=3 {
            db.insert_values("R", [Value::int(0), Value::int(1), Value::int(i)])
                .unwrap();
        }
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A1"], &["A2"]).unwrap());
        let sampler = OperationWalkSampler::new(&db, &sigma);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..200 {
            let outcome = sampler.sample(&mut rng);
            assert!(outcome.sequence.is_complete(&db, &sigma));
        }
    }
}
