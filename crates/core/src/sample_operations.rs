//! The uniform-operations random walk (Lemmas 7.2 and D.7).
//!
//! Sampling a leaf of `M^uo_Σ(D)` (or `M^{uo,1}_Σ(D)`) according to its
//! leaf distribution is straightforward because the generator is *local*:
//! starting from `D`, repeatedly pick one of the currently justified
//! operations uniformly at random and apply it, until the database is
//! consistent.  The walk works for **arbitrary FDs** — this locality is
//! precisely what Section 7 exploits to push approximability beyond
//! primary keys.

use rand::Rng;

use ucqa_db::{Database, FactId, FactSet, FdSet, ViolationSet};
use ucqa_numeric::LogFloat;
use ucqa_repair::{operation::justified_operations_from, Operation, RepairingSequence};

/// Reusable buffers for the allocation-free walk
/// [`OperationWalkSampler::sample_result_into`].
///
/// Holding the buffers outside the sampler keeps `OperationWalkSampler`
/// `Copy`/`Sync` (it is shared across threads by the parallel estimator);
/// each sampling loop owns one scratch.
#[derive(Debug, Default, Clone)]
pub struct WalkScratch {
    violations: ViolationSet,
    live: Vec<FactId>,
    singles: Vec<FactId>,
    pairs: Vec<(FactId, FactId)>,
}

impl WalkScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        WalkScratch::default()
    }
}

/// The outcome of one uniform-operations walk.
#[derive(Debug, Clone)]
pub struct WalkOutcome {
    /// The sampled complete repairing sequence.
    pub sequence: RepairingSequence,
    /// Its result `s(D)` — an operational repair.
    pub result: FactSet,
    /// The leaf probability `π(s)` of the sampled sequence (a product of
    /// `1/|Ops_s|` factors, kept in log-space because it underflows `f64`
    /// for large databases).
    pub probability: LogFloat,
}

/// A sampler for the leaf distribution of `M^uo_Σ(D)` / `M^{uo,1}_Σ(D)`.
///
/// Unlike the primary-key samplers, this one accepts any set of FDs.
#[derive(Debug, Clone, Copy)]
pub struct OperationWalkSampler<'a> {
    db: &'a Database,
    sigma: &'a FdSet,
    singleton_only: bool,
}

impl<'a> OperationWalkSampler<'a> {
    /// Creates a sampler over all justified operations (`M^uo_Σ`).
    pub fn new(db: &'a Database, sigma: &'a FdSet) -> Self {
        OperationWalkSampler {
            db,
            sigma,
            singleton_only: false,
        }
    }

    /// Restricts the walk to singleton removals (`M^{uo,1}_Σ`).
    pub fn singleton_only(mut self) -> Self {
        self.singleton_only = true;
        self
    }

    /// Whether the walk is restricted to singleton removals.
    pub fn is_singleton_only(&self) -> bool {
        self.singleton_only
    }

    /// Runs one walk: a sequence drawn according to the leaf distribution
    /// of the uniform-operations Markov chain.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> WalkOutcome {
        let mut subset = self.db.all_facts();
        let mut operations = Vec::new();
        let mut probability = LogFloat::one();
        loop {
            let violations = ViolationSet::compute(self.db, self.sigma, &subset);
            if violations.is_empty() {
                break;
            }
            let candidates = justified_operations_from(&violations, self.singleton_only);
            debug_assert!(
                !candidates.is_empty(),
                "an inconsistent database always has a justified operation"
            );
            let index = rng.random_range(0..candidates.len());
            let op = candidates[index].clone();
            probability *= LogFloat::from_value(1.0 / candidates.len() as f64);
            op.apply(&mut subset);
            operations.push(op);
        }
        WalkOutcome {
            sequence: RepairingSequence::from_operations(operations),
            result: subset,
            probability,
        }
    }

    /// Runs one walk and returns only the resulting repair (the common case
    /// for Monte-Carlo estimation).
    pub fn sample_result<R: Rng + ?Sized>(&self, rng: &mut R) -> FactSet {
        self.sample(rng).result
    }

    /// As [`OperationWalkSampler::sample_result`], writing the repair into a
    /// reused buffer and reusing `scratch` across steps, so the walk
    /// performs no heap allocation once the buffers reach steady-state
    /// capacity.
    ///
    /// Instead of materialising [`Operation`] values (each holding its own
    /// `Vec`), the justified operations are kept as the deduplicated
    /// conflicting facts (singleton removals) plus conflicting pairs (pair
    /// removals), and the uniform pick indexes into that split directly —
    /// the same operation set, hence the same leaf distribution, as
    /// [`OperationWalkSampler::sample`].
    ///
    /// # Panics
    /// Panics if `out`'s universe differs from the sampler's database.
    pub fn sample_result_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut FactSet,
        scratch: &mut WalkScratch,
    ) {
        assert_eq!(out.universe(), self.db.len(), "buffer universe mismatch");
        out.fill();
        loop {
            scratch
                .violations
                .recompute(self.db, self.sigma, out, &mut scratch.live);
            if scratch.violations.is_empty() {
                return;
            }
            scratch.singles.clear();
            scratch.pairs.clear();
            for violation in scratch.violations.iter() {
                scratch.singles.push(violation.first);
                scratch.singles.push(violation.second);
                scratch.pairs.push(violation.pair());
            }
            scratch.singles.sort_unstable();
            scratch.singles.dedup();
            scratch.pairs.sort_unstable();
            scratch.pairs.dedup();
            let pair_count = if self.singleton_only {
                0
            } else {
                scratch.pairs.len()
            };
            let choice = rng.random_range(0..scratch.singles.len() + pair_count);
            if choice < scratch.singles.len() {
                out.remove(scratch.singles[choice]);
            } else {
                let (f, g) = scratch.pairs[choice - scratch.singles.len()];
                out.remove(f);
                out.remove(g);
            }
        }
    }

    /// Counts the justified operations available on `subset` — the factor
    /// `|Ops_s(D, Σ)|` of the leaf distribution, exposed for diagnostics
    /// and the lower-bound experiments.
    pub fn available_operation_count(&self, subset: &FactSet) -> usize {
        let violations = ViolationSet::compute(self.db, self.sigma, subset);
        justified_operations_from(&violations, self.singleton_only).len()
    }

    /// The justified operations available on `subset`.
    pub fn available_operations(&self, subset: &FactSet) -> Vec<Operation> {
        let violations = ViolationSet::compute(self.db, self.sigma, subset);
        justified_operations_from(&violations, self.singleton_only)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;
    use ucqa_db::{FunctionalDependency, Schema, Value};
    use ucqa_repair::{GeneratorSpec, OperationalSemantics, TreeLimits};

    fn running_example() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B", "C"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::str("a1"), Value::str("b1"), Value::str("c1")])
            .unwrap();
        db.insert_values("R", [Value::str("a1"), Value::str("b2"), Value::str("c2")])
            .unwrap();
        db.insert_values("R", [Value::str("a2"), Value::str("b1"), Value::str("c2")])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["C"], &["B"]).unwrap());
        (db, sigma)
    }

    #[test]
    fn walks_produce_valid_complete_sequences() {
        let (db, sigma) = running_example();
        let sampler = OperationWalkSampler::new(&db, &sigma);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let outcome = sampler.sample(&mut rng);
            let result = outcome.sequence.validate(&db, &sigma).unwrap();
            assert_eq!(result, outcome.result);
            assert!(outcome.sequence.is_complete(&db, &sigma));
            assert!(outcome.probability.to_f64() > 0.0);
        }
    }

    #[test]
    fn repair_distribution_matches_exact_uniform_operations_semantics() {
        let (db, sigma) = running_example();
        let chain = GeneratorSpec::uniform_operations()
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        let semantics = OperationalSemantics::from_chain(&chain);
        let exact: HashMap<Vec<usize>, f64> = semantics
            .repairs()
            .iter()
            .map(|entry| {
                (
                    entry.repair.iter().map(|f| f.index()).collect(),
                    entry.probability.to_f64(),
                )
            })
            .collect();
        let sampler = OperationWalkSampler::new(&db, &sigma);
        let mut rng = StdRng::seed_from_u64(9);
        let samples = 40_000usize;
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        for _ in 0..samples {
            let result = sampler.sample_result(&mut rng);
            *counts
                .entry(result.iter().map(|f| f.index()).collect())
                .or_insert(0) += 1;
        }
        assert_eq!(counts.len(), exact.len());
        for (repair, probability) in exact {
            let observed = counts.get(&repair).copied().unwrap_or(0) as f64 / samples as f64;
            assert!(
                (observed - probability).abs() < 0.02,
                "repair {repair:?}: observed {observed}, exact {probability}"
            );
        }
    }

    #[test]
    fn running_example_leaf_probabilities_are_fifth_or_fifteenth() {
        let (db, sigma) = running_example();
        let sampler = OperationWalkSampler::new(&db, &sigma);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let outcome = sampler.sample(&mut rng);
            let p = outcome.probability.to_f64();
            let matches_one_fifth = (p - 0.2).abs() < 1e-12;
            let matches_one_fifteenth = (p - 1.0 / 15.0).abs() < 1e-12;
            assert!(
                matches_one_fifth || matches_one_fifteenth,
                "unexpected leaf probability {p}"
            );
        }
    }

    #[test]
    fn buffered_walk_matches_exact_uniform_operations_semantics() {
        let (db, sigma) = running_example();
        let chain = GeneratorSpec::uniform_operations()
            .build_chain(&db, &sigma, TreeLimits::default())
            .unwrap();
        let semantics = OperationalSemantics::from_chain(&chain);
        let exact: HashMap<Vec<usize>, f64> = semantics
            .repairs()
            .iter()
            .map(|entry| {
                (
                    entry.repair.iter().map(|f| f.index()).collect(),
                    entry.probability.to_f64(),
                )
            })
            .collect();
        let sampler = OperationWalkSampler::new(&db, &sigma);
        let mut rng = StdRng::seed_from_u64(31);
        let mut repair = FactSet::empty(db.len());
        let mut scratch = WalkScratch::new();
        let samples = 40_000usize;
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        for _ in 0..samples {
            sampler.sample_result_into(&mut rng, &mut repair, &mut scratch);
            assert!(ucqa_db::ViolationSet::compute(&db, &sigma, &repair).is_empty());
            *counts
                .entry(repair.iter().map(|f| f.index()).collect())
                .or_insert(0) += 1;
        }
        assert_eq!(counts.len(), exact.len());
        for (repair, probability) in exact {
            let observed = counts.get(&repair).copied().unwrap_or(0) as f64 / samples as f64;
            assert!(
                (observed - probability).abs() < 0.02,
                "repair {repair:?}: observed {observed}, exact {probability}"
            );
        }
    }

    #[test]
    fn buffered_singleton_walk_only_removes_single_facts() {
        let (db, sigma) = running_example();
        let sampler = OperationWalkSampler::new(&db, &sigma).singleton_only();
        let mut rng = StdRng::seed_from_u64(13);
        let mut repair = FactSet::empty(db.len());
        let mut scratch = WalkScratch::new();
        for _ in 0..200 {
            sampler.sample_result_into(&mut rng, &mut repair, &mut scratch);
            // Singleton walks keep at least one fact of the running example
            // (removing everything requires a pair removal).
            assert!(!repair.is_empty());
            assert!(ucqa_db::ViolationSet::compute(&db, &sigma, &repair).is_empty());
        }
    }

    #[test]
    fn singleton_walk_never_uses_pair_removals() {
        let (db, sigma) = running_example();
        let sampler = OperationWalkSampler::new(&db, &sigma).singleton_only();
        assert!(sampler.is_singleton_only());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let outcome = sampler.sample(&mut rng);
            assert!(outcome.sequence.is_singleton_only());
            assert!(!outcome.result.is_empty());
        }
        assert_eq!(sampler.available_operation_count(&db.all_facts()), 3);
        assert_eq!(
            OperationWalkSampler::new(&db, &sigma).available_operation_count(&db.all_facts()),
            5
        );
    }

    #[test]
    fn works_with_general_fds_not_just_keys() {
        // The Proposition D.6 family for n = 4: R(0,0,0) conflicts with
        // three facts R(0,1,i) under R : A1 → A2.
        let mut schema = Schema::new();
        schema.add_relation("R", &["A1", "A2", "A3"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::int(0), Value::int(0), Value::int(0)])
            .unwrap();
        for i in 1..=3 {
            db.insert_values("R", [Value::int(0), Value::int(1), Value::int(i)])
                .unwrap();
        }
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A1"], &["A2"]).unwrap());
        let sampler = OperationWalkSampler::new(&db, &sigma);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..200 {
            let outcome = sampler.sample(&mut rng);
            assert!(outcome.sequence.is_complete(&db, &sigma));
        }
    }
}
