//! Run budgets: draw caps, wall-clock deadlines, cooperative cancellation,
//! and honest *achieved* `(ε′, δ)` reporting for interrupted runs.
//!
//! The FPRAS drivers of [`crate::fpras`] run to convergence by default —
//! the Dagum–Karp–Luby–Ross stopping rule draws until every query reaches
//! its success target `Υ(ε, δ/k)`.  A [`RunBudget`] bounds that loop from
//! the outside: a hard cap on the number of draws, a wall-clock deadline
//! read from an injectable [`Clock`], and a cooperative [`CancelToken`]
//! that another thread (or a test) can trip at any time.  An interrupted
//! run does not abort — it returns an [`EstimateOutcome`] carrying, per
//! query, the partial estimate, the draws it observed, a
//! [`BudgetStatus`], and the **achieved** error bound obtained by
//! inverting the stopping-rule target at the actual success count
//! ([`achieved_relative_epsilon`]) and the Hoeffding bound at the actual
//! draw count ([`achieved_additive_epsilon`]).  Queries that converged
//! before the interruption keep their converged values; only the live
//! ones degrade.
//!
//! Budget checks consume **no randomness**: the RNG is touched only by
//! the shared repair draw, so a run under [`RunBudget::unlimited`] is
//! bit-identical to the un-budgeted entry points under the same seed, and
//! a cancelled run that is *resumed* with the same RNG continues the very
//! same sample stream (see
//! [`crate::fpras::BatchEstimator::estimate_stopping_batch_resume`]).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ucqa_query::CompileBudget;

/// A monotone source of elapsed time, injectable so that deadlines are
/// testable (and so the chaos harness can skew them).
///
/// Implementations must be cheap to query — the estimation loops consult
/// the clock every [`RunBudget::with_check_interval`] draws.
pub trait Clock: Send + Sync {
    /// Time elapsed since the clock's epoch (its construction, for the
    /// provided implementations).
    fn elapsed(&self) -> Duration;
}

/// The real wall clock: elapsed time since construction, via
/// [`std::time::Instant`].
#[derive(Debug, Clone)]
pub struct SystemClock {
    start: Instant,
}

impl SystemClock {
    /// A clock whose epoch is "now".
    pub fn start_now() -> Self {
        SystemClock {
            start: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::start_now()
    }
}

impl Clock for SystemClock {
    fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// A hand-driven clock for tests: time advances only when
/// [`ManualClock::advance`] is called.  Shared behind an [`Arc`], it lets
/// a test fire a deadline at an exact draw index.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock stopped at zero.
    pub fn new() -> Arc<Self> {
        Arc::new(ManualClock::default())
    }

    /// Advances the clock by `by`.
    pub fn advance(&self, by: Duration) {
        self.nanos.fetch_add(
            by.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// Sets the clock to an absolute elapsed time.
    pub fn set(&self, elapsed: Duration) {
        self.nanos.store(
            elapsed.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }
}

impl Clock for ManualClock {
    fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }
}

/// A cooperative cancellation handle backed by an [`AtomicBool`].
///
/// Clones share the flag: hand one clone to the estimation loop (inside a
/// [`RunBudget`]) and keep the other to [`CancelToken::cancel`] from
/// another thread.  For deterministic tests the token can additionally be
/// armed to trip itself at an exact draw index
/// ([`CancelToken::tripped_at_draw`]) — cancellation then consumes no
/// wall-clock and no randomness, so the truncation point is reproducible.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    trip_at_draw: Option<u64>,
}

impl CancelToken {
    /// A token that cancels only when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that additionally trips itself as soon as `draws` draws
    /// have been consumed (the interrupted run performs *exactly* `draws`
    /// draws, which is what makes resume tests bit-reproducible).
    pub fn tripped_at_draw(draws: u64) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            trip_at_draw: Some(draws),
        }
    }

    /// Requests cancellation; every loop sharing this token's flag stops
    /// at its next budget check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested (by [`CancelToken::cancel`]
    /// or by an armed draw-index trip) once `draws` draws have happened.
    pub fn is_cancelled(&self, draws: u64) -> bool {
        self.flag.load(Ordering::Relaxed) || self.trip_at_draw.is_some_and(|at| draws >= at)
    }

    /// The shared flag, for adapters that cannot depend on this crate
    /// (e.g. the compile-time budget of `ucqa-query`).
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

/// How a budgeted run (or one query of it) ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetStatus {
    /// The query reached its success target (or the fixed-sample run
    /// completed): the requested `(ε, δ)` guarantee applies.
    Converged,
    /// A draw cap (the budget's or the estimator's own `max_samples`) or
    /// the wall-clock deadline stopped the run first; the estimate is the
    /// empirical mean and only the achieved bound applies.
    BudgetExhausted,
    /// The [`CancelToken`] was tripped; the estimate is the empirical mean
    /// and only the achieved bound applies.
    Cancelled,
}

impl BudgetStatus {
    /// `true` for [`BudgetStatus::Converged`].
    pub fn is_converged(self) -> bool {
        matches!(self, BudgetStatus::Converged)
    }
}

/// An externally imposed bound on an estimation run: a cap on draws, a
/// wall-clock deadline against an injectable [`Clock`], and a cooperative
/// [`CancelToken`] — any combination, including none
/// ([`RunBudget::unlimited`]).
///
/// Budget checks happen *between* draws and consume no randomness, so an
/// unlimited budget leaves every estimator entry point bit-identical to
/// its un-budgeted counterpart under a fixed seed.  Cancellation and the
/// draw cap are checked on every draw; the clock is consulted every
/// [`RunBudget::with_check_interval`] draws (default 1024) to keep the
/// per-draw overhead to two branches.
///
/// ```
/// use std::time::Duration;
/// use ucqa_core::budget::{CancelToken, RunBudget};
///
/// let cancel = CancelToken::new();
/// let budget = RunBudget::unlimited()
///     .with_max_draws(1_000_000)
///     .with_deadline(Duration::from_millis(250))
///     .with_cancel_token(cancel.clone());
/// // ... hand `budget` to an estimator, keep `cancel` to stop it early.
/// # let _ = budget;
/// ```
#[derive(Clone, Default)]
pub struct RunBudget {
    max_draws: Option<u64>,
    deadline: Option<Duration>,
    clock: Option<Arc<dyn Clock>>,
    cancel: Option<CancelToken>,
    check_interval: Option<u64>,
    max_compile_steps: Option<u64>,
}

impl std::fmt::Debug for RunBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunBudget")
            .field("max_draws", &self.max_draws)
            .field("deadline", &self.deadline)
            .field("has_clock", &self.clock.is_some())
            .field("has_cancel", &self.cancel.is_some())
            .field("check_interval", &self.check_interval())
            .field("max_compile_steps", &self.max_compile_steps)
            .finish()
    }
}

impl RunBudget {
    /// Default number of draws between two clock reads.
    pub const DEFAULT_CHECK_INTERVAL: u64 = 1024;

    /// No constraints: budgeted entry points behave bit-identically to
    /// their un-budgeted counterparts.
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// Caps the **total** number of draws (for resumed runs this counts
    /// the whole stream, prior segments included, consistent with the
    /// estimators' own `max_samples` cut-offs).
    pub fn with_max_draws(mut self, max_draws: u64) -> Self {
        self.max_draws = Some(max_draws);
        self
    }

    /// Imposes a wall-clock deadline, measured by a [`SystemClock`]
    /// starting now.
    pub fn with_deadline(self, deadline: Duration) -> Self {
        self.with_deadline_and_clock(deadline, Arc::new(SystemClock::start_now()))
    }

    /// Imposes a deadline against an injected clock (a [`ManualClock`] in
    /// tests, a skewed clock in the chaos harness).
    pub fn with_deadline_and_clock(mut self, deadline: Duration, clock: Arc<dyn Clock>) -> Self {
        self.deadline = Some(deadline);
        self.clock = Some(clock);
        self
    }

    /// Attaches a cancellation token (clones share the flag).
    pub fn with_cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Overrides how many draws pass between two deadline checks
    /// (clamped to at least 1).  Cancellation and the draw cap are
    /// checked on every draw regardless.
    pub fn with_check_interval(mut self, interval: u64) -> Self {
        self.check_interval = Some(interval.max(1));
        self
    }

    /// Caps the number of enumeration steps of bank compilation
    /// ([`crate::fpras::BatchEstimator::compile_bank_with_budget`]):
    /// a pathological bank degrades to per-draw evaluator fallback
    /// instead of stalling before sampling even starts.
    pub fn with_max_compile_steps(mut self, steps: u64) -> Self {
        self.max_compile_steps = Some(steps);
        self
    }

    /// `true` iff no constraint is set (the budget can never interrupt).
    pub fn is_unlimited(&self) -> bool {
        self.max_draws.is_none() && self.deadline.is_none() && self.cancel.is_none()
    }

    /// The deadline-check stride.
    pub fn check_interval(&self) -> u64 {
        self.check_interval.unwrap_or(Self::DEFAULT_CHECK_INTERVAL)
    }

    /// The compile-step cap, as a [`CompileBudget`] for `ucqa-query`,
    /// sharing this budget's cancellation flag so a [`CancelToken`] also
    /// interrupts bank compilation.
    pub fn compile_budget(&self) -> CompileBudget {
        let mut budget = CompileBudget::unlimited();
        if let Some(steps) = self.max_compile_steps {
            budget = budget.with_max_steps(steps);
        }
        if let Some(cancel) = &self.cancel {
            budget = budget.with_cancel_flag(cancel.flag());
        }
        budget
    }

    /// Polls the budget after `draws` draws: `None` to keep going, or the
    /// status the interrupted entries should report.  Consumes no
    /// randomness.
    pub fn check(&self, draws: u64) -> Option<BudgetStatus> {
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled(draws) {
                return Some(BudgetStatus::Cancelled);
            }
        }
        if let Some(max_draws) = self.max_draws {
            if draws >= max_draws {
                return Some(BudgetStatus::BudgetExhausted);
            }
        }
        if let (Some(deadline), Some(clock)) = (&self.deadline, &self.clock) {
            if draws.is_multiple_of(self.check_interval()) && clock.elapsed() >= *deadline {
                return Some(BudgetStatus::BudgetExhausted);
            }
        }
        None
    }
}

/// The error bound a (possibly interrupted) run actually achieved, at its
/// actual draw and success counts.
///
/// The requested `(ε, δ)` guarantee of the stopping rule only applies to
/// entries that reached their success target.  For the others this struct
/// reports what the observed counts *do* support: the relative error
/// obtained by inverting the Dagum–Karp–Luby–Ross target at the achieved
/// success count, and the additive error obtained by inverting the
/// Hoeffding sample bound at the achieved draw count.  For a converged
/// entry the relative inversion recovers (up to the target's ceiling) the
/// requested `ε`, so the field is also a uniform way to read "how tight
/// did this entry get".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AchievedBound {
    /// Relative error `ε′` such that the achieved success count equals
    /// the DKLR target `Υ(ε′, δ)` — `None` when fewer than two successes
    /// were observed (the inversion is undefined there).
    pub relative_epsilon: Option<f64>,
    /// Additive error `ε′ = sqrt(ln(2/δ) / (2·N))` at the achieved draw
    /// count `N` (Hoeffding inversion); `+∞` when no draws happened.
    pub additive_epsilon: f64,
    /// The failure probability both inversions are computed against (the
    /// per-query `δ/k` of a batched run).
    pub delta: f64,
}

impl AchievedBound {
    /// The bound achieved at `samples` draws with `successes` successes,
    /// against failure probability `delta`.
    pub fn at(samples: u64, successes: u64, delta: f64) -> Self {
        AchievedBound {
            relative_epsilon: achieved_relative_epsilon(successes, delta),
            additive_epsilon: achieved_additive_epsilon(samples, delta),
            delta,
        }
    }
}

/// Inverts the Dagum–Karp–Luby–Ross success target at an achieved success
/// count: the `ε′` with `Υ(ε′, δ) = 1 + 4(e−2)(1+ε′)·ln(2/δ)/ε′² =
/// successes`.
///
/// Writing `c = 4(e−2)·ln(2/δ)`, the target equation rearranges to the
/// quadratic `(S−1)·ε′² − c·ε′ − c = 0` whose positive root is
/// `ε′ = (c + sqrt(c² + 4c(S−1))) / (2(S−1))`.  Returns `None` for
/// `S ≤ 1` (no inversion exists) and values above 1 unclamped — a bound
/// with `ε′ ≥ 1` is honest ("nothing useful yet"), not an error.
pub fn achieved_relative_epsilon(successes: u64, delta: f64) -> Option<f64> {
    if successes <= 1 || !(delta > 0.0 && delta < 1.0) {
        return None;
    }
    let c = 4.0 * (std::f64::consts::E - 2.0) * (2.0 / delta).ln();
    let s = (successes - 1) as f64;
    Some((c + (c * c + 4.0 * c * s).sqrt()) / (2.0 * s))
}

/// Inverts the Hoeffding sample bound at an achieved draw count: the
/// additive error `ε′ = sqrt(ln(2/δ) / (2·N))` for which `N` draws
/// suffice (the inverse of [`crate::bounds::samples_for_additive_error`]).
/// Returns `+∞` for `N = 0` and for degenerate `δ ∉ (0, 1)` — mirroring
/// [`achieved_relative_epsilon`]'s guard, so a nonsensical failure
/// probability reports "no bound" instead of a NaN (for `δ < 0` the `ln`
/// would go imaginary; for `δ ≥ 2` the square root would).
pub fn achieved_additive_epsilon(samples: u64, delta: f64) -> f64 {
    if samples == 0 || !(delta > 0.0 && delta < 1.0) {
        return f64::INFINITY;
    }
    ((2.0 / delta).ln() / (2.0 * samples as f64)).sqrt()
}

/// One query of a budgeted estimation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOutcome {
    /// The estimate: `target/N` for a converged stopping-rule entry, the
    /// plain empirical mean otherwise.
    pub estimate: f64,
    /// Draws this query observed before converging (or the full stream
    /// length if it never did).
    pub samples: u64,
    /// Successes among them.
    pub successes: u64,
    /// How this entry ended.  Retired entries keep
    /// [`BudgetStatus::Converged`] even when the run was interrupted
    /// later — their values are final.
    pub status: BudgetStatus,
    /// The error bound the observed counts achieve (see
    /// [`AchievedBound`]).
    pub achieved: AchievedBound,
}

/// The result of a budgeted estimation run: per-query partial estimates,
/// the shared stream length, and how the run ended.
///
/// Returned by the `*_with_budget` entry points of
/// [`crate::fpras::OcqaEstimator`] and [`crate::fpras::BatchEstimator`].
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateOutcome {
    /// One outcome per query, in input order.
    pub queries: Vec<QueryOutcome>,
    /// Total number of shared draws consumed (across resumed segments).
    pub total_draws: u64,
}

impl EstimateOutcome {
    /// The overall status: [`BudgetStatus::Cancelled`] if any entry was
    /// cancelled, else [`BudgetStatus::BudgetExhausted`] if any entry ran
    /// out of budget, else [`BudgetStatus::Converged`].
    pub fn status(&self) -> BudgetStatus {
        let mut status = BudgetStatus::Converged;
        for query in &self.queries {
            match query.status {
                BudgetStatus::Cancelled => return BudgetStatus::Cancelled,
                BudgetStatus::BudgetExhausted => status = BudgetStatus::BudgetExhausted,
                BudgetStatus::Converged => {}
            }
        }
        status
    }

    /// `true` iff every entry converged.
    pub fn converged(&self) -> bool {
        self.status().is_converged()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_interrupts() {
        let budget = RunBudget::unlimited();
        assert!(budget.is_unlimited());
        for draws in [0, 1, 1_000_000, u64::MAX] {
            assert_eq!(budget.check(draws), None);
        }
    }

    #[test]
    fn max_draws_exhausts_at_the_cap() {
        let budget = RunBudget::unlimited().with_max_draws(10);
        assert_eq!(budget.check(9), None);
        assert_eq!(budget.check(10), Some(BudgetStatus::BudgetExhausted));
        assert_eq!(budget.check(11), Some(BudgetStatus::BudgetExhausted));
    }

    #[test]
    fn cancel_token_trips_immediately_and_by_draw_index() {
        let cancel = CancelToken::new();
        let budget = RunBudget::unlimited().with_cancel_token(cancel.clone());
        assert_eq!(budget.check(5), None);
        cancel.cancel();
        assert_eq!(budget.check(5), Some(BudgetStatus::Cancelled));

        let armed = CancelToken::tripped_at_draw(3);
        let budget = RunBudget::unlimited().with_cancel_token(armed);
        assert_eq!(budget.check(2), None);
        assert_eq!(budget.check(3), Some(BudgetStatus::Cancelled));
    }

    #[test]
    fn cancellation_outranks_the_draw_cap() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let budget = RunBudget::unlimited()
            .with_max_draws(0)
            .with_cancel_token(cancel);
        assert_eq!(budget.check(0), Some(BudgetStatus::Cancelled));
    }

    #[test]
    fn deadline_fires_only_on_check_interval_boundaries() {
        let clock = ManualClock::new();
        let budget = RunBudget::unlimited()
            .with_deadline_and_clock(Duration::from_secs(1), Arc::clone(&clock) as Arc<dyn Clock>)
            .with_check_interval(100);
        assert_eq!(budget.check(0), None, "deadline not reached yet");
        clock.advance(Duration::from_secs(2));
        assert_eq!(budget.check(50), None, "off-boundary draws skip the clock");
        assert_eq!(budget.check(100), Some(BudgetStatus::BudgetExhausted));
    }

    #[test]
    fn manual_clock_set_and_advance() {
        let clock = ManualClock::new();
        assert_eq!(clock.elapsed(), Duration::ZERO);
        clock.advance(Duration::from_millis(5));
        clock.advance(Duration::from_millis(5));
        assert_eq!(clock.elapsed(), Duration::from_millis(10));
        clock.set(Duration::from_secs(1));
        assert_eq!(clock.elapsed(), Duration::from_secs(1));
    }

    #[test]
    fn system_clock_advances() {
        let clock = SystemClock::start_now();
        let first = clock.elapsed();
        assert!(clock.elapsed() >= first);
    }

    #[test]
    fn relative_inversion_recovers_the_requested_epsilon() {
        // Round-tripping: the target Υ(ε, δ) achieved exactly inverts to
        // an ε′ at most the requested ε (the ceiling only adds successes).
        use crate::montecarlo::StoppingRuleEstimator;
        for &(epsilon, delta) in &[(0.1, 0.05), (0.25, 0.2), (0.05, 0.01)] {
            let target = StoppingRuleEstimator::new(epsilon, delta).success_target();
            let inverted = achieved_relative_epsilon(target, delta).unwrap();
            assert!(
                inverted <= epsilon + 1e-9,
                "ε = {epsilon}: inverted {inverted}"
            );
            // And not absurdly smaller: one success less already needs a
            // larger ε′.
            let coarser = achieved_relative_epsilon(target - 1, delta).unwrap();
            assert!(coarser > inverted);
        }
    }

    #[test]
    fn relative_inversion_is_undefined_below_two_successes() {
        assert_eq!(achieved_relative_epsilon(0, 0.1), None);
        assert_eq!(achieved_relative_epsilon(1, 0.1), None);
        assert!(achieved_relative_epsilon(2, 0.1).is_some());
        assert_eq!(achieved_relative_epsilon(10, 0.0), None);
        assert_eq!(achieved_relative_epsilon(10, 1.0), None);
    }

    #[test]
    fn additive_inversion_matches_the_sample_bound() {
        // samples_for_additive_error(ε, δ) draws suffice for additive ε;
        // inverting at that count must return at most ε.
        for &(epsilon, delta) in &[(0.05, 0.05), (0.01, 0.1)] {
            let samples = crate::bounds::samples_for_additive_error(epsilon, delta);
            let inverted = achieved_additive_epsilon(samples, delta);
            assert!(inverted <= epsilon + 1e-9, "ε = {epsilon}: {inverted}");
        }
        assert_eq!(achieved_additive_epsilon(0, 0.1), f64::INFINITY);
    }

    #[test]
    fn achieved_bound_shrinks_with_more_data() {
        let early = AchievedBound::at(100, 5, 0.1);
        let late = AchievedBound::at(10_000, 500, 0.1);
        assert!(late.additive_epsilon < early.additive_epsilon);
        assert!(late.relative_epsilon.unwrap() < early.relative_epsilon.unwrap());
    }

    #[test]
    fn outcome_status_aggregates_worst_first() {
        let q = |status| QueryOutcome {
            estimate: 0.5,
            samples: 10,
            successes: 5,
            status,
            achieved: AchievedBound::at(10, 5, 0.1),
        };
        let all_converged = EstimateOutcome {
            queries: vec![q(BudgetStatus::Converged)],
            total_draws: 10,
        };
        assert!(all_converged.converged());
        let mixed = EstimateOutcome {
            queries: vec![q(BudgetStatus::Converged), q(BudgetStatus::BudgetExhausted)],
            total_draws: 10,
        };
        assert_eq!(mixed.status(), BudgetStatus::BudgetExhausted);
        assert!(!mixed.converged());
        let cancelled = EstimateOutcome {
            queries: vec![q(BudgetStatus::BudgetExhausted), q(BudgetStatus::Cancelled)],
            total_draws: 10,
        };
        assert_eq!(cancelled.status(), BudgetStatus::Cancelled);
        let empty = EstimateOutcome {
            queries: Vec::new(),
            total_draws: 0,
        };
        assert!(empty.converged());
    }

    #[test]
    fn compile_budget_adapter_shares_the_cancel_flag() {
        let cancel = CancelToken::new();
        let budget = RunBudget::unlimited()
            .with_cancel_token(cancel.clone())
            .with_max_compile_steps(100);
        let compile = budget.compile_budget();
        assert!(!compile.interrupted(0));
        assert!(compile.interrupted(101), "step cap is threaded through");
        cancel.cancel();
        assert!(compile.interrupted(0), "cancel flag is shared");
        // An unlimited budget yields an unlimited compile budget.
        assert!(!RunBudget::unlimited().compile_budget().interrupted(1 << 40));
    }
}
