//! Error types for the exact and approximate OCQA algorithms.

use std::fmt;

use ucqa_db::DbError;
use ucqa_query::QueryError;
use ucqa_repair::{RepairError, UniformSemantics};

/// Errors raised by the exact solvers, samplers, and FPRAS drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The requested combination of semantics, operation space, and
    /// constraint class is not supported by any algorithm of the paper
    /// (e.g. an FPRAS for uniform repairs over arbitrary FDs).
    Unsupported {
        /// The uniform semantics requested.
        semantics: UniformSemantics,
        /// Whether singleton operations were requested.
        singleton_only: bool,
        /// Description of the constraint class that was supplied.
        constraint_class: String,
        /// Which theorem / open problem explains the limitation.
        explanation: String,
    },
    /// Invalid approximation parameters (ε ≤ 0 or δ ∉ (0, 1)).
    InvalidParameters {
        /// Human-readable description.
        message: String,
    },
    /// An error from the database layer (constraint-class validation).
    Db(DbError),
    /// An error from the query layer (arity mismatches).
    Query(QueryError),
    /// An error from the exact repair machinery (tree limits).
    Repair(RepairError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Unsupported {
                semantics,
                singleton_only,
                constraint_class,
                explanation,
            } => write!(
                f,
                "no algorithm for {semantics}{} over {constraint_class}: {explanation}",
                if *singleton_only {
                    " (singleton operations)"
                } else {
                    ""
                }
            ),
            CoreError::InvalidParameters { message } => {
                write!(f, "invalid approximation parameters: {message}")
            }
            CoreError::Db(e) => write!(f, "{e}"),
            CoreError::Query(e) => write!(f, "{e}"),
            CoreError::Repair(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<DbError> for CoreError {
    fn from(e: DbError) -> Self {
        CoreError::Db(e)
    }
}

impl From<QueryError> for CoreError {
    fn from(e: QueryError) -> Self {
        CoreError::Query(e)
    }
}

impl From<RepairError> for CoreError {
    fn from(e: RepairError) -> Self {
        CoreError::Repair(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_of_unsupported_mentions_semantics_and_class() {
        let e = CoreError::Unsupported {
            semantics: UniformSemantics::Repairs,
            singleton_only: false,
            constraint_class: "functional dependencies".into(),
            explanation: "Theorem 5.1(3): no FPRAS unless RP = NP".into(),
        };
        let text = e.to_string();
        assert!(text.contains("uniform-repairs"));
        assert!(text.contains("functional dependencies"));
    }
}
