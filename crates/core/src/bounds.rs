//! The polynomial lower bounds on the target quantities.
//!
//! Monte-Carlo estimation of a quantity `p` with *relative* error requires
//! a number of samples proportional to `1/p`; the paper's positive results
//! therefore all hinge on showing that the target quantity, whenever
//! non-zero, is at least `1/poly(||D||)`:
//!
//! | Bound | Paper statement | Setting |
//! |---|---|---|
//! | [`rrfreq_lower_bound`] | Lemma 5.3 | primary keys, pair + singleton ops |
//! | [`srfreq_lower_bound`] | Lemma 6.3 | primary keys, pair + singleton ops |
//! | [`singleton_frequency_lower_bound`] | Lemmas E.3 / E.10 | primary keys, singleton ops |
//! | [`uniform_operations_keys_lower_bound`] | Proposition 7.3 | arbitrary keys, pair + singleton ops |
//! | [`fd_singleton_lower_bound`] | Lemma D.8 | arbitrary FDs, singleton ops |
//!
//! The bounds are worst-case and intentionally loose (the Proposition 7.3
//! polynomial in particular contains factorial-sized constants); they are
//! returned in log-space ([`LogFloat`]) so that they remain representable,
//! and the FPRAS drivers use them only as a fallback when the optimal
//! stopping rule is disabled.

use ucqa_numeric::LogFloat;

/// Lemma 5.3: `rrfreq_{Σ,Q}(D, c̄) ≥ 1 / (2·|D|)^{|Q|}` whenever positive,
/// for a set of primary keys.
pub fn rrfreq_lower_bound(database_size: usize, query_atoms: usize) -> LogFloat {
    power_bound(2.0 * database_size as f64, query_atoms)
}

/// Lemma 6.3: `srfreq_{Σ,Q}(D, c̄) ≥ 1 / (2·|D|)^{|Q|}` whenever positive,
/// for a set of primary keys.
pub fn srfreq_lower_bound(database_size: usize, query_atoms: usize) -> LogFloat {
    power_bound(2.0 * database_size as f64, query_atoms)
}

/// Lemmas E.3 and E.10: under singleton operations the bound improves to
/// `1 / |D|^{|Q|}` for both `rrfreq¹` and `srfreq¹`.
pub fn singleton_frequency_lower_bound(database_size: usize, query_atoms: usize) -> LogFloat {
    power_bound(database_size as f64, query_atoms)
}

/// Lemma D.8 (Theorem 7.5): for FDs with singleton operations,
/// `P_{M^{uo,1},Q}(D, c̄) ≥ 1 / (e·|D|)^{|Q|}` whenever positive.
pub fn fd_singleton_lower_bound(database_size: usize, query_atoms: usize) -> LogFloat {
    power_bound(std::f64::consts::E * database_size as f64, query_atoms)
}

/// Proposition 7.3: for arbitrary keys under `M^uo`,
/// `P_{M^uo,Q}(D, c̄) ≥ 1 / (1 + pol″(|D|) · pol′(|D|))` whenever positive,
/// where (following Appendix D.2, with `k = |Σ|` keys per relation bounded
/// by the number of FDs and `m = |Q|`):
///
/// * `pol″(|D|) = ((mk + m + 1)²)! · (e / 5km)^{5km} · (√|D| + 5km)^{5km}`,
/// * `pol′(|D|) = (e·m)^{m+2} · (e(|D| + m − 1))^{m} · (e(|D| − 1))^{m}`.
///
/// The value is astronomically small for all but the tiniest parameters —
/// that is inherent to the worst-case analysis, not to this implementation
/// — so it is returned in log-space and the practical estimator prefers the
/// optimal stopping rule.
pub fn uniform_operations_keys_lower_bound(
    database_size: usize,
    query_atoms: usize,
    keys_per_relation: usize,
) -> LogFloat {
    let d = database_size as f64;
    let m = query_atoms as f64;
    let k = keys_per_relation.max(1) as f64;
    let e = std::f64::consts::E;

    // ln pol'' = ln ((mk + m + 1)^2)! + 5km·ln(e/(5km)) + 5km·ln(√|D| + 5km)
    let fact_arg = ((m * k + m + 1.0).powi(2)).round();
    let ln_fact = ln_factorial(fact_arg as u64);
    let ln_pol2 = ln_fact
        + 5.0 * k * m * (e / (5.0 * k * m)).ln()
        + 5.0 * k * m * (d.sqrt() + 5.0 * k * m).ln();

    // ln pol' = (m+2)·ln(e·m) + m·ln(e(|D|+m−1)) + m·ln(e(|D|−1))
    let ln_pol1 = (m + 2.0) * (e * m.max(1.0)).ln()
        + m * (e * (d + m - 1.0).max(1.0)).ln()
        + m * (e * (d - 1.0).max(1.0)).ln();

    // bound = 1 / (1 + pol''·pol'); in log space use -ln(1 + exp(ln2+ln1)).
    let ln_product = ln_pol2 + ln_pol1;
    let ln_denominator = if ln_product > 50.0 {
        ln_product
    } else {
        ln_product.exp().ln_1p()
    };
    LogFloat::from_ln(-ln_denominator)
}

/// `1 / base^exponent` in log-space.
fn power_bound(base: f64, exponent: usize) -> LogFloat {
    if exponent == 0 {
        return LogFloat::one();
    }
    LogFloat::from_ln(-(exponent as f64) * base.max(1.0).ln())
}

/// `ln(n!)` via direct summation for small `n` and Stirling's series for
/// large `n`.
fn ln_factorial(n: u64) -> f64 {
    if n < 256 {
        (2..=n).map(|i| (i as f64).ln()).sum()
    } else {
        let x = n as f64;
        x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
    }
}

/// The number of Monte-Carlo samples sufficient for a relative
/// `(ε, δ)`-guarantee when the target is known to be at least
/// `lower_bound` whenever it is non-zero: `⌈3·ln(2/δ) / (ε²·p_min)⌉`
/// (standard multiplicative Chernoff bound).
///
/// Returns `None` when the count does not fit in `u64` (which signals the
/// caller to use the optimal stopping rule instead).
pub fn samples_for_relative_error(epsilon: f64, delta: f64, lower_bound: LogFloat) -> Option<u64> {
    if lower_bound.is_zero() {
        return None;
    }
    let ln_samples = (3.0 * (2.0 / delta).ln() / (epsilon * epsilon)).ln() - lower_bound.ln();
    if ln_samples > 62.0 * std::f64::consts::LN_2 {
        return None;
    }
    Some(ln_samples.exp().ceil() as u64)
}

/// The number of Monte-Carlo samples sufficient for an *additive*
/// `(ε, δ)`-guarantee: `⌈ln(2/δ) / (2·ε²)⌉` (Hoeffding).
pub fn samples_for_additive_error(epsilon: f64, delta: f64) -> u64 {
    ((2.0 / delta).ln() / (2.0 * epsilon * epsilon)).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_key_bounds_match_the_paper_examples() {
        // Example B.3: |D| = 6, |Q| = 1 → bound 1/12 ≤ rrfreq = 1/4.
        let bound = rrfreq_lower_bound(6, 1);
        assert!((bound.to_f64() - 1.0 / 12.0).abs() < 1e-12);
        // Example C.3: same bound for srfreq, and 24/99 ≥ 1/12.
        assert!(srfreq_lower_bound(6, 1).to_f64() <= 24.0 / 99.0);
        // Singleton variant: 1/|D|^{|Q|} = 1/6.
        assert!((singleton_frequency_lower_bound(6, 1).to_f64() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_decrease_with_database_and_query_size() {
        assert!(rrfreq_lower_bound(10, 1).to_f64() > rrfreq_lower_bound(100, 1).to_f64());
        assert!(rrfreq_lower_bound(10, 1).to_f64() > rrfreq_lower_bound(10, 2).to_f64());
        assert!(fd_singleton_lower_bound(10, 2).to_f64() > 0.0);
        assert_eq!(rrfreq_lower_bound(10, 0).to_f64(), 1.0);
    }

    #[test]
    fn proposition_7_3_bound_is_positive_but_tiny() {
        let bound = uniform_operations_keys_lower_bound(100, 1, 2);
        assert!(bound.ln().is_finite());
        assert!(bound.ln() < 0.0);
        // Monotone in the database size.
        let larger_db = uniform_operations_keys_lower_bound(10_000, 1, 2);
        assert!(larger_db.ln() < bound.ln());
    }

    #[test]
    fn sample_count_formulas() {
        // Additive: ε = 0.05, δ = 0.05 → ln(40)/0.005 ≈ 738.
        let n = samples_for_additive_error(0.05, 0.05);
        assert!((700..800).contains(&n));
        // Relative with a decent lower bound is finite…
        let n = samples_for_relative_error(0.1, 0.05, LogFloat::from_value(0.01)).unwrap();
        assert!(n > 10_000 && n < 10_000_000);
        // …and None when the bound is absurdly small or zero.
        assert!(samples_for_relative_error(0.1, 0.05, LogFloat::from_ln(-200.0)).is_none());
        assert!(samples_for_relative_error(0.1, 0.05, LogFloat::zero()).is_none());
    }

    #[test]
    fn ln_factorial_is_accurate() {
        assert!((ln_factorial(5) - 120.0f64.ln()).abs() < 1e-12);
        // Stirling branch vs. direct summation agree at the crossover.
        let direct: f64 = (2..=300u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(300) - direct).abs() / direct < 1e-6);
    }
}
