//! # `ucqa-core`
//!
//! Exact and approximate uniform operational consistent query answering —
//! the algorithmic contribution of the paper (Sections 5–7 and
//! Appendices B–E):
//!
//! * [`exact`] — exact solvers for `OCQA`, `RRFreq`, `SRFreq` and their
//!   singleton-operation variants, based on the explicit constructions of
//!   `ucqa-repair` (exponential; ground truth for small instances).
//! * [`counting`] — polynomial counting for primary keys: `|CORep(D, Σ)|`
//!   (Lemma 5.2), `|CORep¹(D, Σ)|` (Lemma E.2) and the `|CRS(D, Σ)|`
//!   dynamic program of Lemma C.1.
//! * [`sample_repairs`] — the uniform repair samplers `SampleRep`
//!   (Lemma 5.2) and `SampleRep¹` (Lemma E.2).
//! * [`sample_sequences`] — the uniform sequence sampler `SampleSeq`
//!   (Algorithm 1 / Lemma 6.2) and its singleton variant (Lemma E.9).
//! * [`sample_operations`] — the uniform-operations random walk
//!   (Lemmas 7.2 and D.7).
//! * [`bounds`] — the polynomial lower bounds on the target quantities
//!   (Lemmas 5.3, 6.3, E.3, E.10, D.8 and Proposition 7.3).
//! * [`montecarlo`] — Monte-Carlo estimation: fixed-sample-size estimators
//!   and the Dagum–Karp–Luby–Ross optimal stopping rule.
//! * [`budget`] — run budgets for the estimation loops: draw caps,
//!   wall-clock deadlines, cooperative cancellation, and the achieved
//!   `(ε′, δ)` bound of an interrupted run.
//! * [`fpras`] — the end-to-end FPRAS drivers of Theorems 5.1(2), 6.1(2),
//!   7.1(2), 7.5, E.1(2) and E.8(2), with the constraint-class requirements
//!   of each theorem enforced at run time.
//! * [`stream`] — sliding-window continuous CQA: a windowed estimator
//!   that slides facts out of a count- or tick-based window, refreshes
//!   the derived structures by changelog replay, and reuses converged
//!   draws for entries whose lineage fingerprint is unchanged.
//! * [`chaos`] (feature `chaos`) — deterministic fault injection for
//!   robustness testing: skewed clocks and adversarial experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod bounds;
pub mod budget;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod counting;
pub mod error;
pub mod exact;
pub mod fpras;
pub mod montecarlo;
pub mod random;
pub mod sample_operations;
pub mod sample_repairs;
pub mod sample_sequences;
pub mod stream;

pub use budget::{
    AchievedBound, BudgetStatus, CancelToken, Clock, EstimateOutcome, ManualClock, QueryOutcome,
    RunBudget,
};
pub use error::CoreError;
pub use exact::ExactSolver;
pub use fpras::{ApproximationParams, BatchEstimator, BatchQuery, Estimate, OcqaEstimator};
pub use stream::{TickOutcome, TickReport, WindowSpec, WindowedEstimator};

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::{
        AchievedBound, ApproximationParams, BatchEstimator, BatchQuery, BudgetStatus, CancelToken,
        CoreError, Estimate, EstimateOutcome, ExactSolver, OcqaEstimator, QueryOutcome, RunBudget,
        TickOutcome, TickReport, WindowSpec, WindowedEstimator,
    };
}
