//! # `ucqa-core`
//!
//! Exact and approximate uniform operational consistent query answering —
//! the algorithmic contribution of the paper (Sections 5–7 and
//! Appendices B–E):
//!
//! * [`exact`] — exact solvers for `OCQA`, `RRFreq`, `SRFreq` and their
//!   singleton-operation variants, based on the explicit constructions of
//!   `ucqa-repair` (exponential; ground truth for small instances).
//! * [`counting`] — polynomial counting for primary keys: `|CORep(D, Σ)|`
//!   (Lemma 5.2), `|CORep¹(D, Σ)|` (Lemma E.2) and the `|CRS(D, Σ)|`
//!   dynamic program of Lemma C.1.
//! * [`sample_repairs`] — the uniform repair samplers `SampleRep`
//!   (Lemma 5.2) and `SampleRep¹` (Lemma E.2).
//! * [`sample_sequences`] — the uniform sequence sampler `SampleSeq`
//!   (Algorithm 1 / Lemma 6.2) and its singleton variant (Lemma E.9).
//! * [`sample_operations`] — the uniform-operations random walk
//!   (Lemmas 7.2 and D.7).
//! * [`bounds`] — the polynomial lower bounds on the target quantities
//!   (Lemmas 5.3, 6.3, E.3, E.10, D.8 and Proposition 7.3).
//! * [`montecarlo`] — Monte-Carlo estimation: fixed-sample-size estimators
//!   and the Dagum–Karp–Luby–Ross optimal stopping rule.
//! * [`fpras`] — the end-to-end FPRAS drivers of Theorems 5.1(2), 6.1(2),
//!   7.1(2), 7.5, E.1(2) and E.8(2), with the constraint-class requirements
//!   of each theorem enforced at run time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod counting;
pub mod error;
pub mod exact;
pub mod fpras;
pub mod montecarlo;
pub mod random;
pub mod sample_operations;
pub mod sample_repairs;
pub mod sample_sequences;

pub use error::CoreError;
pub use exact::ExactSolver;
pub use fpras::{ApproximationParams, BatchEstimator, BatchQuery, Estimate, OcqaEstimator};

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::{
        ApproximationParams, BatchEstimator, BatchQuery, CoreError, Estimate, ExactSolver,
        OcqaEstimator,
    };
}
