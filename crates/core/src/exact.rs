//! Exact solvers for OCQA, RRFreq and SRFreq.
//!
//! These enumerate the candidate repairs / complete sequences / the full
//! repairing Markov chain explicitly and are therefore exponential in
//! `|D|`.  They serve three purposes: (i) ground truth for the samplers and
//! FPRAS drivers on small instances, (ii) reproduction of the paper's
//! worked examples with exact rational arithmetic, and (iii) the
//! "intractable baseline" of the scaling experiments.

use ucqa_db::{Database, FactSet, FdSet, Value};
use ucqa_numeric::{Natural, Ratio};
use ucqa_query::QueryEvaluator;
use ucqa_repair::{
    GeneratorSpec, OperationalSemantics, RepairingTree, TreeLimits, UniformSemantics,
};

use crate::CoreError;

/// Exact (enumeration-based) uniform operational CQA over one database and
/// constraint set.
#[derive(Debug, Clone, Copy)]
pub struct ExactSolver<'a> {
    db: &'a Database,
    sigma: &'a FdSet,
    limits: TreeLimits,
}

impl<'a> ExactSolver<'a> {
    /// Creates an exact solver with default tree limits.
    pub fn new(db: &'a Database, sigma: &'a FdSet) -> Self {
        ExactSolver {
            db,
            sigma,
            limits: TreeLimits::default(),
        }
    }

    /// Overrides the tree-size guard.
    pub fn with_limits(mut self, limits: TreeLimits) -> Self {
        self.limits = limits;
        self
    }

    /// The candidate operational repairs `CORep(D, Σ)` (or the singleton
    /// variant `CORep¹(D, Σ)`).
    pub fn candidate_repairs(&self, singleton_only: bool) -> Result<Vec<FactSet>, CoreError> {
        let tree = RepairingTree::build(self.db, self.sigma, singleton_only, self.limits)?;
        Ok(tree.candidate_repairs())
    }

    /// `|CORep(D, Σ)|` (or `|CORep¹(D, Σ)|`) by enumeration.
    pub fn candidate_repair_count(&self, singleton_only: bool) -> Result<Natural, CoreError> {
        Ok(Natural::from(self.candidate_repairs(singleton_only)?.len()))
    }

    /// `|CRS(D, Σ)|` (or `|CRS¹(D, Σ)|`) by enumeration.
    pub fn complete_sequence_count(&self, singleton_only: bool) -> Result<Natural, CoreError> {
        let tree = RepairingTree::build(self.db, self.sigma, singleton_only, self.limits)?;
        Ok(Natural::from(tree.leaf_count()))
    }

    /// The repair relative frequency `rrfreq_{Σ,Q}(D, c̄)` (Section 5):
    /// the fraction of candidate repairs that entail `Q(c̄)`.
    ///
    /// With `singleton_only = true` this is `rrfreq¹` (Appendix E.1), i.e.
    /// `OCQA(Σ, M^{ur,1}, Q)`.
    pub fn rrfreq(
        &self,
        evaluator: &QueryEvaluator,
        candidate: &[Value],
        singleton_only: bool,
    ) -> Result<Ratio, CoreError> {
        let repairs = self.candidate_repairs(singleton_only)?;
        let total = repairs.len() as u64;
        let mut entailing = 0u64;
        for repair in &repairs {
            if evaluator.has_answer(self.db, repair, candidate)? {
                entailing += 1;
            }
        }
        Ok(Ratio::from_u64(entailing, total))
    }

    /// The sequence relative frequency `srfreq_{Σ,Q}(D, c̄)` (Section 6):
    /// the fraction of complete repairing sequences whose result entails
    /// `Q(c̄)`.
    ///
    /// With `singleton_only = true` this is `srfreq¹` (Appendix E.2), i.e.
    /// `OCQA(Σ, M^{us,1}, Q)`.
    pub fn srfreq(
        &self,
        evaluator: &QueryEvaluator,
        candidate: &[Value],
        singleton_only: bool,
    ) -> Result<Ratio, CoreError> {
        let tree = RepairingTree::build(self.db, self.sigma, singleton_only, self.limits)?;
        let total = tree.leaf_count() as u64;
        let mut entailing = 0u64;
        for &leaf in tree.leaves() {
            if evaluator.has_answer(self.db, tree.subset(leaf), candidate)? {
                entailing += 1;
            }
        }
        Ok(Ratio::from_u64(entailing, total))
    }

    /// The exact answer probability `P_{M_Σ,Q}(D, c̄)` for any of the five
    /// uniform generators, via the explicit repairing Markov chain.
    pub fn answer_probability(
        &self,
        spec: GeneratorSpec,
        evaluator: &QueryEvaluator,
        candidate: &[Value],
    ) -> Result<Ratio, CoreError> {
        let chain = spec.build_chain(self.db, self.sigma, self.limits)?;
        let semantics = OperationalSemantics::from_chain(&chain);
        Ok(semantics.answer_probability(self.db, evaluator, candidate)?)
    }

    /// Batched [`ExactSolver::answer_probability`]: the exact answer
    /// probabilities of a whole query bank from **one** chain construction
    /// and one pass over `⟦D⟧_{M_Σ}` — the exact ground truth the batched
    /// FPRAS drivers ([`crate::fpras::BatchEstimator`]) are validated
    /// against.
    pub fn answer_probabilities(
        &self,
        spec: GeneratorSpec,
        queries: &[(&QueryEvaluator, &[Value])],
    ) -> Result<Vec<Ratio>, CoreError> {
        let chain = spec.build_chain(self.db, self.sigma, self.limits)?;
        let semantics = OperationalSemantics::from_chain(&chain);
        Ok(semantics.answer_probabilities(self.db, queries)?)
    }

    /// The full operational semantics `⟦D⟧_{M_Σ}` under a uniform
    /// generator.
    pub fn semantics(&self, spec: GeneratorSpec) -> Result<OperationalSemantics, CoreError> {
        let chain = spec.build_chain(self.db, self.sigma, self.limits)?;
        Ok(OperationalSemantics::from_chain(&chain))
    }

    /// Convenience: the exact answer probability expressed through the
    /// relative-frequency reformulations where they apply (uniform repairs
    /// → `rrfreq`, uniform sequences → `srfreq`), and through the chain
    /// otherwise.  Used to cross-check the two formulations in tests.
    pub fn answer_probability_via_frequencies(
        &self,
        spec: GeneratorSpec,
        evaluator: &QueryEvaluator,
        candidate: &[Value],
    ) -> Result<Ratio, CoreError> {
        match spec.semantics {
            UniformSemantics::Repairs => self.rrfreq(evaluator, candidate, spec.singleton_only),
            UniformSemantics::Sequences => self.srfreq(evaluator, candidate, spec.singleton_only),
            UniformSemantics::Operations => self.answer_probability(spec, evaluator, candidate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucqa_db::{FunctionalDependency, Schema};
    use ucqa_query::parser::parse_query;

    fn running_example() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B", "C"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::str("a1"), Value::str("b1"), Value::str("c1")])
            .unwrap();
        db.insert_values("R", [Value::str("a1"), Value::str("b2"), Value::str("c2")])
            .unwrap();
        db.insert_values("R", [Value::str("a2"), Value::str("b1"), Value::str("c2")])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["C"], &["B"]).unwrap());
        (db, sigma)
    }

    /// The Figure 2 database (blocks 3, 1, 2) with its single primary key.
    fn figure2() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A1", "A2"]).unwrap();
        let mut db = Database::with_schema(schema);
        for (a, b) in [
            ("a1", "b1"),
            ("a1", "b2"),
            ("a1", "b3"),
            ("a2", "b1"),
            ("a3", "b1"),
            ("a3", "b2"),
        ] {
            db.insert_values("R", [Value::str(a), Value::str(b)])
                .unwrap();
        }
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A1"], &["A2"]).unwrap());
        (db, sigma)
    }

    #[test]
    fn running_example_counts() {
        let (db, sigma) = running_example();
        let solver = ExactSolver::new(&db, &sigma);
        assert_eq!(
            solver.candidate_repair_count(false).unwrap().to_u64(),
            Some(5)
        );
        assert_eq!(
            solver.complete_sequence_count(false).unwrap().to_u64(),
            Some(9)
        );
        assert_eq!(
            solver.candidate_repair_count(true).unwrap().to_u64(),
            Some(4)
        );
    }

    #[test]
    fn figure2_counts_match_paper() {
        let (db, sigma) = figure2();
        let solver = ExactSolver::new(&db, &sigma);
        // Example B.2: 12 candidate repairs; Example C.2: 99 sequences.
        assert_eq!(
            solver.candidate_repair_count(false).unwrap().to_u64(),
            Some(12)
        );
        assert_eq!(
            solver.complete_sequence_count(false).unwrap().to_u64(),
            Some(99)
        );
    }

    #[test]
    fn example_b3_rrfreq_is_one_quarter() {
        // Example B.3: Q(x) = Ans(x) :- R(a1, x), candidate b1 →
        // rrfreq = 3/12 = 1/4.
        let (db, sigma) = figure2();
        let solver = ExactSolver::new(&db, &sigma);
        let q = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let rrfreq = solver
            .rrfreq(&evaluator, &[Value::str("b1")], false)
            .unwrap();
        assert_eq!(rrfreq, Ratio::from_u64(1, 4));
    }

    #[test]
    fn example_c3_srfreq_is_24_over_99() {
        // Example C.3: 24 of the 99 complete sequences keep R(a1, b1).
        let (db, sigma) = figure2();
        let solver = ExactSolver::new(&db, &sigma);
        let q = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let srfreq = solver
            .srfreq(&evaluator, &[Value::str("b1")], false)
            .unwrap();
        assert_eq!(srfreq, Ratio::from_u64(24, 99));
    }

    #[test]
    fn frequency_reformulations_agree_with_chain_probabilities() {
        // P_{M^ur,Q} = rrfreq and P_{M^us,Q} = srfreq (Sections 5 and 6).
        let (db, sigma) = figure2();
        let solver = ExactSolver::new(&db, &sigma);
        let q = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let candidate = [Value::str("b1")];
        for spec in [
            GeneratorSpec::uniform_repairs(),
            GeneratorSpec::uniform_sequences(),
            GeneratorSpec::uniform_repairs().with_singleton_only(),
            GeneratorSpec::uniform_sequences().with_singleton_only(),
        ] {
            let via_chain = solver
                .answer_probability(spec, &evaluator, &candidate)
                .unwrap();
            let via_freq = solver
                .answer_probability_via_frequencies(spec, &evaluator, &candidate)
                .unwrap();
            assert_eq!(via_chain, via_freq, "spec {}", spec.short_name());
        }
    }

    #[test]
    fn singleton_rrfreq_uses_singleton_repairs_only() {
        // Under singleton operations every block keeps exactly one fact, so
        // |CORep¹| = 3 · 1 · 2 = 6 and R(a1,b1) survives in 2 of them.
        let (db, sigma) = figure2();
        let solver = ExactSolver::new(&db, &sigma);
        assert_eq!(
            solver.candidate_repair_count(true).unwrap().to_u64(),
            Some(6)
        );
        let q = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let rrfreq1 = solver
            .rrfreq(&evaluator, &[Value::str("b1")], true)
            .unwrap();
        assert_eq!(rrfreq1, Ratio::from_u64(1, 3));
    }

    #[test]
    fn tree_limit_propagates_as_error() {
        let (db, sigma) = figure2();
        let solver = ExactSolver::new(&db, &sigma).with_limits(TreeLimits { max_nodes: 3 });
        assert!(matches!(
            solver.candidate_repair_count(false),
            Err(CoreError::Repair(_))
        ));
    }
}
