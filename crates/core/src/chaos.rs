//! Deterministic fault injection for robustness testing (feature `chaos`).
//!
//! Estimation under a [`RunBudget`] must degrade
//! gracefully no matter *when* it is interrupted or *how* the host
//! misbehaves: a skewed clock, an adversarial hit pattern, a compile
//! budget starving bank compilation into evaluator fallback.  This module
//! packages those faults as **seeded, reproducible** injectors — the same
//! SplitMix64 discipline the parallel sharding uses — so a failing
//! combination can be replayed from its seed alone:
//!
//! * [`FaultPlan`] — a seeded stream of fault decisions: truncation
//!   points, clock-skew magnitudes, adversarial hit patterns.
//! * [`SkewedClock`] — a [`Clock`] whose `elapsed()` jumps forward by
//!   deterministic pseudo-random increments, modelling a host clock that
//!   stalls and leaps (NTP step, VM pause) instead of ticking smoothly.
//! * [`AdversarialExperiment`] — a [`StoppingBatchExperiment`] emitting
//!   deterministic worst-case hit patterns (all-hit, no-hit, alternating,
//!   pseudo-random) without consuming the RNG, stressing the budgeted
//!   stopping loop's retirement and truncation logic.
//! * [`starved_compile_budget`] — a budget whose compile-step cap forces
//!   the witness-cap fallback on every bank entry.
//!
//! The property tests at the bottom of this module assert the three
//! robustness invariants of the budget subsystem: no fault/budget
//! combination panics, an unconstrained budget is bit-identical to the
//! unbudgeted paths, and partial results at any truncation point stay
//! within their reported achieved bound.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use rand::Rng;

use crate::budget::{Clock, RunBudget};
use crate::montecarlo::StoppingBatchExperiment;

/// One SplitMix64 round — the same mixer the parallel shard seeding uses,
/// so fault streams are decorrelated across nearby seeds.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, reproducible stream of fault decisions.
///
/// Every fault a test injects — where to truncate, how far the clock
/// leaps, which adversarial pattern to emit — is derived from the plan's
/// seed, never from ambient randomness, so a failing combination replays
/// from the seed alone.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    state: u64,
}

impl FaultPlan {
    /// A fault plan deriving every decision from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan { state: seed }
    }

    /// The next raw 64-bit fault word.
    pub fn next_word(&mut self) -> u64 {
        splitmix(&mut self.state)
    }

    /// A truncation point in `[1, max_draws]` — the draw index at which a
    /// cancellation token should trip or a draw cap should bite.
    pub fn truncation_point(&mut self, max_draws: u64) -> u64 {
        1 + self.next_word() % max_draws.max(1)
    }

    /// A skewed clock whose per-observation leaps average `mean_step`
    /// (each leap is uniform in `[0, 2 × mean_step]`).
    pub fn skewed_clock(&mut self, mean_step: Duration) -> SkewedClock {
        SkewedClock::new(self.next_word(), mean_step)
    }

    /// An adversarial experiment over `queries` variables whose hit
    /// pattern is chosen by the plan.
    pub fn adversarial_experiment(&mut self, queries: usize) -> AdversarialExperiment {
        let pattern = match self.next_word() % 4 {
            0 => HitPattern::AllHit,
            1 => HitPattern::NoHit,
            2 => HitPattern::Alternating,
            _ => HitPattern::PseudoRandom(self.next_word()),
        };
        AdversarialExperiment::new(queries, pattern)
    }
}

/// A [`Clock`] that leaps forward by deterministic pseudo-random
/// increments on every observation.
///
/// Models the hostile end of real hosts — an NTP step, a suspended VM, a
/// scheduler stall — where elapsed time observed by the estimation loop
/// jumps rather than ticks.  Each `elapsed()` call advances the clock by a
/// seeded uniform increment in `[0, 2 × mean_step]`, so a deadline is
/// always eventually exceeded and the observation sequence is reproducible
/// from the seed.
#[derive(Debug)]
pub struct SkewedClock {
    state: AtomicU64,
    elapsed_nanos: AtomicU64,
    max_step_nanos: u64,
}

impl SkewedClock {
    /// A skewed clock whose leaps average `mean_step`.
    pub fn new(seed: u64, mean_step: Duration) -> Self {
        let max_step_nanos = u64::try_from(mean_step.as_nanos().saturating_mul(2))
            .unwrap_or(u64::MAX)
            .max(1);
        SkewedClock {
            state: AtomicU64::new(seed),
            elapsed_nanos: AtomicU64::new(0),
            max_step_nanos,
        }
    }
}

impl Clock for SkewedClock {
    fn elapsed(&self) -> Duration {
        // Relaxed suffices: the skew stream needs no ordering with other
        // memory, only per-clock reproducibility, and the budgeted loops
        // observe the clock from one thread at a time.
        let mut state = self.state.load(Ordering::Relaxed);
        let step = splitmix(&mut state) % self.max_step_nanos;
        self.state.store(state, Ordering::Relaxed);
        let total = self
            .elapsed_nanos
            .fetch_add(step, Ordering::Relaxed)
            .saturating_add(step);
        Duration::from_nanos(total)
    }
}

/// The hit pattern an [`AdversarialExperiment`] emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitPattern {
    /// Every query hits on every draw (instant convergence pressure).
    AllHit,
    /// No query ever hits (guaranteed truncation at the cut-off).
    NoHit,
    /// Query `q` hits on draw `t` iff `t + q` is even (lockstep retirement
    /// at staggered offsets).
    Alternating,
    /// Seeded pseudo-random hits, about half the draws per query.
    PseudoRandom(u64),
}

/// A [`StoppingBatchExperiment`] emitting a deterministic adversarial hit
/// pattern and consuming **no randomness** — the degenerate inputs
/// (certain queries, impossible queries, lockstep retirement cascades)
/// that stress the budgeted stopping loop's bookkeeping rather than its
/// statistics.
#[derive(Debug, Clone)]
pub struct AdversarialExperiment {
    queries: usize,
    pattern: HitPattern,
    draw: u64,
    retired: Vec<bool>,
}

impl AdversarialExperiment {
    /// An experiment over `queries` variables emitting `pattern`.
    pub fn new(queries: usize, pattern: HitPattern) -> Self {
        AdversarialExperiment {
            queries,
            pattern,
            draw: 0,
            retired: vec![false; queries],
        }
    }

    /// How many draws have been emitted so far.
    pub fn draws(&self) -> u64 {
        self.draw
    }

    /// Which queries the driver has retired (used by the property tests to
    /// check retirement is announced exactly once).
    pub fn retired(&self) -> &[bool] {
        &self.retired
    }
}

impl<R: Rng + ?Sized> StoppingBatchExperiment<R> for AdversarialExperiment {
    fn draw(&mut self, _rng: &mut R, hits: &mut [bool]) {
        self.draw += 1;
        for (q, hit) in hits.iter_mut().enumerate().take(self.queries) {
            *hit = match self.pattern {
                HitPattern::AllHit => true,
                HitPattern::NoHit => false,
                HitPattern::Alternating => (self.draw + q as u64).is_multiple_of(2),
                HitPattern::PseudoRandom(seed) => {
                    let mut state = seed ^ self.draw.wrapping_mul(0x2545_F491_4F6C_DD1D);
                    splitmix(&mut state).is_multiple_of(q as u64 + 2)
                }
            };
        }
    }

    fn retire(&mut self, query: usize) {
        self.retired[query] = true;
    }
}

/// A [`RunBudget`] whose compile-step cap is so small that **every** bank
/// entry degrades to the witness-cap fallback: estimation still answers
/// through the backtracking evaluator, just without the word-level bitset
/// fast path.  The sampling side of the budget is unconstrained.
pub fn starved_compile_budget() -> RunBudget {
    RunBudget::unlimited().with_max_compile_steps(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{BudgetStatus, CancelToken};
    use crate::exact::ExactSolver;
    use crate::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
    use crate::montecarlo::estimate_stopping_batch_budgeted;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use ucqa_db::{Database, FdSet, FunctionalDependency, Schema, Value};
    use ucqa_query::parser::parse_query;
    use ucqa_query::QueryEvaluator;
    use ucqa_repair::GeneratorSpec;

    fn figure2() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A1", "A2"]).unwrap();
        let mut db = Database::with_schema(schema);
        for (a, b) in [
            ("a1", "b1"),
            ("a1", "b2"),
            ("a1", "b3"),
            ("a2", "b1"),
            ("a3", "b1"),
            ("a3", "b2"),
        ] {
            db.insert_values("R", [Value::str(a), Value::str(b)])
                .unwrap();
        }
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A1"], &["A2"]).unwrap());
        (db, sigma)
    }

    fn all_specs() -> Vec<GeneratorSpec> {
        vec![
            GeneratorSpec::uniform_repairs(),
            GeneratorSpec::uniform_repairs().with_singleton_only(),
            GeneratorSpec::uniform_sequences(),
            GeneratorSpec::uniform_sequences().with_singleton_only(),
            GeneratorSpec::uniform_operations(),
            GeneratorSpec::uniform_operations().with_singleton_only(),
        ]
    }

    /// Robustness invariant (a): no seeded fault/budget combination
    /// panics, and the reported statuses are always consistent with the
    /// budget that produced them.
    #[test]
    fn no_fault_and_budget_combination_panics() {
        for seed in 0..32u64 {
            let mut plan = FaultPlan::new(seed);
            let k = 1 + (plan.next_word() % 4) as usize;
            let targets: Vec<u64> = (0..k).map(|_| 1 + plan.next_word() % 20).collect();
            let max_samples = 1 + plan.next_word() % 500;
            let (budget, draw_cap) = match plan.next_word() % 5 {
                0 => (RunBudget::unlimited(), None),
                1 => {
                    let cap = plan.next_word() % 300;
                    (RunBudget::unlimited().with_max_draws(cap), Some(cap))
                }
                2 => (
                    RunBudget::unlimited().with_cancel_token(CancelToken::tripped_at_draw(
                        plan.truncation_point(300),
                    )),
                    None,
                ),
                3 => {
                    let clock = Arc::new(plan.skewed_clock(Duration::from_millis(10)));
                    (
                        RunBudget::unlimited()
                            .with_deadline_and_clock(Duration::from_millis(25), clock)
                            .with_check_interval(1 + plan.next_word() % 64),
                        None,
                    )
                }
                _ => {
                    let token = CancelToken::new();
                    if plan.next_word().is_multiple_of(2) {
                        token.cancel();
                    }
                    let cap = plan.next_word() % 100;
                    (
                        RunBudget::unlimited()
                            .with_max_draws(cap)
                            .with_cancel_token(token),
                        Some(cap),
                    )
                }
            };
            let mut experiment = plan.adversarial_experiment(k);
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = estimate_stopping_batch_budgeted(
                &mut rng,
                &targets,
                max_samples,
                &budget,
                &mut experiment,
                None,
            );
            assert_eq!(outcome.outcomes.len(), k, "seed {seed}");
            assert!(outcome.total_samples <= max_samples, "seed {seed}");
            if let Some(cap) = draw_cap {
                assert!(outcome.total_samples <= cap, "seed {seed}");
            }
            for (q, target) in targets.iter().enumerate() {
                let o = &outcome.outcomes[q];
                assert!(o.samples <= outcome.total_samples, "seed {seed}");
                assert!(o.successes <= o.samples, "seed {seed}");
                match outcome.statuses[q] {
                    BudgetStatus::Converged => {
                        assert!(!o.truncated && o.successes >= *target, "seed {seed}")
                    }
                    _ => assert!(o.truncated, "seed {seed}"),
                }
                // Retirement is announced exactly for the converged
                // queries.
                assert_eq!(
                    experiment.retired()[q],
                    outcome.statuses[q] == BudgetStatus::Converged && o.successes >= *target,
                    "seed {seed}, query {q}"
                );
            }
        }
    }

    /// Robustness invariant (a), end-to-end: seeded faults driven through
    /// the public FPRAS entry points never panic either, including the
    /// starved compile budget and mid-stream cancellation plus resume.
    #[test]
    fn end_to_end_faulted_estimation_never_panics() {
        let (db, sigma) = figure2();
        let lookup = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let lookup = QueryEvaluator::new(lookup);
        let b1 = [Value::str("b1")];
        let queries = [BatchQuery::new(&lookup, &b1)];
        let params = ApproximationParams::new(0.3, 0.3)
            .unwrap()
            .with_mode(EstimatorMode::OptimalStopping { max_samples: 2_000 });
        for seed in 0..8u64 {
            let mut plan = FaultPlan::new(seed);
            for spec in all_specs() {
                let batch = BatchEstimator::new(&db, &sigma, spec).unwrap();
                let cut = plan.truncation_point(1_000);
                let budget =
                    starved_compile_budget().with_cancel_token(CancelToken::tripped_at_draw(cut));
                let mut rng = StdRng::seed_from_u64(seed);
                let partial = batch
                    .estimate_stopping_batch_with_budget(&queries, params, &budget, &mut rng)
                    .unwrap();
                let resumed = batch
                    .estimate_stopping_batch_resume(
                        &queries,
                        params,
                        &RunBudget::unlimited(),
                        &partial,
                        &mut rng,
                    )
                    .unwrap();
                for q in &resumed.queries {
                    assert!(
                        q.status == BudgetStatus::Converged
                            || q.status == BudgetStatus::BudgetExhausted,
                        "seed {seed}, spec {}",
                        spec.short_name()
                    );
                }
            }
        }
    }

    /// Robustness invariant (b): attaching chaos machinery without letting
    /// it fire — a skewed clock but no deadline, an untripped token — is
    /// bit-identical to the plain unbudgeted paths, across all six specs.
    #[test]
    fn dormant_faults_leave_estimates_bit_identical() {
        let (db, sigma) = figure2();
        let lookup = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let lookup = QueryEvaluator::new(lookup);
        let b1 = [Value::str("b1")];
        let queries = [BatchQuery::new(&lookup, &b1)];
        let params = ApproximationParams::new(0.25, 0.2).unwrap().with_mode(
            EstimatorMode::OptimalStopping {
                max_samples: 200_000,
            },
        );
        let mut plan = FaultPlan::new(99);
        // A skewed clock is installed but no deadline references it, and
        // the cancel token never trips: the budget machinery runs its
        // checks yet every decision is "keep going".
        let dormant = RunBudget::unlimited().with_cancel_token(CancelToken::new());
        let _clock = plan.skewed_clock(Duration::from_millis(1));
        for spec in all_specs() {
            let batch = BatchEstimator::new(&db, &sigma, spec).unwrap();
            let plain = batch
                .estimate_stopping_batch(&queries, params, &mut StdRng::seed_from_u64(7))
                .unwrap();
            let budgeted = batch
                .estimate_stopping_batch_with_budget(
                    &queries,
                    params,
                    &dormant,
                    &mut StdRng::seed_from_u64(7),
                )
                .unwrap();
            assert_eq!(
                (
                    budgeted.queries[0].estimate,
                    budgeted.queries[0].samples,
                    budgeted.queries[0].successes,
                ),
                (plain[0].value, plain[0].samples, plain[0].successes),
                "spec {}",
                spec.short_name()
            );
        }
    }

    /// Robustness invariant (c): under seeded truncation points *and* the
    /// starved compile budget, the partial estimate stays within its
    /// reported achieved additive bound of the exact probability, for
    /// every generator spec.
    #[test]
    fn truncated_faulted_estimates_satisfy_their_achieved_bound() {
        let (db, sigma) = figure2();
        let q = parse_query(db.schema(), "Ans(x) :- R('a1', x)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let candidate = [Value::str("b1")];
        let solver = ExactSolver::new(&db, &sigma);
        let params = ApproximationParams::new(0.05, 0.05).unwrap().with_mode(
            EstimatorMode::OptimalStopping {
                max_samples: 10_000_000,
            },
        );
        let mut plan = FaultPlan::new(2024);
        for spec in all_specs() {
            let exact = solver
                .answer_probability(spec, &evaluator, &candidate)
                .unwrap()
                .to_f64();
            let estimator = crate::fpras::OcqaEstimator::new(&db, &sigma, spec).unwrap();
            for _ in 0..3 {
                let cut = 64 + plan.truncation_point(4_000);
                let budget = starved_compile_budget().with_max_draws(cut);
                let outcome = estimator
                    .estimate_with_budget(
                        &evaluator,
                        &candidate,
                        params,
                        &budget,
                        &mut StdRng::seed_from_u64(13),
                    )
                    .unwrap();
                let query = &outcome.queries[0];
                assert_eq!(query.samples, cut, "spec {}", spec.short_name());
                assert!(
                    (query.estimate - exact).abs() <= query.achieved.additive_epsilon,
                    "spec {}, cut {cut}: estimate {} vs exact {exact}, additive ε′ {}",
                    spec.short_name(),
                    query.estimate,
                    query.achieved.additive_epsilon
                );
            }
        }
    }

    /// The skewed clock is monotone, reproducible from its seed, and
    /// eventually exceeds any deadline.
    #[test]
    fn skewed_clock_is_monotone_and_reproducible() {
        let a = SkewedClock::new(5, Duration::from_millis(3));
        let b = SkewedClock::new(5, Duration::from_millis(3));
        let mut last = Duration::ZERO;
        for _ in 0..100 {
            let ta = a.elapsed();
            let tb = b.elapsed();
            assert_eq!(ta, tb);
            assert!(ta >= last);
            last = ta;
        }
        assert!(last >= Duration::from_millis(25), "got {last:?}");
    }

    /// A deadline on a skewed clock interrupts the run without panicking,
    /// at a draw multiple of the check interval.
    #[test]
    fn skewed_clock_deadline_interrupts_at_a_check_boundary() {
        let mut plan = FaultPlan::new(7);
        let clock = Arc::new(plan.skewed_clock(Duration::from_micros(500)));
        let budget = RunBudget::unlimited()
            .with_deadline_and_clock(Duration::from_millis(5), clock)
            .with_check_interval(8);
        let targets = vec![u64::MAX];
        let mut experiment = AdversarialExperiment::new(1, HitPattern::AllHit);
        let mut rng = StdRng::seed_from_u64(0);
        let outcome = estimate_stopping_batch_budgeted(
            &mut rng,
            &targets,
            100_000,
            &budget,
            &mut experiment,
            None,
        );
        assert_eq!(outcome.statuses[0], BudgetStatus::BudgetExhausted);
        assert!(outcome.total_samples < 100_000);
        assert_eq!(outcome.total_samples % 8, 0, "deadline checks are polled");
    }
}
