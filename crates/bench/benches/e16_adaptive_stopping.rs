//! E16 — the adaptive batched stopping rule vs. independent per-query
//! stopping-rule runs, on the multi-FD scaling workload.
//!
//! One iteration estimates a bank of `k` fact-membership queries under
//! per-query Dagum–Karp–Luby–Ross targets `Υ(ε, δ/k)`.  The batched path
//! drives **one** shared repair stream and retires queries as they
//! converge (the stream stops at the *maximum* per-query sample count);
//! the independent baseline pays the *sum*.  `BENCH_e16.json` (produced
//! by the `e16_report` binary) records the same comparison at larger
//! sizes, plus the skewed-bank retirement study.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

use ucqa_core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
use ucqa_query::QueryEvaluator;
use ucqa_repair::GeneratorSpec;
use ucqa_workload::{queries::fact_membership_query_bank, MultiFdWorkload};

fn bench_adaptive_stopping(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_adaptive");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let spec = GeneratorSpec::uniform_operations().with_singleton_only();
    let bank_size = 8usize;
    {
        let facts = 1_000usize;
        let (db, sigma) = MultiFdWorkload::scaling(facts, 42).generate();
        let queries = fact_membership_query_bank(&db, bank_size, 5).expect("valid bank");
        let evaluators: Vec<QueryEvaluator> =
            queries.into_iter().map(QueryEvaluator::new).collect();
        let bank: Vec<BatchQuery<'_>> =
            evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();
        let estimator = BatchEstimator::new(&db, &sigma, spec).expect("FDs with singleton ops");
        let (epsilon, delta) = (0.3, 0.2);
        let adaptive = ApproximationParams::new(epsilon, delta)
            .expect("valid parameters")
            .with_mode(EstimatorMode::OptimalStopping {
                max_samples: 100_000,
            });
        let per_query = ApproximationParams::new(epsilon, delta / bank_size as f64)
            .expect("valid parameters")
            .with_mode(EstimatorMode::OptimalStopping {
                max_samples: 100_000,
            });

        group.bench_with_input(
            BenchmarkId::new("batched_adaptive", facts),
            &facts,
            |b, _| {
                let mut rng = StdRng::seed_from_u64(16);
                b.iter(|| {
                    estimator
                        .estimate_stopping_batch(&bank, adaptive, &mut rng)
                        .expect("estimation succeeds")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("independent_adaptive_x8", facts),
            &facts,
            |b, _| {
                let mut rng = StdRng::seed_from_u64(16);
                b.iter(|| {
                    bank.iter()
                        .map(|q| {
                            estimator
                                .estimator()
                                .estimate(q.evaluator, q.candidate, per_query, &mut rng)
                                .expect("estimation succeeds")
                        })
                        .collect::<Vec<_>>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_adaptive_stopping);
criterion_main!(benches);
