//! E10 — the Proposition 5.5 machinery: Vizing edge colouring, the
//! graph-to-database encoding, and exact independent-set counting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use ucqa_graphs::edge_coloring::misra_gries_edge_coloring;
use ucqa_graphs::independent_sets::count_independent_sets;
use ucqa_graphs::reductions::IndependentSetReduction;
use ucqa_workload::graphs::connected_bounded_degree;

fn bench_reduction_machinery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_independent_set_reduction");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for nodes in [16usize, 64, 256] {
        let graph = connected_bounded_degree(nodes, 5, 3);
        group.bench_with_input(
            BenchmarkId::new("misra_gries_edge_coloring", nodes),
            &graph,
            |b, graph| b.iter(|| black_box(misra_gries_edge_coloring(black_box(graph)))),
        );
        let reduction = IndependentSetReduction::new(graph.max_degree());
        group.bench_with_input(
            BenchmarkId::new("encode_database", nodes),
            &graph,
            |b, graph| b.iter(|| black_box(reduction.database(black_box(graph)))),
        );
    }
    for nodes in [12usize, 18, 24] {
        let graph = connected_bounded_degree(nodes, 4, 5);
        group.bench_with_input(
            BenchmarkId::new("count_independent_sets", nodes),
            &graph,
            |b, graph| b.iter(|| black_box(count_independent_sets(black_box(graph)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reduction_machinery);
criterion_main!(benches);
