//! E3 — the Lemma C.1 dynamic program for `|CRS(D, Σ)|` across block
//! profiles, and the uniform sequence sampler built on top of it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

use ucqa_core::counting::count_complete_sequences;
use ucqa_core::sample_sequences::SequenceSampler;
use ucqa_workload::BlockWorkload;

fn bench_crs_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("e03_crs_counting");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for (blocks, size) in [(4usize, 4usize), (8, 4), (16, 4), (16, 8)] {
        let profile = vec![size; blocks];
        group.bench_with_input(
            BenchmarkId::new("lemma_c1_dp", format!("{blocks}x{size}")),
            &profile,
            |b, profile| b.iter(|| black_box(count_complete_sequences(black_box(profile)))),
        );
    }
    for blocks in [8usize, 16, 32] {
        let (db, sigma) = BlockWorkload::uniform(blocks, 4, 3).generate();
        group.bench_with_input(
            BenchmarkId::new("sequence_sampler_build", db.len()),
            &blocks,
            |b, _| b.iter(|| black_box(SequenceSampler::new(&db, &sigma).expect("primary keys"))),
        );
        let sampler = SequenceSampler::new(&db, &sigma).expect("primary keys");
        group.bench_with_input(
            BenchmarkId::new("sequence_sampler_sample", db.len()),
            &sampler,
            |b, sampler| {
                let mut rng = StdRng::seed_from_u64(5);
                b.iter(|| black_box(sampler.sample_result(&mut rng)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_crs_counting);
criterion_main!(benches);
