//! E2 — candidate-repair counting and the uniform repair sampler
//! (Lemma 5.2) across block workload sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

use ucqa_core::counting;
use ucqa_core::sample_repairs::RepairSampler;
use ucqa_workload::BlockWorkload;

fn bench_repair_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e02_repair_sampler");
    group.sample_size(30);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for blocks in [16usize, 64, 256] {
        let (db, sigma) = BlockWorkload::uniform(blocks, 4, 7).generate();
        let sizes = counting::block_sizes(&db, &sigma, &db.all_facts()).expect("primary keys");
        group.bench_with_input(
            BenchmarkId::new("count_candidate_repairs", db.len()),
            &sizes,
            |b, sizes| b.iter(|| black_box(counting::count_candidate_repairs(black_box(sizes)))),
        );
        let sampler = RepairSampler::new(&db, &sigma).expect("primary keys");
        group.bench_with_input(
            BenchmarkId::new("sample_repair", db.len()),
            &sampler,
            |b, sampler| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| black_box(sampler.sample(&mut rng)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sample_repair_singleton", db.len()),
            &sampler,
            |b, sampler| {
                let mut rng = StdRng::seed_from_u64(2);
                b.iter(|| black_box(sampler.sample_singleton(&mut rng)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_repair_sampling);
criterion_main!(benches);
