//! E15 — batched multi-query estimation vs. independent single-query
//! runs, on the multi-FD scaling workload.
//!
//! One iteration estimates a bank of `k` fact-membership queries with a
//! fixed per-query sample budget.  The batched path draws each
//! operational repair **once** and updates all per-query hit counters
//! against the shared [`ucqa_query::LineageBank`]; the independent
//! baseline runs `k` separate sampler loops (the pre-bank behaviour).
//! `BENCH_e15.json` (produced by the `e15_report` binary) records the
//! same comparison at larger sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

use ucqa_core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
use ucqa_query::QueryEvaluator;
use ucqa_repair::GeneratorSpec;
use ucqa_workload::{queries::fact_membership_query_bank, MultiFdWorkload};

fn bench_batched_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_batch");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let spec = GeneratorSpec::uniform_operations().with_singleton_only();
    for facts in [1_000usize, 5_000] {
        let (db, sigma) = MultiFdWorkload::scaling(facts, 42).generate();
        let queries = fact_membership_query_bank(&db, 8, 5).expect("valid bank");
        let evaluators: Vec<QueryEvaluator> =
            queries.into_iter().map(QueryEvaluator::new).collect();
        let bank: Vec<BatchQuery<'_>> =
            evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();
        let estimator = BatchEstimator::new(&db, &sigma, spec).expect("FDs with singleton ops");
        let samples = if facts <= 1_000 { 200 } else { 50 };
        let params = ApproximationParams::new(0.2, 0.1)
            .expect("valid parameters")
            .with_mode(EstimatorMode::FixedSamples(samples));

        group.bench_with_input(BenchmarkId::new("bank_of_8", facts), &facts, |b, _| {
            let mut rng = StdRng::seed_from_u64(15);
            b.iter(|| {
                estimator
                    .estimate_batch(&bank, params, &mut rng)
                    .expect("estimation succeeds")
            })
        });
        group.bench_with_input(BenchmarkId::new("independent_x8", facts), &facts, |b, _| {
            let mut rng = StdRng::seed_from_u64(15);
            b.iter(|| {
                bank.iter()
                    .map(|q| {
                        estimator
                            .estimator()
                            .estimate(q.evaluator, q.candidate, params, &mut rng)
                            .expect("estimation succeeds")
                    })
                    .collect::<Vec<_>>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batched_estimation);
criterion_main!(benches);
