//! E1 — exact construction of the three uniform Markov chains on the
//! paper's running example (Figure 1) and on slightly larger instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use ucqa_bench::fixtures;
use ucqa_repair::{GeneratorSpec, OperationalSemantics, TreeLimits};
use ucqa_workload::BlockWorkload;

fn bench_exact_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("e01_exact_chain_construction");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));

    let (db, sigma) = fixtures::running_example();
    for spec in [
        GeneratorSpec::uniform_repairs(),
        GeneratorSpec::uniform_sequences(),
        GeneratorSpec::uniform_operations(),
    ] {
        group.bench_with_input(
            BenchmarkId::new("running_example", spec.short_name()),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let chain = spec
                        .build_chain(black_box(&db), black_box(&sigma), TreeLimits::default())
                        .expect("tiny instance");
                    black_box(OperationalSemantics::from_chain(&chain).repair_count())
                })
            },
        );
    }

    // Exact construction cost explodes with the instance size — the reason
    // the paper moves to approximation.
    for blocks in [2usize, 3, 4] {
        let (db, sigma) = BlockWorkload::uniform(blocks, 3, 5).generate();
        group.bench_with_input(
            BenchmarkId::new("uniform_operations_blocks_of_3", blocks),
            &blocks,
            |b, _| {
                b.iter(|| {
                    let chain = GeneratorSpec::uniform_operations()
                        .build_chain(
                            black_box(&db),
                            black_box(&sigma),
                            TreeLimits {
                                max_nodes: 5_000_000,
                            },
                        )
                        .expect("within the node limit");
                    black_box(chain.tree().leaf_count())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact_chains);
criterion_main!(benches);
