//! E7 — the uniform-operations walk and its FPRAS on multi-key workloads
//! (Theorem 7.1(2)): the regime beyond primary keys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

use ucqa_core::fpras::{ApproximationParams, OcqaEstimator};
use ucqa_core::sample_operations::OperationWalkSampler;
use ucqa_query::QueryEvaluator;
use ucqa_repair::GeneratorSpec;
use ucqa_workload::{queries::fact_membership_query, MultiKeyWorkload};

fn bench_uniform_operations_keys(c: &mut Criterion) {
    let mut group = c.benchmark_group("e07_uniform_operations_keys");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for facts in [20usize, 40, 80] {
        let (db, sigma) = MultiKeyWorkload::new(facts, facts / 4, 17).generate();
        let walk = OperationWalkSampler::new(&db, &sigma);
        group.bench_with_input(BenchmarkId::new("walk_sample", facts), &facts, |b, _| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| black_box(walk.sample_result(&mut rng)))
        });
    }
    for facts in [20usize, 40] {
        let (db, sigma) = MultiKeyWorkload::new(facts, facts / 4, 17).generate();
        let query = fact_membership_query(&db, 2).expect("valid query");
        let evaluator = QueryEvaluator::new(query);
        let estimator = OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_operations())
            .expect("keys are supported");
        let params = ApproximationParams::new(0.25, 0.1).expect("valid parameters");
        group.bench_with_input(
            BenchmarkId::new("fpras_epsilon_0.25", facts),
            &facts,
            |b, _| {
                let mut rng = StdRng::seed_from_u64(8);
                b.iter(|| {
                    black_box(
                        estimator
                            .estimate(&evaluator, &[], params, &mut rng)
                            .expect("estimation succeeds"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_uniform_operations_keys);
criterion_main!(benches);
