//! E17 — plan-based witness enumeration vs. the unplanned backtracking
//! baseline, on overlapping-join banks over the multi-FD scaling
//! workload.
//!
//! One iteration compiles a bank of `k` three-atom queries sharing a
//! two-atom prefix into a [`ucqa_query::LineageBank`].  The planned path
//! factors the shared prefix into one scan trie and walks relation-index
//! postings; the baseline runs one body-order backtracking pass per entry
//! over whole-relation scans.  `BENCH_e17.json` (produced by the
//! `e17_report` binary) records the same comparison at larger sizes plus
//! the end-to-end batched estimation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use ucqa_query::{LineageBank, QueryEvaluator};
use ucqa_workload::{queries::overlapping_join_bank, MultiFdWorkload};

fn bench_plan_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_plan");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    for facts in [1_000usize, 5_000] {
        let (db, _) = MultiFdWorkload::scaling(facts, 42).generate();
        db.relation_index(); // one-off index build stays out of the loop
        for bank_size in [8usize, 64] {
            let queries = overlapping_join_bank(&db, bank_size, 2, 7).expect("valid bank");
            let evaluators: Vec<QueryEvaluator> =
                queries.into_iter().map(QueryEvaluator::new).collect();
            let refs: Vec<(&QueryEvaluator, &[ucqa_db::Value])> = evaluators
                .iter()
                .map(|e| (e, &[] as &[ucqa_db::Value]))
                .collect();
            let id = format!("{facts}f_bank{bank_size}");
            group.bench_with_input(BenchmarkId::new("planned_shared", &id), &refs, |b, refs| {
                b.iter(|| LineageBank::compile(&db, refs).expect("compiles"))
            });
            group.bench_with_input(BenchmarkId::new("unplanned", &id), &refs, |b, refs| {
                b.iter(|| LineageBank::compile_unplanned(&db, refs).expect("compiles"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_plan_enumeration);
criterion_main!(benches);
