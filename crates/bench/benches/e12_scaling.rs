//! E12 — the exact-vs-approximate crossover: exact chain construction is
//! exponential in the database size while a single FPRAS run stays
//! polynomial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

use ucqa_core::exact::ExactSolver;
use ucqa_core::fpras::{ApproximationParams, EstimatorMode, OcqaEstimator};
use ucqa_query::QueryEvaluator;
use ucqa_repair::{GeneratorSpec, TreeLimits};
use ucqa_workload::{queries::block_lookup_query, BlockWorkload};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_exact_vs_approximate");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));

    // Exact enumeration: only the smallest instances complete.
    for blocks in [2usize, 3, 4] {
        let (db, sigma) = BlockWorkload::uniform(blocks, 4, 21).generate();
        let (query, candidate) = block_lookup_query(&db, 5).expect("valid query");
        let evaluator = QueryEvaluator::new(query);
        group.bench_with_input(
            BenchmarkId::new("exact_rrfreq", db.len()),
            &db.len(),
            |b, _| {
                let solver = ExactSolver::new(&db, &sigma).with_limits(TreeLimits {
                    max_nodes: 5_000_000,
                });
                b.iter(|| {
                    black_box(
                        solver
                            .rrfreq(&evaluator, &candidate, false)
                            .expect("feasible"),
                    )
                })
            },
        );
    }

    // Approximate answering keeps scaling (fixed 2 000 samples so the
    // benchmark measures per-sample cost growth).
    for blocks in [8usize, 32, 128] {
        let (db, sigma) = BlockWorkload::uniform(blocks, 4, 23).generate();
        let (query, candidate) = block_lookup_query(&db, 5).expect("valid query");
        let evaluator = QueryEvaluator::new(query);
        let estimator = OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_repairs())
            .expect("primary keys");
        let params = ApproximationParams::new(0.2, 0.1)
            .expect("valid parameters")
            .with_mode(EstimatorMode::FixedSamples(2_000));
        group.bench_with_input(
            BenchmarkId::new("approximate_rrfreq_2000_samples", db.len()),
            &db.len(),
            |b, _| {
                let mut rng = StdRng::seed_from_u64(12);
                b.iter(|| {
                    black_box(
                        estimator
                            .estimate(&evaluator, &candidate, params, &mut rng)
                            .expect("estimation succeeds"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
