//! E8 — the singleton-operation walk and its FPRAS on FD workloads
//! (Theorem 7.5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

use ucqa_core::fpras::{ApproximationParams, OcqaEstimator};
use ucqa_core::sample_operations::OperationWalkSampler;
use ucqa_query::QueryEvaluator;
use ucqa_repair::GeneratorSpec;
use ucqa_workload::{queries::fact_membership_query, FdWorkload};

fn bench_fd_singleton(c: &mut Criterion) {
    let mut group = c.benchmark_group("e08_fd_singleton_operations");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for facts in [25usize, 50, 100] {
        let (db, sigma) = FdWorkload::new(facts, facts / 5, 3, 19).generate();
        let walk = OperationWalkSampler::new(&db, &sigma).singleton_only();
        group.bench_with_input(BenchmarkId::new("walk_sample", facts), &facts, |b, _| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| black_box(walk.sample_result(&mut rng)))
        });
    }
    for facts in [25usize, 50] {
        let (db, sigma) = FdWorkload::new(facts, facts / 5, 3, 19).generate();
        let query = fact_membership_query(&db, 1).expect("valid query");
        let evaluator = QueryEvaluator::new(query);
        let estimator = OcqaEstimator::new(
            &db,
            &sigma,
            GeneratorSpec::uniform_operations().with_singleton_only(),
        )
        .expect("FDs with singleton operations");
        let params = ApproximationParams::new(0.25, 0.1).expect("valid parameters");
        group.bench_with_input(
            BenchmarkId::new("fpras_epsilon_0.25", facts),
            &facts,
            |b, _| {
                let mut rng = StdRng::seed_from_u64(10);
                b.iter(|| {
                    black_box(
                        estimator
                            .estimate(&evaluator, &[], params, &mut rng)
                            .expect("estimation succeeds"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fd_singleton);
criterion_main!(benches);
