//! E14 — incremental conflict index vs. per-step violation rescan in the
//! uniform-operations walk, on the multi-FD scaling workload.
//!
//! One iteration is one full walk (a complete repairing sequence drawn
//! from the leaf distribution of `M^uo_Σ(D)`).  The index-backed walk
//! pays O(1) per step plus O(degree) per removed fact against the
//! precomputed [`ucqa_db::ConflictIndex`]; the rescan baseline recomputes
//! `V(D', Σ)` from scratch on every step (O(|D|) per step), which is the
//! pre-index behaviour.  `BENCH_e14.json` (produced by the `e14_report`
//! binary) records the same comparison at larger sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

use ucqa_core::sample_operations::{OperationWalkSampler, WalkScratch};
use ucqa_db::FactSet;
use ucqa_workload::MultiFdWorkload;

fn bench_incremental_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_walk");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    for facts in [1_000usize, 5_000] {
        let (db, sigma) = MultiFdWorkload::scaling(facts, 42).generate();
        let sampler = OperationWalkSampler::new(&db, &sigma);
        group.bench_with_input(BenchmarkId::new("index", facts), &facts, |b, _| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut repair = FactSet::empty(db.len());
            let mut scratch = WalkScratch::new();
            b.iter(|| sampler.sample_result_into(&mut rng, &mut repair, &mut scratch))
        });
        // The rescan baseline is orders of magnitude slower; bench it only
        // at the smallest size to keep the suite fast.
        if facts <= 1_000 {
            group.bench_with_input(BenchmarkId::new("rescan", facts), &facts, |b, _| {
                let mut rng = StdRng::seed_from_u64(7);
                let mut repair = FactSet::empty(db.len());
                let mut scratch = WalkScratch::new();
                b.iter(|| sampler.sample_result_rescan_into(&mut rng, &mut repair, &mut scratch))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_incremental_walk);
criterion_main!(benches);
