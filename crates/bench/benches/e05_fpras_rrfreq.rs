//! E5 — end-to-end FPRAS for uniform repairs (Theorem 5.1(2)) on
//! primary-key block workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

use ucqa_core::fpras::{ApproximationParams, OcqaEstimator};
use ucqa_query::QueryEvaluator;
use ucqa_repair::GeneratorSpec;
use ucqa_workload::{queries::block_lookup_query, BlockWorkload};

fn bench_fpras_rrfreq(c: &mut Criterion) {
    let mut group = c.benchmark_group("e05_fpras_uniform_repairs");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for blocks in [16usize, 64, 256] {
        let (db, sigma) = BlockWorkload::uniform(blocks, 4, 11).generate();
        let (query, candidate) = block_lookup_query(&db, 5).expect("valid query");
        let evaluator = QueryEvaluator::new(query);
        let estimator = OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_repairs())
            .expect("primary keys");
        let params = ApproximationParams::new(0.2, 0.1).expect("valid parameters");
        group.bench_with_input(
            BenchmarkId::new("epsilon_0.2", db.len()),
            &db.len(),
            |b, _| {
                let mut rng = StdRng::seed_from_u64(5);
                b.iter(|| {
                    black_box(
                        estimator
                            .estimate(&evaluator, &candidate, params, &mut rng)
                            .expect("estimation succeeds"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fpras_rrfreq);
criterion_main!(benches);
