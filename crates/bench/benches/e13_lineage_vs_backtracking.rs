//! E13 — compiled lineage vs. backtracking evaluation of the per-sample
//! entailment check, on the e12-style scaling workload.
//!
//! The FPRAS hot loop asks "does this sampled repair entail the query?"
//! millions of times against one fixed database.  This bench isolates that
//! check: a pool of repairs is pre-sampled, then each iteration runs one
//! entailment check via (a) the compiled-lineage witness scan and (b) the
//! backtracking evaluator, at growing database sizes.  A third group
//! measures the end-to-end estimator throughput with the compiled pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

use ucqa_core::fpras::{ApproximationParams, EstimatorMode, OcqaEstimator};
use ucqa_core::sample_repairs::RepairSampler;
use ucqa_db::FactSet;
use ucqa_query::{CompiledLineage, QueryEvaluator};
use ucqa_repair::GeneratorSpec;
use ucqa_workload::{queries::block_lookup_query, BlockWorkload};

/// Pre-samples a pool of repairs to check entailment against.
fn repair_pool(sampler: &RepairSampler, universe: usize, count: usize) -> Vec<FactSet> {
    let mut rng = StdRng::seed_from_u64(4242);
    let mut pool = Vec::with_capacity(count);
    let mut buffer = FactSet::empty(universe);
    for _ in 0..count {
        sampler.sample_into(&mut rng, &mut buffer);
        pool.push(buffer.clone());
    }
    pool
}

fn bench_lineage_vs_backtracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_per_sample_check");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    for blocks in [25usize, 250, 1250] {
        let (db, sigma) = BlockWorkload::uniform(blocks, 4, 23).generate();
        let (query, candidate) = block_lookup_query(&db, 5).expect("valid query");
        let evaluator = QueryEvaluator::new(query);
        let lineage = CompiledLineage::compile(&evaluator, &db, &candidate)
            .expect("arity ok")
            .expect("under witness cap");
        let sampler = RepairSampler::new(&db, &sigma).expect("primary keys");
        let pool = repair_pool(&sampler, db.len(), 64);

        group.bench_with_input(BenchmarkId::new("lineage", db.len()), &db.len(), |b, _| {
            let mut index = 0usize;
            b.iter(|| {
                let repair = &pool[index % pool.len()];
                index += 1;
                black_box(lineage.entails(repair))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("backtracking", db.len()),
            &db.len(),
            |b, _| {
                let mut index = 0usize;
                b.iter(|| {
                    let repair = &pool[index % pool.len()];
                    index += 1;
                    black_box(
                        evaluator
                            .has_answer(&db, repair, &candidate)
                            .expect("arity validated"),
                    )
                })
            },
        );
    }
    group.finish();

    // End-to-end estimator throughput with the compiled pipeline (fixed
    // 2 000 samples, so the per-sample cost growth is what is measured).
    let mut group = c.benchmark_group("e13_estimator_throughput");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for blocks in [25usize, 250, 1250] {
        let (db, sigma) = BlockWorkload::uniform(blocks, 4, 23).generate();
        let (query, candidate) = block_lookup_query(&db, 5).expect("valid query");
        let evaluator = QueryEvaluator::new(query);
        let estimator = OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_repairs())
            .expect("primary keys");
        let params = ApproximationParams::new(0.2, 0.1)
            .expect("valid parameters")
            .with_mode(EstimatorMode::FixedSamples(2_000));
        group.bench_with_input(
            BenchmarkId::new("estimate_2000_samples", db.len()),
            &db.len(),
            |b, _| {
                let mut rng = StdRng::seed_from_u64(12);
                b.iter(|| {
                    black_box(
                        estimator
                            .estimate(&evaluator, &candidate, params, &mut rng)
                            .expect("estimation succeeds"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lineage_vs_backtracking);
criterion_main!(benches);
