//! # `ucqa-bench`
//!
//! The experiment harness of the reproduction.  Every experiment of
//! `EXPERIMENTS.md` (E1–E12) is implemented as a function returning one or
//! more [`report::Table`]s with *paper value vs. measured value* rows; the
//! `experiments` binary prints them, and the Criterion benches reuse the
//! same workloads for timing.
//!
//! Run everything with
//!
//! ```text
//! cargo run -p ucqa-bench --release --bin experiments -- all
//! cargo bench -p ucqa-bench
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use report::Table;

/// Fixtures shared by the experiments, the benches and the examples.
pub mod fixtures {
    use ucqa_db::{Database, FdSet, FunctionalDependency, Schema, Value};

    /// The running example of the paper (Example 3.6 / Figure 1):
    /// `D = {R(a1,b1,c1), R(a1,b2,c2), R(a2,b1,c2)}`,
    /// `Σ = {R : A → B, R : C → B}`.
    pub fn running_example() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema
            .add_relation("R", &["A", "B", "C"])
            .expect("fresh schema");
        let mut db = Database::with_schema(schema);
        for (a, b, c) in [("a1", "b1", "c1"), ("a1", "b2", "c2"), ("a2", "b1", "c2")] {
            db.insert_values("R", [Value::str(a), Value::str(b), Value::str(c)])
                .expect("schema matches");
        }
        let mut sigma = FdSet::new();
        sigma.add(
            FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).expect("valid FD"),
        );
        sigma.add(
            FunctionalDependency::from_names(db.schema(), "R", &["C"], &["B"]).expect("valid FD"),
        );
        (db, sigma)
    }

    /// The Figure 2 database: six facts over `R(A1, A2)` with the primary
    /// key `R : A1 → A2`, forming blocks of sizes 3, 1 and 2.
    pub fn figure2() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema
            .add_relation("R", &["A1", "A2"])
            .expect("fresh schema");
        let mut db = Database::with_schema(schema);
        for (a, b) in [
            ("a1", "b1"),
            ("a1", "b2"),
            ("a1", "b3"),
            ("a2", "b1"),
            ("a3", "b1"),
            ("a3", "b2"),
        ] {
            db.insert_values("R", [Value::str(a), Value::str(b)])
                .expect("schema matches");
        }
        let mut sigma = FdSet::new();
        sigma.add(
            FunctionalDependency::from_names(db.schema(), "R", &["A1"], &["A2"]).expect("valid FD"),
        );
        (db, sigma)
    }
}
