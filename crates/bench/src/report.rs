//! Plain-text tables for the experiment reports.

use std::fmt;

/// A simple column-aligned table with a title and optional footnotes,
/// printed by the `experiments` binary and pasted into `EXPERIMENTS.md`.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (experiment id + description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed below the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row length does not match the header count.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row length must match the header count"
        );
        self.rows.push(row);
    }

    /// Appends a footnote.
    pub fn add_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table as GitHub-flavoured markdown (used to populate
    /// `EXPERIMENTS.md`).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for note in &self.notes {
            out.push_str(&format!("\n*{note}*\n"));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:<width$}", width = widths[i]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            writeln!(f, "{}", cells.join("  "))?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_in_both_formats() {
        let mut table = Table::new("E0 — demo", &["quantity", "paper", "measured"]);
        table.add_row(vec!["|CRS|".into(), "99".into(), "99".into()]);
        table.add_note("exact match");
        let text = table.to_string();
        assert!(text.contains("E0 — demo"));
        assert!(text.contains("99"));
        let md = table.to_markdown();
        assert!(md.contains("| quantity | paper | measured |"));
        assert!(md.contains("*exact match*"));
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn mismatched_row_is_rejected() {
        let mut table = Table::new("bad", &["a", "b"]);
        table.add_row(vec!["only one".into()]);
    }
}
