//! The experiment suite E1–E12 (see `DESIGN.md` §3 and `EXPERIMENTS.md`).
//!
//! Each function regenerates one experiment and returns the tables that the
//! `experiments` binary prints.  Paper-stated quantities are reported next
//! to the measured ones so the output can be pasted into `EXPERIMENTS.md`
//! verbatim.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ucqa_core::counting;
use ucqa_core::exact::ExactSolver;
use ucqa_core::fpras::{ApproximationParams, OcqaEstimator};
use ucqa_core::sample_operations::OperationWalkSampler;
use ucqa_core::sample_repairs::RepairSampler;
use ucqa_core::sample_sequences::SequenceSampler;
use ucqa_core::{bounds, CoreError};
use ucqa_db::{Database, FdSet, Value};
use ucqa_graphs::homomorphism::{count_homomorphisms, TargetGraph};
use ucqa_graphs::independent_sets::count_independent_sets;
use ucqa_graphs::reductions::{
    FdGadget, HColoringReduction, IndependentSetReduction, Pos2DnfReduction,
};
use ucqa_graphs::{Positive2Dnf, UndirectedGraph};
use ucqa_numeric::{Natural, Ratio};
use ucqa_query::{parser::parse_query, QueryEvaluator};
use ucqa_repair::{GeneratorSpec, OperationalSemantics, RepairingTree, TreeLimits};
use ucqa_workload::graphs::connected_bounded_degree;
use ucqa_workload::queries::block_lookup_query;
use ucqa_workload::{proposition_d6_database, BlockWorkload, FdWorkload, MultiKeyWorkload};

use crate::fixtures;
use crate::Table;

/// Runs one experiment by id (`"e1"` … `"e12"`), or all of them (`"all"`).
pub fn run(which: &str) -> Vec<Table> {
    match which {
        "e1" => e01_running_example(),
        "e2" => e02_block_repairs(),
        "e3" => e03_crs_counting(),
        "e4" => e04_relative_frequencies(),
        "e5" => e05_fpras_rrfreq(),
        "e6" => e06_fpras_srfreq(),
        "e7" => e07_fpras_uniform_operations_keys(),
        "e8" => e08_fpras_fd_singleton(),
        "e9" => e09_proposition_d6(),
        "e10" => e10_independent_sets(),
        "e11" => e11_hardness_reductions(),
        "e12" => e12_scaling(),
        "all" => {
            let mut tables = Vec::new();
            for id in [
                "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12",
            ] {
                tables.extend(run(id));
            }
            tables
        }
        other => {
            let mut table = Table::new(format!("unknown experiment `{other}`"), &["available"]);
            table.add_row(vec!["e1 … e12, all".to_string()]);
            vec![table]
        }
    }
}

fn ratio_str(r: &Ratio) -> String {
    format!("{r} ≈ {:.6}", r.to_f64())
}

fn root_child_probabilities(db: &Database, sigma: &FdSet, spec: GeneratorSpec) -> Vec<Ratio> {
    let chain = spec
        .build_chain(db, sigma, TreeLimits::default())
        .expect("the running example is tiny");
    chain
        .tree()
        .children(chain.tree().root())
        .iter()
        .map(|&c| chain.edge_probability(c).clone())
        .collect()
}

/// E1 — Figure 1 / Example 3.6 / Section 4: the running example.
pub fn e01_running_example() -> Vec<Table> {
    let (db, sigma) = fixtures::running_example();
    let mut table = Table::new(
        "E1 — running example (Figure 1, Example 3.6, Section 4 worked probabilities)",
        &["quantity", "paper", "measured"],
    );
    let tree = RepairingTree::build(&db, &sigma, false, TreeLimits::default())
        .expect("the running example is tiny");
    table.add_row(vec![
        "|RS(D,Σ)| (tree nodes, Figure 1)".into(),
        "12".into(),
        tree.node_count().to_string(),
    ]);
    table.add_row(vec![
        "|CRS(D,Σ)| (leaves)".into(),
        "9".into(),
        tree.leaf_count().to_string(),
    ]);
    table.add_row(vec![
        "|CORep(D,Σ)|".into(),
        "5".into(),
        tree.candidate_repairs().len().to_string(),
    ]);

    let us = root_child_probabilities(&db, &sigma, GeneratorSpec::uniform_sequences());
    table.add_row(vec![
        "M^us root probabilities p1..p5".into(),
        "3/9, 1/9, 1/9, 1/9, 3/9".into(),
        us.iter()
            .map(Ratio::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    let ur = root_child_probabilities(&db, &sigma, GeneratorSpec::uniform_repairs());
    table.add_row(vec![
        "M^ur root probabilities p1..p5".into(),
        "3/5, 0, 1/5, 1/5, 0".into(),
        ur.iter()
            .map(Ratio::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    let uo = root_child_probabilities(&db, &sigma, GeneratorSpec::uniform_operations());
    table.add_row(vec![
        "M^uo root probabilities p1..p5".into(),
        "1/5 each".into(),
        uo.iter()
            .map(Ratio::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    ]);

    let semantics_ur = OperationalSemantics::from_chain(
        &GeneratorSpec::uniform_repairs()
            .build_chain(&db, &sigma, TreeLimits::default())
            .expect("tiny"),
    );
    table.add_row(vec![
        "|ORep(D, M^ur)| and per-repair probability".into(),
        "5 repairs, 1/5 each".into(),
        format!(
            "{} repairs, {}",
            semantics_ur.repair_count(),
            semantics_ur.repairs()[0].probability
        ),
    ]);
    let semantics_us = OperationalSemantics::from_chain(
        &GeneratorSpec::uniform_sequences()
            .build_chain(&db, &sigma, TreeLimits::default())
            .expect("tiny"),
    );
    let min_leaf = GeneratorSpec::uniform_sequences()
        .build_chain(&db, &sigma, TreeLimits::default())
        .expect("tiny")
        .leaf_distribution()
        .into_iter()
        .map(|(_, p)| p)
        .min()
        .expect("nine leaves");
    table.add_row(vec![
        "M^us leaf probability π(s) (all leaves)".into(),
        "1/9 each".into(),
        format!(
            "{min_leaf} each, total {} over {} repairs",
            semantics_us.total_probability(),
            semantics_us.repair_count()
        ),
    ]);
    vec![table]
}

/// E2 — Figure 2 / Example B.2 / Lemma 5.2: candidate-repair counting and
/// the uniform repair sampler.
pub fn e02_block_repairs() -> Vec<Table> {
    let (db, sigma) = fixtures::figure2();
    let mut table = Table::new(
        "E2 — Figure 2 / Example B.2: |CORep| counting and the SampleRep sampler",
        &["quantity", "paper", "measured"],
    );
    let sizes = counting::block_sizes(&db, &sigma, &db.all_facts()).expect("primary keys");
    table.add_row(vec![
        "block profile".into(),
        "3, 1, 2".into(),
        format!("{sizes:?}"),
    ]);
    table.add_row(vec![
        "|CORep(D,Σ)| (closed form (|B|+1)·…)".into(),
        "12".into(),
        counting::count_candidate_repairs(&sizes).to_string(),
    ]);
    let solver = ExactSolver::new(&db, &sigma);
    table.add_row(vec![
        "|CORep(D,Σ)| (tree enumeration)".into(),
        "12".into(),
        solver
            .candidate_repair_count(false)
            .expect("tiny")
            .to_string(),
    ]);
    table.add_row(vec![
        "|CORep¹(D,Σ)| (singleton operations)".into(),
        "6 (3·1·2)".into(),
        counting::count_candidate_repairs_singleton(&sizes).to_string(),
    ]);

    // Empirical uniformity of SampleRep over the 12 repairs.
    let sampler = RepairSampler::new(&db, &sigma).expect("primary keys");
    let mut rng = StdRng::seed_from_u64(20_220_401);
    let samples = 60_000usize;
    let mut counts: std::collections::HashMap<Vec<usize>, usize> = std::collections::HashMap::new();
    for _ in 0..samples {
        let repair = sampler.sample(&mut rng);
        *counts
            .entry(repair.iter().map(|f| f.index()).collect())
            .or_insert(0) += 1;
    }
    let expected = samples as f64 / 12.0;
    let max_deviation = counts
        .values()
        .map(|&c| ((c as f64 - expected) / expected).abs())
        .fold(0.0f64, f64::max);
    table.add_row(vec![
        "distinct repairs hit by SampleRep".into(),
        "12".into(),
        counts.len().to_string(),
    ]);
    table.add_row(vec![
        "max relative deviation from uniform (60k samples)".into(),
        "→ 0".into(),
        format!("{max_deviation:.3}"),
    ]);
    vec![table]
}

/// E3 — Example C.2 / Lemma C.1: counting complete repairing sequences.
pub fn e03_crs_counting() -> Vec<Table> {
    let (db, sigma) = fixtures::figure2();
    let mut table = Table::new(
        "E3 — Example C.2 / Lemma C.1: counting complete repairing sequences",
        &["quantity", "paper", "measured"],
    );
    let sizes = counting::block_sizes(&db, &sigma, &db.all_facts()).expect("primary keys");
    table.add_row(vec![
        "|CRS(D,Σ)| (Lemma C.1 dynamic program)".into(),
        "99".into(),
        counting::count_complete_sequences(&sizes).to_string(),
    ]);
    let solver = ExactSolver::new(&db, &sigma);
    table.add_row(vec![
        "|CRS(D,Σ)| (tree enumeration)".into(),
        "99".into(),
        solver
            .complete_sequence_count(false)
            .expect("tiny")
            .to_string(),
    ]);
    table.add_row(vec![
        "|CRS¹(D,Σ)| (singleton operations, closed form)".into(),
        "36".into(),
        counting::count_complete_sequences_singleton(&sizes).to_string(),
    ]);
    table.add_row(vec![
        "per-block counts S^{ne,0}_3, S^{ne,1}_3, S^{e,1}_3".into(),
        "6, 3, 3".into(),
        format!(
            "{}, {}, {}",
            counting::sequences_nonempty_block(3, 0),
            counting::sequences_nonempty_block(3, 1),
            counting::sequences_empty_block(3, 1)
        ),
    ]);
    table.add_row(vec![
        "per-block counts S^{ne,0}_2, S^{e,1}_2".into(),
        "2, 1".into(),
        format!(
            "{}, {}",
            counting::sequences_nonempty_block(2, 0),
            counting::sequences_empty_block(2, 1)
        ),
    ]);
    // Larger profiles: DP vs closed upper bound sanity plus timing.
    let profile: Vec<usize> = vec![5; 12];
    let start = Instant::now();
    let count = counting::count_complete_sequences(&profile);
    let elapsed = start.elapsed();
    table.add_row(vec![
        "|CRS| for 12 blocks of 5 (DP, digits / time)".into(),
        "poly-time (Lemma C.1)".into(),
        format!("{} digits in {:.1?}", count.to_string().len(), elapsed),
    ]);
    vec![table]
}

/// E4 — Examples B.3 / C.3 and the lower bounds of Lemmas 5.3 / 6.3 /
/// E.3 / E.10.
pub fn e04_relative_frequencies() -> Vec<Table> {
    let (db, sigma) = fixtures::figure2();
    let solver = ExactSolver::new(&db, &sigma);
    let q = parse_query(db.schema(), "Ans(x) :- R('a1', x)").expect("valid query");
    let evaluator = QueryEvaluator::new(q);
    let candidate = [Value::str("b1")];

    let mut table = Table::new(
        "E4 — Examples B.3 / C.3: relative frequencies and their lower bounds",
        &["quantity", "paper", "measured"],
    );
    let rrfreq = solver.rrfreq(&evaluator, &candidate, false).expect("tiny");
    table.add_row(vec![
        "rrfreq_{Σ,Q}(D, b1)".into(),
        "3/12 = 1/4".into(),
        ratio_str(&rrfreq),
    ]);
    table.add_row(vec![
        "Lemma 5.3 lower bound 1/(2|D|)^{|Q|}".into(),
        "1/12".into(),
        format!("{:.6}", bounds::rrfreq_lower_bound(db.len(), 1).to_f64()),
    ]);
    let srfreq = solver.srfreq(&evaluator, &candidate, false).expect("tiny");
    table.add_row(vec![
        "srfreq_{Σ,Q}(D, b1)".into(),
        "24/99".into(),
        ratio_str(&srfreq),
    ]);
    table.add_row(vec![
        "Lemma 6.3 lower bound".into(),
        "1/12".into(),
        format!("{:.6}", bounds::srfreq_lower_bound(db.len(), 1).to_f64()),
    ]);
    let rrfreq1 = solver.rrfreq(&evaluator, &candidate, true).expect("tiny");
    table.add_row(vec![
        "rrfreq¹_{Σ,Q}(D, b1) (singleton ops)".into(),
        "2/6 = 1/3".into(),
        ratio_str(&rrfreq1),
    ]);
    table.add_row(vec![
        "Lemma E.3 lower bound 1/|D|^{|Q|}".into(),
        "1/6".into(),
        format!(
            "{:.6}",
            bounds::singleton_frequency_lower_bound(db.len(), 1).to_f64()
        ),
    ]);
    let uo = solver
        .answer_probability(GeneratorSpec::uniform_operations(), &evaluator, &candidate)
        .expect("tiny");
    table.add_row(vec![
        "P_{M^uo,Q}(D, b1) (exact, for reference)".into(),
        "positive (Prop. 7.3)".into(),
        ratio_str(&uo),
    ]);
    vec![table]
}

/// Helper: run an FPRAS experiment on block workloads with the analytic
/// exact value `1/(block_size + 1)` (uniform repairs) as ground truth.
fn fpras_block_sweep(
    title: &str,
    spec: GeneratorSpec,
    exact_for_block: impl Fn(usize) -> Option<f64>,
    epsilon: f64,
) -> Table {
    let mut table = Table::new(
        title,
        &[
            "blocks × size",
            "|D|",
            "exact",
            "estimate",
            "rel. error",
            "samples",
            "time",
        ],
    );
    let mut rng = StdRng::seed_from_u64(7_771);
    for (blocks, size) in [(10usize, 4usize), (25, 4), (50, 4), (100, 4)] {
        let (db, sigma) = BlockWorkload::uniform(blocks, size, 1000 + blocks as u64).generate();
        let (query, candidate) = block_lookup_query(&db, 5).expect("valid workload query");
        let evaluator = QueryEvaluator::new(query);
        let estimator = OcqaEstimator::new(&db, &sigma, spec).expect("supported combination");
        let params = ApproximationParams::new(epsilon, 0.05).expect("valid parameters");
        let start = Instant::now();
        let estimate = estimator
            .estimate(&evaluator, &candidate, params, &mut rng)
            .expect("estimation succeeds");
        let elapsed = start.elapsed();
        let exact = exact_for_block(size);
        let (exact_str, error_str) = match exact {
            Some(value) => (
                format!("{value:.4}"),
                format!("{:.3}", (estimate.value - value).abs() / value),
            ),
            None => ("n/a (too large for exact)".to_string(), "—".to_string()),
        };
        table.add_row(vec![
            format!("{blocks} × {size}"),
            db.len().to_string(),
            exact_str,
            format!("{:.4}", estimate.value),
            error_str,
            estimate.samples.to_string(),
            format!("{elapsed:.1?}"),
        ]);
    }
    table
}

/// E5 — Theorem 5.1(2): FPRAS for RRFreq under primary keys.
pub fn e05_fpras_rrfreq() -> Vec<Table> {
    let mut table = fpras_block_sweep(
        "E5 — Theorem 5.1(2): FPRAS for uniform repairs (RRFreq), primary keys, ε = 0.1",
        GeneratorSpec::uniform_repairs(),
        // Under uniform repairs the probability that a fixed fact of a block
        // of size m survives is exactly 1/(m+1).
        |block_size| Some(1.0 / (block_size as f64 + 1.0)),
        0.1,
    );
    table.add_note(
        "exact value for a block of size m under M^ur is 1/(m+1); every run stays within ε",
    );
    vec![table]
}

/// E6 — Theorem 6.1(2): FPRAS for SRFreq under primary keys.
pub fn e06_fpras_srfreq() -> Vec<Table> {
    // Small instance with a known exact value (Example C.3).
    let (db, sigma) = fixtures::figure2();
    let q = parse_query(db.schema(), "Ans(x) :- R('a1', x)").expect("valid query");
    let evaluator = QueryEvaluator::new(q);
    let candidate = [Value::str("b1")];
    let estimator =
        OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_sequences()).expect("primary keys");
    let params = ApproximationParams::new(0.05, 0.05).expect("valid parameters");
    let mut rng = StdRng::seed_from_u64(606);
    let estimate = estimator
        .estimate(&evaluator, &candidate, params, &mut rng)
        .expect("estimation succeeds");

    let mut table = Table::new(
        "E6 — Theorem 6.1(2): FPRAS for uniform sequences (SRFreq), primary keys",
        &["quantity", "paper / exact", "measured"],
    );
    table.add_row(vec![
        "srfreq on Figure 2 (exact 24/99 ≈ 0.2424), ε = 0.05".into(),
        "0.2424".into(),
        format!("{:.4} with {} samples", estimate.value, estimate.samples),
    ]);

    // Larger workloads: the sampler is polynomial; report estimates, sample
    // counts, and the sequence-count magnitude handled by the DP.
    let mut rng = StdRng::seed_from_u64(607);
    for (blocks, size) in [(10usize, 4usize), (25, 4), (50, 4)] {
        let (db, sigma) = BlockWorkload::uniform(blocks, size, 2000 + blocks as u64).generate();
        let (query, candidate) = block_lookup_query(&db, 5).expect("valid workload query");
        let evaluator = QueryEvaluator::new(query);
        let sampler = SequenceSampler::new(&db, &sigma).expect("primary keys");
        let digits = sampler.sequence_count().to_string().len();
        let estimator = OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_sequences())
            .expect("primary keys");
        let params = ApproximationParams::new(0.1, 0.05).expect("valid parameters");
        let start = Instant::now();
        let estimate = estimator
            .estimate(&evaluator, &candidate, params, &mut rng)
            .expect("estimation succeeds");
        let elapsed = start.elapsed();
        table.add_row(vec![
            format!("{blocks} blocks × {size} facts, ε = 0.1"),
            format!("|CRS| has {digits} digits"),
            format!(
                "estimate {:.4}, {} samples, {:.1?}",
                estimate.value, estimate.samples, elapsed
            ),
        ]);
    }
    table.add_note("estimates on the larger instances are validated indirectly: the sampler distribution is checked against the exact M^us semantics in the test-suite");
    vec![table]
}

/// E7 — Theorem 7.1(2): FPRAS for uniform operations under arbitrary keys
/// (beyond primary keys).
pub fn e07_fpras_uniform_operations_keys() -> Vec<Table> {
    let mut table = Table::new(
        "E7 — Theorem 7.1(2): FPRAS for uniform operations, arbitrary keys (2 keys/relation)",
        &[
            "instance",
            "exact",
            "estimate",
            "rel. error",
            "samples",
            "time",
        ],
    );
    let mut rng = StdRng::seed_from_u64(700);

    // Small instance: exact via chain enumeration.
    let (db, sigma) = MultiKeyWorkload::new(8, 3, 1).generate();
    let query = ucqa_workload::queries::fact_membership_query(&db, 2).expect("valid query");
    let evaluator = QueryEvaluator::new(query);
    let solver = ExactSolver::new(&db, &sigma);
    let exact = solver
        .answer_probability(GeneratorSpec::uniform_operations(), &evaluator, &[])
        .expect("small instance")
        .to_f64();
    let estimator = OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_operations())
        .expect("keys are supported");
    let params = ApproximationParams::new(0.05, 0.05).expect("valid parameters");
    let start = Instant::now();
    let estimate = estimator
        .estimate(&evaluator, &[], params, &mut rng)
        .expect("estimation succeeds");
    table.add_row(vec![
        format!("8 facts, domain 3 (exactly solvable)"),
        format!("{exact:.4}"),
        format!("{:.4}", estimate.value),
        format!("{:.3}", (estimate.value - exact).abs() / exact.max(1e-12)),
        estimate.samples.to_string(),
        format!("{:.1?}", start.elapsed()),
    ]);

    // Larger instances: estimate only (exact is intractable).
    for (facts, domain) in [(40usize, 8usize), (80, 12), (160, 20)] {
        let (db, sigma) = MultiKeyWorkload::new(facts, domain, 7 + facts as u64).generate();
        let query = ucqa_workload::queries::fact_membership_query(&db, 2).expect("valid query");
        let evaluator = QueryEvaluator::new(query);
        let estimator = OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_operations())
            .expect("keys are supported");
        let params = ApproximationParams::new(0.1, 0.05).expect("valid parameters");
        let start = Instant::now();
        let estimate = estimator
            .estimate(&evaluator, &[], params, &mut rng)
            .expect("estimation succeeds");
        table.add_row(vec![
            format!("{facts} facts, domain {domain}"),
            "n/a".into(),
            format!("{:.4}", estimate.value),
            "—".into(),
            estimate.samples.to_string(),
            format!("{:.1?}", start.elapsed()),
        ]);
    }
    table.add_note("this regime (non-primary keys) is exactly where uniform repairs / sequences have no known FPRAS — the corresponding OcqaEstimator constructors return Unsupported, see E11 notes");
    vec![table]
}

/// E8 — Theorem 7.5: FPRAS for FDs with singleton operations, and the
/// Lemma D.8 lower bound.
pub fn e08_fpras_fd_singleton() -> Vec<Table> {
    let mut table = Table::new(
        "E8 — Theorem 7.5: FPRAS for uniform operations with singleton removals, arbitrary FDs",
        &[
            "instance",
            "exact",
            "estimate",
            "rel. error",
            "samples",
            "time",
        ],
    );
    let mut rng = StdRng::seed_from_u64(800);
    let spec = GeneratorSpec::uniform_operations().with_singleton_only();

    // Small instance with exact ground truth.
    let (db, sigma) = FdWorkload::new(9, 3, 2, 3).generate();
    let query = ucqa_workload::queries::fact_membership_query(&db, 1).expect("valid query");
    let evaluator = QueryEvaluator::new(query);
    let exact = ExactSolver::new(&db, &sigma)
        .answer_probability(spec, &evaluator, &[])
        .expect("small instance")
        .to_f64();
    let estimator = OcqaEstimator::new(&db, &sigma, spec).expect("FDs with singleton ops");
    let params = ApproximationParams::new(0.05, 0.05).expect("valid parameters");
    let start = Instant::now();
    let estimate = estimator
        .estimate(&evaluator, &[], params, &mut rng)
        .expect("estimation succeeds");
    table.add_row(vec![
        "9 facts, FD A→B (exactly solvable)".into(),
        format!("{exact:.4}"),
        format!("{:.4}", estimate.value),
        format!("{:.3}", (estimate.value - exact).abs() / exact.max(1e-12)),
        estimate.samples.to_string(),
        format!("{:.1?}", start.elapsed()),
    ]);

    for (facts, da, db_size) in [(50usize, 8usize, 3usize), (100, 12, 4), (200, 20, 4)] {
        let (db, sigma) = FdWorkload::new(facts, da, db_size, 11 + facts as u64).generate();
        let query = ucqa_workload::queries::fact_membership_query(&db, 1).expect("valid query");
        let evaluator = QueryEvaluator::new(query);
        let estimator = OcqaEstimator::new(&db, &sigma, spec).expect("FDs with singleton ops");
        let lower_bound = estimator.theoretical_lower_bound(&evaluator).to_f64();
        let params = ApproximationParams::new(0.1, 0.05).expect("valid parameters");
        let start = Instant::now();
        let estimate = estimator
            .estimate(&evaluator, &[], params, &mut rng)
            .expect("estimation succeeds");
        table.add_row(vec![
            format!("{facts} facts, FD A→B (Lemma D.8 bound {lower_bound:.2e})"),
            "n/a".into(),
            format!("{:.4}", estimate.value),
            "—".into(),
            estimate.samples.to_string(),
            format!("{:.1?}", start.elapsed()),
        ]);
    }
    vec![table]
}

/// E9 — Proposition D.6: with pair removals and FDs the target probability
/// can be exponentially small, so Monte-Carlo sampling breaks down.
pub fn e09_proposition_d6() -> Vec<Table> {
    let mut table = Table::new(
        "E9 — Proposition D.6: P_{M^uo,Q}(D_n, ()) for the star family (pair removals allowed)",
        &[
            "n (=|D_n|)",
            "exact P (closed form)",
            "paper bound 1/2^{n-1}",
            "exact ≤ bound / driver refuses",
            "raw walk + stopping rule (ε=0.2, δ=0.1, ≤200k samples)",
        ],
    );
    let q_text = "Ans() :- R(0, 0, 0)";
    for n in [2usize, 4, 6, 8, 10, 12, 16, 20] {
        let (db, sigma) = proposition_d6_database(n);
        let query = parse_query(db.schema(), q_text).expect("valid query");
        let evaluator = QueryEvaluator::new(query);

        // Closed form from the inductive proof: P(n) = Π_{p=1}^{n−1} p/(2p+1).
        let mut exact = Ratio::one();
        for p in 1..n as u64 {
            exact = &exact * &Ratio::from_u64(p, 2 * p + 1);
        }
        // Cross-check against full enumeration while it is feasible.
        if n <= 6 {
            let enumerated = ExactSolver::new(&db, &sigma)
                .answer_probability(GeneratorSpec::uniform_operations(), &evaluator, &[])
                .expect("small instance");
            assert_eq!(enumerated, exact, "closed form disagrees with enumeration");
        }
        let bound = 0.5f64.powi(n as i32 - 1);
        // The FPRAS driver refuses this combination (FDs with pair
        // removals); record the refusal once, and demonstrate directly why
        // plain Monte-Carlo fails by running the raw uniform-operations
        // walk under the stopping rule.
        let refused = matches!(
            OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_operations()),
            Err(CoreError::Unsupported { .. })
        );
        let walk = OperationWalkSampler::new(&db, &sigma);
        let mut rng = StdRng::seed_from_u64(900 + n as u64);
        let stopping =
            ucqa_core::montecarlo::StoppingRuleEstimator::new(0.2, 0.1).with_max_samples(200_000);
        let outcome = stopping.estimate(&mut rng, |rng| {
            let repair = walk.sample_result(rng);
            evaluator
                .has_answer(&db, &repair, &[])
                .expect("boolean query")
        });
        let walk_cell = if outcome.truncated {
            format!(
                "truncated: {} successes in {} samples",
                outcome.successes, outcome.samples
            )
        } else {
            format!("{:.2e} with {} samples", outcome.estimate, outcome.samples)
        };
        table.add_row(vec![
            n.to_string(),
            format!("{:.3e}", exact.to_f64()),
            format!("{bound:.3e}"),
            format!(
                "{} / driver refuses: {}",
                exact.to_f64() <= bound + 1e-15,
                refused
            ),
            walk_cell,
        ]);
    }
    table.add_note("the OcqaEstimator constructor refuses FDs with pair removals (the open case of Section 7); the last column drives the raw uniform-operations walk through the stopping rule anyway, showing that the number of samples needed explodes as the target probability decays exponentially");
    vec![table]
}

/// E10 — Lemmas 5.4 / E.4 and Proposition 5.5: repairs vs. independent
/// sets via the Vizing-colouring construction.
pub fn e10_independent_sets() -> Vec<Table> {
    let mut table = Table::new(
        "E10 — Lemma 5.4 / Proposition 5.5: |CORep(D_G, Σ_K)| = |IS(G)| via edge colouring",
        &[
            "graph",
            "nodes/edges",
            "Δ",
            "|IS(G)|",
            "|CORep(D_G, Σ_K)|",
            "|CORep¹| = |IS≠∅|",
            "conflict graph ≅ G",
        ],
    );
    let mut graphs: Vec<(String, UndirectedGraph)> = vec![
        ("path P6".into(), UndirectedGraph::path(6)),
        ("cycle C7".into(), UndirectedGraph::cycle(7)),
        ("complete K4".into(), UndirectedGraph::complete(4)),
    ];
    for seed in [1u64, 2] {
        graphs.push((
            format!("random connected (seed {seed})"),
            connected_bounded_degree(8, 3, seed),
        ));
    }
    for (name, graph) in graphs {
        let reduction = IndependentSetReduction::new(graph.max_degree());
        let db = reduction.database(&graph);
        let solver = ExactSolver::new(&db, reduction.sigma()).with_limits(TreeLimits {
            max_nodes: 5_000_000,
        });
        let is_count = count_independent_sets(&graph);
        let corep = solver
            .candidate_repair_count(false)
            .map(|n| n.to_string())
            .unwrap_or_else(|_| "tree limit".into());
        let corep1 = solver
            .candidate_repair_count(true)
            .map(|n| n.to_string())
            .unwrap_or_else(|_| "tree limit".into());
        table.add_row(vec![
            name,
            format!("{}/{}", graph.node_count(), graph.edge_count()),
            graph.max_degree().to_string(),
            is_count.to_string(),
            corep,
            corep1,
            reduction.conflict_graph_matches(&graph, &db).to_string(),
        ]);
    }
    table.add_note("|CORep| must equal |IS(G)| (Lemma 5.4) and |CORep¹| must equal |IS(G)| − 1 (Lemma E.4, non-empty independent sets)");
    vec![table]
}

/// E11 — the hardness reductions run against brute force, plus the FD
/// gadget of Lemma 5.6.
pub fn e11_hardness_reductions() -> Vec<Table> {
    let mut hom_table = Table::new(
        "E11a — Theorem 5.1(1): ♯H-Coloring via the RRFreq oracle",
        &[
            "graph",
            "♯hom(G,H) brute force",
            "via reduction (exact oracle)",
            "match",
        ],
    );
    let reduction = HColoringReduction::new();
    let h = TargetGraph::hardness_gadget();
    let graphs = vec![
        (
            "single edge".to_string(),
            UndirectedGraph::from_edges(2, &[(0, 1)]),
        ),
        ("path P4".to_string(), UndirectedGraph::path(4)),
        ("cycle C5".to_string(), UndirectedGraph::cycle(5)),
        ("K4 minus an edge".to_string(), {
            let mut g = UndirectedGraph::complete(4);
            g = UndirectedGraph::from_edges(
                4,
                &g.edges()
                    .into_iter()
                    .filter(|&e| e != (2, 3))
                    .collect::<Vec<_>>(),
            );
            g
        }),
    ];
    for (name, graph) in &graphs {
        let brute = count_homomorphisms(graph, &h);
        let sigma = reduction.sigma().clone();
        let via = reduction.hom_count_via_oracle(graph, |db, query| {
            ExactSolver::new(db, &sigma)
                .rrfreq(&QueryEvaluator::new(query.clone()), &[], false)
                .expect("small instance")
        });
        hom_table.add_row(vec![
            name.clone(),
            brute.to_string(),
            via.to_string(),
            (via == Ratio::from_natural(brute)).to_string(),
        ]);
    }

    let mut sat_table = Table::new(
        "E11b — Theorem E.1(1): ♯Pos2DNF via the RRFreq¹ oracle",
        &[
            "formula",
            "♯sat brute force",
            "via reduction (exact oracle)",
            "match",
        ],
    );
    let dnf_reduction = Pos2DnfReduction::new();
    let formulas = vec![
        (
            "(x0∧x1) ∨ (x1∧x2)".to_string(),
            Positive2Dnf::new(3, vec![(0, 1), (1, 2)]),
        ),
        (
            "single clause over 4 vars".to_string(),
            Positive2Dnf::new(4, vec![(0, 3)]),
        ),
        (
            "chain of 4 clauses over 5 vars".to_string(),
            Positive2Dnf::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]),
        ),
        (
            "dense: 6 clauses over 6 vars".to_string(),
            Positive2Dnf::new(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]),
        ),
    ];
    for (name, formula) in &formulas {
        let brute = formula.count_satisfying_assignments();
        let sigma = dnf_reduction.sigma().clone();
        let via = dnf_reduction.sat_count_via_oracle(formula, |db, query| {
            ExactSolver::new(db, &sigma)
                .rrfreq(&QueryEvaluator::new(query.clone()), &[], true)
                .expect("small instance")
        });
        sat_table.add_row(vec![
            name.clone(),
            brute.to_string(),
            via.to_string(),
            (via == Ratio::from_natural(brute)).to_string(),
        ]);
    }

    let mut gadget_table = Table::new(
        "E11c — Lemma 5.6: the FD gadget adds exactly one repair",
        &[
            "source graph",
            "|CORep(D, Σ_K)|",
            "|CORep(D_F, Σ_F)|",
            "rrfreq(D_F, Q_F)",
            "recovered count",
        ],
    );
    for graph in [UndirectedGraph::cycle(5), UndirectedGraph::path(5)] {
        let is_reduction = IndependentSetReduction::new(graph.max_degree());
        let source = is_reduction.database(&graph);
        let source_count = ExactSolver::new(&source, is_reduction.sigma())
            .candidate_repair_count(false)
            .expect("small instance");
        let arity = source
            .schema()
            .arity(source.schema().relation_id("R").expect("R exists"));
        let gadget = FdGadget::new(arity, is_reduction.sigma());
        let target = gadget.database(&source);
        let target_solver = ExactSolver::new(&target, gadget.sigma());
        let target_count = target_solver
            .candidate_repair_count(false)
            .expect("small instance");
        let rrfreq = target_solver
            .rrfreq(&QueryEvaluator::new(gadget.query().clone()), &[], false)
            .expect("small instance");
        let sigma = gadget.sigma().clone();
        let recovered = gadget.corep_count_via_oracle(&source, |db, query| {
            ExactSolver::new(db, &sigma)
                .rrfreq(&QueryEvaluator::new(query.clone()), &[], false)
                .expect("small instance")
        });
        gadget_table.add_row(vec![
            format!(
                "{} nodes / {} edges",
                graph.node_count(),
                graph.edge_count()
            ),
            source_count.to_string(),
            target_count.to_string(),
            rrfreq.to_string(),
            recovered.to_string(),
        ]);
    }

    vec![hom_table, sat_table, gadget_table]
}

/// E12 — scaling study: exact enumeration vs. the polynomial samplers and
/// FPRAS drivers across the three semantics.
pub fn e12_scaling() -> Vec<Table> {
    let mut table = Table::new(
        "E12 — scaling: exact enumeration vs. sampling (block workloads, block size 4, ε = 0.2)",
        &[
            "|D|",
            "exact tree",
            "SampleRep / sample",
            "SampleSeq / sample",
            "M^uo walk / sample",
            "FPRAS M^ur total",
            "FPRAS M^uo total",
        ],
    );
    let mut rng = StdRng::seed_from_u64(1200);
    for blocks in [2usize, 3, 4, 8, 16, 32, 64] {
        let (db, sigma) = BlockWorkload::uniform(blocks, 4, 42 + blocks as u64).generate();
        let (query, candidate) = block_lookup_query(&db, 5).expect("valid workload query");
        let evaluator = QueryEvaluator::new(query);

        // Exact enumeration with a hard node limit.
        let exact_cell = {
            let solver =
                ExactSolver::new(&db, &sigma).with_limits(TreeLimits { max_nodes: 300_000 });
            let start = Instant::now();
            match solver.candidate_repair_count(false) {
                Ok(count) => format!("{count} repairs in {:.1?}", start.elapsed()),
                Err(_) => "> 300k tree nodes (intractable)".to_string(),
            }
        };

        // Per-sample costs.
        let repair_sampler = RepairSampler::new(&db, &sigma).expect("primary keys");
        let start = Instant::now();
        for _ in 0..1_000 {
            let _ = repair_sampler.sample(&mut rng);
        }
        let per_repair_sample = start.elapsed() / 1_000;

        let sequence_sampler = SequenceSampler::new(&db, &sigma).expect("primary keys");
        let start = Instant::now();
        for _ in 0..200 {
            let _ = sequence_sampler.sample_result(&mut rng);
        }
        let per_sequence_sample = start.elapsed() / 200;

        let walk = OperationWalkSampler::new(&db, &sigma);
        let start = Instant::now();
        for _ in 0..50 {
            let _ = walk.sample_result(&mut rng);
        }
        let per_walk_sample = start.elapsed() / 50;

        // End-to-end FPRAS times.
        let params = ApproximationParams::new(0.2, 0.1).expect("valid parameters");
        let ur = OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_repairs())
            .expect("primary keys");
        let start = Instant::now();
        let ur_estimate = ur
            .estimate(&evaluator, &candidate, params, &mut rng)
            .expect("estimation succeeds");
        let ur_time = start.elapsed();
        let uo =
            OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_operations()).expect("keys");
        let start = Instant::now();
        let uo_estimate = uo
            .estimate(&evaluator, &candidate, params, &mut rng)
            .expect("estimation succeeds");
        let uo_time = start.elapsed();

        table.add_row(vec![
            db.len().to_string(),
            exact_cell,
            format!("{per_repair_sample:.1?}"),
            format!("{per_sequence_sample:.1?}"),
            format!("{per_walk_sample:.1?}"),
            format!("{ur_time:.1?} ({} samples)", ur_estimate.samples),
            format!("{uo_time:.1?} ({} samples)", uo_estimate.samples),
        ]);
    }
    table.add_note("the qualitative claim of the paper: exact uniform operational CQA blows up almost immediately, while the samplers stay polynomial; the uniform-operations walk is the most expensive sampler but the only one available beyond primary keys");
    vec![table]
}

/// A Natural → string helper used by tables that report huge counts.
pub fn digits(n: &Natural) -> usize {
    n.to_string().len()
}

/// Shared timing kernel of the `eNN_report` binaries: runs a ~10% warm-up
/// pass, then times `iters` runs of `routine`, returning
/// `(mean ns/iteration, iterations/second)`.
///
/// Extracted here so `e13_report`, `e14_report` and `e15_report` measure
/// identically instead of each carrying its own copy.
pub fn time_routine(iters: u64, mut routine: impl FnMut()) -> (f64, f64) {
    for _ in 0..iters.div_ceil(10).max(1) {
        routine();
    }
    let start = Instant::now();
    for _ in 0..iters {
        routine();
    }
    let elapsed = start.elapsed();
    (
        elapsed.as_nanos() as f64 / iters as f64,
        iters as f64 / elapsed.as_secs_f64().max(1e-9),
    )
}

/// Parses the `[--smoke] [output.json]` CLI convention shared by the
/// report binaries: `--smoke` selects the tiny CI configuration (nothing
/// is written to disk), any other argument overrides the output path.
pub fn report_args(default_output: &str) -> (bool, String) {
    let mut smoke = false;
    let mut output = default_output.to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            output = arg;
        }
    }
    (smoke, output)
}

/// Emits a report JSON: prints it to stdout, and writes it to `output`
/// unless `smoke` is set (the CI mode exercises the measurement path
/// without touching the committed `BENCH_*.json` files).
///
/// # Panics
/// Panics if the output file cannot be written.
pub fn emit_report(label: &str, smoke: bool, output: &str, json: &str) {
    println!("{json}");
    if smoke {
        eprintln!("[{label}] smoke mode: not writing {output}");
    } else {
        std::fs::write(output, json).unwrap_or_else(|e| panic!("write {output}: {e}"));
        eprintln!("[{label}] wrote {output}");
    }
}
