//! Produces `BENCH_e21.json`: sliding-window continuous estimation with
//! converged-draw reuse — a 20k-fact count-bounded window under per-tick
//! insert/retract/expiry churn, answered by the `WindowedEstimator`
//! pipeline and compared, every tick, against rebuilding the window from
//! scratch and re-estimating the whole bank from draw zero.
//!
//! ```text
//! cargo run -p ucqa-bench --release --bin e21_report [-- [--smoke] [output.json]]
//! ```
//!
//! With `--smoke` a single tiny configuration is run with minimal budgets
//! and nothing is written to disk — the CI mode.
//!
//! Workload: a `StreamWorkload` over `R(K, V)` (primary key `K → V`,
//! blocks of ~2 facts) sliding through `WindowSpec::Count`, with a bank
//! of block and membership queries pinned to keys that stay in the
//! window.  Each tick the two pipelines answer the same bank:
//!
//! * **windowed** — `WindowedEstimator::tick` (changelog replay into the
//!   maintained conflict index and bank) + `estimate` (entries with an
//!   unchanged fingerprint — witness set *and* conflict-component
//!   context — reuse their converged outcome verbatim at zero draws;
//!   only changed entries re-enter the stopping loop).
//! * **scratch** — a fresh `Database` holding exactly the live window,
//!   `ConflictIndex::build`, `LineageBank::compile`, and a full
//!   stopping-rule pass over every entry.
//!
//! Every tick asserts (outside the timers) that the windowed state is
//! bit-identical to the scratch rebuild — conflict pairs and bank
//! witness sets under the live-id remap, plus a same-seed fixed-samples
//! estimate probe over both states — and that a tick which changed no
//! entry fingerprint was answered from reuse alone at **zero draws**.
//! When not `--smoke`, the windowed pipeline must sustain ≥ 2x the
//! estimates/sec of rebuild-and-re-estimate.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ucqa_bench::experiments::{emit_report, report_args};
use ucqa_core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
use ucqa_core::{RunBudget, WindowSpec, WindowedEstimator};
use ucqa_db::{ConflictIndex, Database, FactId, Value};
use ucqa_query::{LineageBank, QueryEvaluator};
use ucqa_repair::GeneratorSpec;
use ucqa_workload::StreamWorkload;

const BANK_SIZE: usize = 8;

fn parse_bank(db: &Database, texts: &[String]) -> Vec<QueryEvaluator> {
    texts
        .iter()
        .map(|t| {
            QueryEvaluator::new(
                ucqa_query::parser::parse_query(db.schema(), t).expect("valid query"),
            )
        })
        .collect()
}

/// Rebuilds a fresh database holding exactly the live window, plus the
/// scratch-position → windowed-id map (ascending, so the remap below is
/// a binary search).
fn rebuild_window(db: &Database) -> (Database, Vec<FactId>) {
    let mut scratch = Database::with_schema(db.schema().clone());
    let mut map = Vec::with_capacity(db.live_count());
    for (id, fact) in db.iter() {
        scratch.insert(fact).expect("schema matches");
        map.push(id);
    }
    (scratch, map)
}

fn remap(map: &[FactId], id: FactId) -> FactId {
    FactId::new(map.binary_search(&id).expect("live id"))
}

/// Asserts the windowed conflict index and bank equal, under the id
/// remap, the structures built from scratch over the rebuilt window.
fn assert_window_matches_scratch(
    w: &WindowedEstimator,
    scratch_conflict: &ConflictIndex,
    scratch_bank: &LineageBank,
    map: &[FactId],
    tick: usize,
) {
    let windowed_pairs: BTreeSet<(FactId, FactId)> = w
        .conflict_index()
        .pairs()
        .iter()
        .map(|&(a, b)| {
            let (a, b) = (remap(map, a), remap(map, b));
            (a.min(b), a.max(b))
        })
        .collect();
    let scratch_pairs: BTreeSet<(FactId, FactId)> = scratch_conflict
        .pairs()
        .iter()
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .collect();
    assert_eq!(
        windowed_pairs, scratch_pairs,
        "tick {tick}: conflict pairs diverged"
    );

    assert_eq!(w.bank().len(), scratch_bank.len());
    for entry in 0..w.bank().len() {
        let canonical = |bank: &LineageBank, remap_ids: bool| -> Option<BTreeSet<Vec<FactId>>> {
            bank.witnesses_of(entry).map(|witnesses| {
                witnesses
                    .iter()
                    .map(|wit| {
                        let mut ids: Vec<FactId> = if remap_ids {
                            wit.iter().map(|id| remap(map, id)).collect()
                        } else {
                            wit.iter().collect()
                        };
                        ids.sort_unstable();
                        ids
                    })
                    .collect()
            })
        };
        assert_eq!(
            canonical(w.bank(), true),
            canonical(scratch_bank, false),
            "tick {tick}: witness sets of entry {entry} diverged"
        );
    }
}

fn main() {
    let (smoke, output) = report_args("BENCH_e21.json");
    let spec = GeneratorSpec::uniform_operations().with_singleton_only();

    // (facts, ticks, inserts/tick, retracts/tick, max_samples, probe):
    // the window holds `facts` live facts; each tick inserts more than it
    // retracts so the count window also expires the oldest facts.
    let (facts, ticks, inserts_per_tick, retracts_per_tick, max_samples, probe_samples) = if smoke {
        (300, 3, 10, 5, 5_000, 20)
    } else {
        (20_000, 12, 50, 25, 50_000, 50)
    };

    let mut workload = StreamWorkload::new(
        (facts / 2).max(4),
        inserts_per_tick,
        retracts_per_tick,
        0.3,
        42,
    );
    let (mut db, sigma) = workload.initial(facts);

    // The query bank: block queries and membership queries pinned to the
    // keys of the *last* initial facts (they expire last, so the queried
    // blocks stay populated — and their answer probabilities stay
    // positive — through the whole stream).
    let live: Vec<FactId> = db.fact_ids().collect();
    let mut texts: Vec<String> = Vec::new();
    let mut queried_keys: BTreeSet<Value> = BTreeSet::new();
    for &id in live.iter().rev() {
        let fact = db.fact(id);
        let (key, value) = (fact.values()[0].clone(), fact.values()[1].clone());
        if !queried_keys.insert(key.clone()) {
            continue;
        }
        if texts.len() < BANK_SIZE / 2 {
            texts.push(format!("Ans() :- R({key}, x)"));
        } else {
            texts.push(format!("Ans() :- R({key}, {value})"));
        }
        if texts.len() == BANK_SIZE {
            break;
        }
    }
    queried_keys.retain(|key| {
        texts
            .iter()
            .any(|t| t.starts_with(&format!("Ans() :- R({key},")))
    });
    assert_eq!(texts.len(), BANK_SIZE, "enough distinct keys in the window");
    // Anchor each queried block with one extra fact inserted last, so
    // random retraction cannot empty a queried block mid-stream.
    let mut block_keys: Vec<Value> = Vec::new();
    for text in &texts[..BANK_SIZE / 2] {
        let key: i64 = text
            .trim_start_matches("Ans() :- R(")
            .split(',')
            .next()
            .expect("block query text")
            .parse()
            .expect("integer key");
        block_keys.push(Value::int(key));
        db.insert_values("R", [Value::int(key), Value::int(-1 - key)])
            .expect("schema matches");
    }

    let windowed_queries: Vec<(QueryEvaluator, Vec<Value>)> = parse_bank(&db, &texts)
        .into_iter()
        .map(|e| (e, Vec::new()))
        .collect();
    let evaluators = parse_bank(&db, &texts);
    let refs: Vec<(&QueryEvaluator, &[Value])> =
        evaluators.iter().map(|e| (e, &[] as &[Value])).collect();
    let batch: Vec<BatchQuery<'_>> = evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();

    let params = ApproximationParams::new(0.25, 0.2)
        .expect("valid parameters")
        .with_mode(EstimatorMode::OptimalStopping { max_samples });
    let probe_params = ApproximationParams::new(0.2, 0.2)
        .expect("valid parameters")
        .with_mode(EstimatorMode::FixedSamples(probe_samples));
    let budget = RunBudget::unlimited();

    let window = WindowSpec::Count(facts);
    let mut w = WindowedEstimator::new(db, sigma.clone(), spec, window, windowed_queries)
        .expect("primary key supports every generator");

    // Warm-up: the windowed pipeline's one-time full pass that seeds the
    // reuse baseline (the scratch pipeline pays this every tick).
    let warmup_start = Instant::now();
    let mut rng = StdRng::seed_from_u64(9);
    let warmup = w.estimate(params, &budget, &mut rng).expect("warm-up pass");
    assert!(warmup.outcome.converged(), "warm-up pass converges");
    let warmup_seconds = warmup_start.elapsed().as_secs_f64();

    let mut windowed_seconds = 0.0;
    let mut scratch_seconds = 0.0;
    let mut windowed_draws = 0u64;
    let mut scratch_draws = 0u64;
    let mut reused_entries = 0usize;
    let mut zero_draw_ticks = 0usize;
    let mut rows = String::new();
    let relation = w.db().schema().relation_id("R").expect("stream relation");
    for tick in 1..=ticks {
        let (mut inserts, mut retracts) = workload.tick(w.db());
        // Keep the queried blocks answerable (positive probability, so
        // the stopping rule converges): random retraction spares them.
        // Insert churn and window expiry still hit every key equally.
        retracts.retain(|f| !queried_keys.contains(&f.values()[0]));
        // Uniform churn over {facts}/2 keys almost never lands in one of
        // the {BANK_SIZE} queried blocks, so every 4th tick grows one
        // *block-queried* block deliberately — adding a witness to that
        // entry's lineage and exercising the enrollment path (changed
        // fingerprint → re-converge) at full scale, not just reuse.
        if tick % 4 == 0 {
            let key = block_keys[tick / 4 % block_keys.len()].clone();
            inserts.push(ucqa_db::Fact::new(
                relation,
                vec![key, Value::int(-(1_000 + tick as i64))],
            ));
        }

        // Windowed pipeline: changelog replay + draw-reuse estimation.
        let windowed_start = Instant::now();
        let report = w.tick(inserts, &retracts).expect("tick applies");
        let pass = w
            .estimate(params, &budget, &mut rng)
            .expect("windowed pass");
        let windowed_s = windowed_start.elapsed().as_secs_f64();
        windowed_seconds += windowed_s;
        assert!(
            pass.outcome.converged(),
            "tick {tick}: windowed pass converges"
        );
        windowed_draws += pass.tick_draws;
        let reused = pass.reused.iter().filter(|&&r| r).count();
        reused_entries += reused;

        // The draw-reuse acceptance assert: a tick that changed no
        // entry fingerprint is answered entirely from the converged
        // baseline, at zero draws.
        if report.changed.iter().all(|&c| !c) {
            assert_eq!(
                pass.tick_draws, 0,
                "tick {tick}: unchanged fingerprints must consume zero draws"
            );
            assert_eq!(reused, BANK_SIZE);
            zero_draw_ticks += 1;
        }

        // Scratch pipeline: rebuild the window from its live facts and
        // re-estimate every entry from draw zero.
        let scratch_start = Instant::now();
        let (scratch_db, map) = rebuild_window(w.db());
        let scratch_conflict = ConflictIndex::build(&scratch_db, &sigma);
        let scratch_bank = LineageBank::compile(&scratch_db, &refs).expect("bank compiles");
        let scratch_estimator = BatchEstimator::with_conflict_index(
            &scratch_db,
            &sigma,
            spec,
            scratch_conflict.clone(),
        )
        .expect("primary key supports singleton operations");
        let scratch_pass = scratch_estimator
            .estimate_stopping_batch_with_budget(
                &batch,
                params,
                &budget,
                &mut StdRng::seed_from_u64(1_000 + tick as u64),
            )
            .expect("scratch pass");
        let scratch_s = scratch_start.elapsed().as_secs_f64();
        scratch_seconds += scratch_s;
        assert!(
            scratch_pass.converged(),
            "tick {tick}: scratch pass converges"
        );
        scratch_draws += scratch_pass.total_draws;

        // Bit-identity of the maintained state against the rebuild,
        // outside both timers: structures under the live-id remap, plus
        // a same-seed fixed-samples estimate probe over the two states.
        assert_window_matches_scratch(&w, &scratch_conflict, &scratch_bank, &map, tick);
        let windowed_probe = BatchEstimator::with_conflict_index(
            w.db(),
            w.sigma(),
            spec,
            w.conflict_index().clone(),
        )
        .expect("primary key supports singleton operations")
        .estimate_batch_with_bank(
            w.bank(),
            &batch,
            probe_params,
            &mut StdRng::seed_from_u64(17),
        )
        .expect("probe estimates");
        let scratch_probe = scratch_estimator
            .estimate_batch_with_bank(
                &scratch_bank,
                &batch,
                probe_params,
                &mut StdRng::seed_from_u64(17),
            )
            .expect("probe estimates");
        assert_eq!(
            windowed_probe, scratch_probe,
            "tick {tick}: same-seed estimates over window and rebuild diverged"
        );

        let _ = write!(
            rows,
            "{}    {{\"tick\": {tick}, \"live_facts\": {}, \"expired\": {}, \
             \"changed_entries\": {}, \"reused_entries\": {reused}, \
             \"windowed_draws\": {}, \"scratch_draws\": {}, \
             \"windowed_ms\": {:.3}, \"scratch_ms\": {:.3}}}",
            if rows.is_empty() { "\n" } else { ",\n" },
            w.db().live_count(),
            report.expired.len(),
            report.changed.iter().filter(|&&c| c).count(),
            pass.tick_draws,
            scratch_pass.total_draws,
            windowed_s * 1e3,
            scratch_s * 1e3,
        );
        eprintln!(
            "[e21] tick {tick}: windowed {:.2} ms ({} draws, {reused}/{BANK_SIZE} reused), \
             scratch {:.2} ms ({} draws)",
            windowed_s * 1e3,
            pass.tick_draws,
            scratch_s * 1e3,
            scratch_pass.total_draws,
        );
    }

    // The acceptance gate: the windowed pipeline answers the bank ≥ 2x
    // faster than rebuild-and-re-estimate, sustained over the stream.
    let speedup = scratch_seconds / windowed_seconds.max(1e-9);
    let windowed_rate = (ticks * BANK_SIZE) as f64 / windowed_seconds.max(1e-9);
    let scratch_rate = (ticks * BANK_SIZE) as f64 / scratch_seconds.max(1e-9);
    if !smoke {
        assert!(
            speedup >= 2.0,
            "windowed speedup {speedup:.2}x < 2x at {facts} live facts"
        );
        assert!(zero_draw_ticks > 0, "no tick exercised full draw reuse");
    }

    let json = format!(
        "{{\n  \"experiment\": \"e21_windowed_reuse\",\n  \
         \"generator\": \"uniform operations, singleton removals (Theorem 7.5)\",\n  \
         \"workload\": \"StreamWorkload({facts} live facts, keys = {facts}/2, overlap 0.3, seed 42), \
         WindowSpec::Count({facts}), {ticks} ticks x {inserts_per_tick} inserts + \
         {retracts_per_tick} retracts, bank of {BANK_SIZE} block/membership queries\",\n  \
         \"windowed_pipeline\": \"WindowedEstimator::tick (changelog replay) + estimate \
         (fingerprint-gated converged-draw reuse, enrollment resume for changed entries)\",\n  \
         \"scratch_pipeline\": \"rebuild Database from live facts + ConflictIndex::build + \
         LineageBank::compile + full stopping-rule pass each tick\",\n  \
         \"warmup_seconds\": {warmup_seconds:.4},\n  \
         \"windowed_seconds\": {windowed_seconds:.4},\n  \
         \"scratch_seconds\": {scratch_seconds:.4},\n  \
         \"windowed_draws\": {windowed_draws},\n  \
         \"scratch_draws\": {scratch_draws},\n  \
         \"reused_entries\": {reused_entries},\n  \
         \"zero_draw_ticks\": {zero_draw_ticks},\n  \
         \"windowed_estimates_per_sec\": {windowed_rate:.1},\n  \
         \"scratch_estimates_per_sec\": {scratch_rate:.1},\n  \
         \"speedup\": {speedup:.2},\n  \
         \"bit_identical_state\": true,\n  \
         \"ticks\": [{rows}\n  ]\n}}\n"
    );
    emit_report("e21", smoke, &output, &json);
}
