//! Regenerates every experiment table of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p ucqa-bench --release --bin experiments -- all
//! cargo run -p ucqa-bench --release --bin experiments -- e5 e7
//! cargo run -p ucqa-bench --release --bin experiments -- --markdown all
//! ```

use std::time::Instant;

use ucqa_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let requested: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let requested = if requested.is_empty() {
        vec!["all".to_string()]
    } else {
        requested
    };

    for which in requested {
        let start = Instant::now();
        let tables = experiments::run(&which);
        for table in &tables {
            if markdown {
                println!("{}", table.to_markdown());
            } else {
                println!("{table}");
            }
        }
        eprintln!(
            "[experiments] `{which}` finished in {:.1?}",
            start.elapsed()
        );
    }
}
