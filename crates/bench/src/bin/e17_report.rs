//! Produces `BENCH_e17.json`: plan-based witness enumeration — bank
//! compilation through the shared scan trie (`LineageBank::compile`:
//! selectivity-ordered join plans over the database's relation indexes,
//! common atom prefixes factored and enumerated once) vs. the unplanned
//! baseline (`LineageBank::compile_unplanned`: one naive body-order
//! backtracking pass per entry, whole-relation scans) — plus the
//! end-to-end batched estimation cost (compile + shared sampling loop).
//!
//! ```text
//! cargo run -p ucqa-bench --release --bin e17_report [-- [--smoke] [output.json]]
//! ```
//!
//! With `--smoke` a single tiny size is run with minimal budgets and
//! nothing is written to disk — the CI mode.
//!
//! Workload: `MultiFdWorkload::scaling` instances at 1k/5k/20k facts with
//! `overlapping_join_bank` banks of 8 and 64 three-atom queries sharing a
//! two-atom prefix.  Every configuration asserts that the shared compile
//! produces the same witness arena shape and **bit-identical** batched
//! estimates as the unplanned baseline under a fixed seed.

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ucqa_bench::experiments::{emit_report, report_args, time_routine};
use ucqa_core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
use ucqa_query::QueryEvaluator;
use ucqa_repair::GeneratorSpec;
use ucqa_workload::{queries::overlapping_join_bank, MultiFdWorkload};

const PREFIX_DEPTH: usize = 2;

fn main() {
    let (smoke, output) = report_args("BENCH_e17.json");
    let spec = GeneratorSpec::uniform_operations().with_singleton_only();

    // (facts, compile iters, estimation samples)
    let plan: &[(usize, u64, u64)] = if smoke {
        &[(300, 3, 500)]
    } else {
        &[(1_000, 20, 4_000), (5_000, 6, 1_000), (20_000, 2, 200)]
    };
    let bank_sizes: &[usize] = if smoke { &[8] } else { &[8, 64] };

    let mut rows = String::new();
    for &(facts, iters, samples) in plan {
        let (db, sigma) = MultiFdWorkload::scaling(facts, 42).generate();
        // Warm the relation index once per database so compile timings
        // measure compilation, not the one-off index build (which is
        // shared by every bank size at this fact count).
        let index_start = Instant::now();
        db.relation_index();
        let index_ms = index_start.elapsed().as_secs_f64() * 1e3;
        for &bank_size in bank_sizes {
            let queries =
                overlapping_join_bank(&db, bank_size, PREFIX_DEPTH, 7).expect("valid bank");
            let evaluators: Vec<QueryEvaluator> =
                queries.into_iter().map(QueryEvaluator::new).collect();
            let bank: Vec<BatchQuery<'_>> =
                evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();
            let estimator = BatchEstimator::new(&db, &sigma, spec).expect("FDs with singleton ops");

            let (planned_ns, _) = time_routine(iters, || {
                drop(estimator.compile_bank(&bank).expect("compiles"))
            });
            let (unplanned_ns, _) = time_routine(iters, || {
                drop(estimator.compile_bank_unplanned(&bank).expect("compiles"))
            });
            let planned_ms = planned_ns / 1e6;
            let unplanned_ms = unplanned_ns / 1e6;
            let compile_speedup = unplanned_ns / planned_ns.max(1.0);

            // Result identity: same arena shape, same fallback flags,
            // bit-identical estimates under a fixed seed.
            let planned_bank = estimator.compile_bank(&bank).expect("compiles");
            let unplanned_bank = estimator.compile_bank_unplanned(&bank).expect("compiles");
            assert_eq!(planned_bank.witness_count(), unplanned_bank.witness_count());
            for entry in 0..bank.len() {
                assert_eq!(
                    planned_bank.query_witness_count(entry),
                    unplanned_bank.query_witness_count(entry),
                    "entry {entry}"
                );
            }
            let params = ApproximationParams::new(0.2, 0.1)
                .expect("valid parameters")
                .with_mode(EstimatorMode::FixedSamples(samples));
            let start = Instant::now();
            let planned_estimates = estimator
                .estimate_batch_with_bank(
                    &planned_bank,
                    &bank,
                    params,
                    &mut StdRng::seed_from_u64(17),
                )
                .expect("estimation succeeds");
            let estimate_seconds = start.elapsed().as_secs_f64();
            let start = Instant::now();
            let unplanned_estimates = estimator
                .estimate_batch_with_bank(
                    &unplanned_bank,
                    &bank,
                    params,
                    &mut StdRng::seed_from_u64(17),
                )
                .expect("estimation succeeds");
            let unplanned_estimate_seconds = start.elapsed().as_secs_f64();
            let bit_identical = planned_estimates == unplanned_estimates;
            assert!(
                bit_identical,
                "shared-trie bank diverged from the unplanned baseline"
            );

            let planned_total = planned_ms / 1e3 + estimate_seconds;
            let unplanned_total = unplanned_ms / 1e3 + unplanned_estimate_seconds;
            let end_to_end_speedup = unplanned_total / planned_total.max(1e-9);
            let _ = write!(
                rows,
                "{}    {{\"facts\": {facts}, \"bank\": {bank_size}, \
                 \"relation_index_ms\": {index_ms:.2}, \
                 \"witnesses\": {}, \
                 \"compile_planned_ms\": {planned_ms:.2}, \
                 \"compile_unplanned_ms\": {unplanned_ms:.2}, \
                 \"compile_speedup\": {compile_speedup:.1}, \
                 \"estimate_samples\": {samples}, \
                 \"estimate_seconds\": {estimate_seconds:.4}, \
                 \"end_to_end_planned_seconds\": {planned_total:.4}, \
                 \"end_to_end_unplanned_seconds\": {unplanned_total:.4}, \
                 \"end_to_end_speedup\": {end_to_end_speedup:.2}, \
                 \"bit_identical_estimates\": {bit_identical}}}",
                if rows.is_empty() { "\n" } else { ",\n" },
                planned_bank.witness_count(),
            );
            eprintln!(
                "[e17] {facts} facts, bank {bank_size}: compile {planned_ms:.2} ms vs \
                 {unplanned_ms:.2} ms unplanned ({compile_speedup:.1}x), end-to-end \
                 {planned_total:.3}s vs {unplanned_total:.3}s ({end_to_end_speedup:.2}x), \
                 bit-identical: {bit_identical}"
            );
        }
    }

    let json = format!(
        "{{\n  \"experiment\": \"e17_plan_based_witness_enumeration\",\n  \
         \"generator\": \"uniform operations, singleton removals (Theorem 7.5)\",\n  \
         \"workload\": \"MultiFdWorkload::scaling(facts, seed 42) + \
         overlapping_join_bank(k, prefix_depth = {PREFIX_DEPTH}, seed 7)\",\n  \
         \"planned\": \"LineageBank::compile — greedy bound-coverage join plans over \
         RelationIndex postings, shared scan trie over common atom prefixes\",\n  \
         \"baseline\": \"LineageBank::compile_unplanned — one body-order backtracking \
         pass per entry, whole-relation scans\",\n  \
         \"sizes\": [{rows}\n  ]\n}}\n"
    );
    emit_report("e17", smoke, &output, &json);
}
