//! Produces `BENCH_e20.json`: sustained estimation under churn — a mixed
//! insert/delete stream applied to a 20k-fact database, with the derived
//! structures (relation index, conflict index, compiled lineage bank)
//! maintained by the delta paths of the update layer and compared, every
//! round, against full rebuilds.
//!
//! ```text
//! cargo run -p ucqa-bench --release --bin e20_report [-- [--smoke] [output.json]]
//! ```
//!
//! With `--smoke` a single tiny configuration is run with minimal budgets
//! and nothing is written to disk — the CI mode.
//!
//! Workload: a sparse-conflict `MultiFdWorkload` (blocks of ~2 facts)
//! plus the `overlapping_join_bank` of e17/e19.  Each round applies one
//! `extend` batch of inserts (fresh payloads, the generator's attribute
//! distribution) and a set of deletes (uniformly chosen live facts), then
//! brings the derived state up to date twice:
//!
//! * **delta** — the relation index is patched in place by the mutations
//!   themselves; `ConflictIndex::refresh` and `LineageBank::refresh`
//!   replay the database changelog.
//! * **rebuild** — `RelationIndex::build`, `ConflictIndex::build` and
//!   `LineageBank::compile` from scratch, the cost the pre-delta code
//!   paid after every invalidation.
//!
//! Every round asserts the delta-maintained structures equal the rebuilt
//! ones, and that batched estimates over the refreshed bank (driven
//! through `BatchEstimator::with_conflict_index`, so the refreshed
//! conflict index backs the walk) are bit-identical to estimates over the
//! recompiled bank under the same seed.  When not `--smoke`, the summed
//! changelog-replay time must be ≥ 2x faster than the summed rebuilds
//! (the raw mutation cost, shared by both pipelines, is reported
//! alongside together with the ratio that charges it to the delta side).

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ucqa_bench::experiments::{emit_report, report_args};
use ucqa_core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
use ucqa_db::{ConflictIndex, Fact, FactId, RelationIndex, Value};
use ucqa_query::{BankQueryRef, LineageBank, QueryEvaluator};
use ucqa_repair::GeneratorSpec;
use ucqa_workload::{queries::overlapping_join_bank, MultiFdWorkload};

const PREFIX_DEPTH: usize = 2;
const BANK_SIZE: usize = 8;

fn main() {
    let (smoke, output) = report_args("BENCH_e20.json");
    let spec = GeneratorSpec::uniform_operations().with_singleton_only();

    // (facts, rounds, inserts/round, deletes/round, samples): enough
    // churn per round to exercise every delta path, small enough next to
    // the database that incrementality has something to win.
    let (facts, rounds, inserts_per_round, deletes_per_round, samples) = if smoke {
        (300, 3, 10, 10, 50)
    } else {
        (20_000, 12, 50, 50, 200)
    };

    // The scaling profile at 20k facts is conflict-saturated (|V| ≈ 6.7
    // per fact), which makes every pipeline |V|-bound; a lhs domain of
    // `facts / 4` keeps blocks small (~2 facts) so the conflict structure
    // stays sparse and the full violation rescan is what rebuild pays.
    let workload = MultiFdWorkload::new(facts, 2, (facts / 4).max(1), 3, 42);
    let (mut db, sigma) = workload.generate();
    let relation_ids: Vec<_> = (0..workload.relations)
        .map(|r| {
            db.schema()
                .relation_id(&format!("R{r}"))
                .expect("workload relation exists")
        })
        .collect();

    let queries = overlapping_join_bank(&db, BANK_SIZE, PREFIX_DEPTH, 7).expect("valid bank");
    let evaluators: Vec<QueryEvaluator> = queries.into_iter().map(QueryEvaluator::new).collect();
    let bank_queries: Vec<BankQueryRef<'_>> =
        evaluators.iter().map(|e| (e, &[] as &[Value])).collect();
    let batch: Vec<BatchQuery<'_>> = evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();
    let params = ApproximationParams::new(0.2, 0.1)
        .expect("valid parameters")
        .with_mode(EstimatorMode::FixedSamples(samples));

    // The delta-maintained state, built once before the stream starts.
    let mut conflict = ConflictIndex::build(&db, &sigma);
    let mut bank = LineageBank::compile(&db, &bank_queries).expect("bank compiles");

    let mut rng = StdRng::seed_from_u64(5);
    let mut live: Vec<FactId> = db.fact_ids().collect();
    let mut next_payload = facts as i64;

    let mut mutate_seconds = 0.0;
    let mut delta_seconds = 0.0;
    let mut rebuild_seconds = 0.0;
    let mut estimate_seconds = 0.0;
    let mut rows = String::new();
    for round in 0..rounds {
        // Apply the round's mutations.  Inserts follow the generator's
        // attribute distribution with fresh payloads (so no insert is a
        // duplicate); deletes pick uniformly among live facts.  Both
        // pipelines read the same mutated database, so this cost (raw
        // column edits plus the in-place relation-index patch) is common
        // to the two and reported separately from the gate ratio.
        let mutate_start = Instant::now();
        let inserts: Vec<Fact> = (0..inserts_per_round)
            .map(|_| {
                let a = rng.random_range(0..workload.lhs_domain) as i64;
                let b = rng.random_range(0..workload.rhs_domain) as i64;
                let c = rng.random_range(0..workload.lhs_domain) as i64;
                let relation = relation_ids[next_payload as usize % relation_ids.len()];
                let fact = Fact::new(
                    relation,
                    vec![
                        Value::int(a),
                        Value::int(b),
                        Value::int(c),
                        Value::int(next_payload),
                    ],
                );
                next_payload += 1;
                fact
            })
            .collect();
        live.extend(db.extend(inserts).expect("schema matches"));
        for _ in 0..deletes_per_round {
            let victim = live.swap_remove(rng.random_range(0..live.len()));
            db.delete(victim).expect("victim is live");
        }
        let mutate_s = mutate_start.elapsed().as_secs_f64();
        mutate_seconds += mutate_s;

        // Delta pipeline: replay the changelog into the conflict index
        // and the compiled bank.
        let delta_start = Instant::now();
        let applied = conflict.refresh(&db, &sigma);
        let bank_applied = bank.refresh(&db, &bank_queries).expect("bank refreshes");
        let delta_s = delta_start.elapsed().as_secs_f64();
        delta_seconds += delta_s;
        assert_eq!(
            applied, bank_applied,
            "both refreshes replay the same changelog window"
        );

        // Rebuild pipeline: the pre-delta cost — every derived structure
        // from scratch.
        let rebuild_start = Instant::now();
        let rebuilt_relation = RelationIndex::build(&db);
        let rebuilt_conflict = ConflictIndex::build(&db, &sigma);
        let rebuilt_bank = LineageBank::compile(&db, &bank_queries).expect("bank compiles");
        let rebuild_s = rebuild_start.elapsed().as_secs_f64();
        rebuild_seconds += rebuild_s;

        // The delta-maintained structures must be indistinguishable from
        // the rebuilds.
        assert_eq!(
            *db.relation_index(),
            rebuilt_relation,
            "patched relation index diverged from a fresh build"
        );
        assert_eq!(
            conflict, rebuilt_conflict,
            "refreshed conflict index diverged from a fresh build"
        );
        assert_eq!(
            bank.witness_count(),
            rebuilt_bank.witness_count(),
            "refreshed bank witness arena diverged"
        );
        for entry in 0..bank_queries.len() {
            assert_eq!(
                bank.query_witness_count(entry),
                rebuilt_bank.query_witness_count(entry),
                "entry {entry}"
            );
            assert_eq!(
                bank.is_fallback(entry),
                rebuilt_bank.is_fallback(entry),
                "entry {entry}"
            );
        }

        // Estimates over the refreshed state are bit-identical to
        // estimates over the rebuilt state under the same seed — the
        // refreshed conflict index backs the delta walk.
        let estimate_start = Instant::now();
        let delta_estimator =
            BatchEstimator::with_conflict_index(&db, &sigma, spec, conflict.clone())
                .expect("FDs with singleton ops");
        let delta_estimates = delta_estimator
            .estimate_batch_with_bank(&bank, &batch, params, &mut StdRng::seed_from_u64(17))
            .expect("estimation succeeds");
        let estimate_s = estimate_start.elapsed().as_secs_f64();
        estimate_seconds += estimate_s;
        let rebuilt_estimator =
            BatchEstimator::new(&db, &sigma, spec).expect("FDs with singleton ops");
        let rebuilt_estimates = rebuilt_estimator
            .estimate_batch_with_bank(
                &rebuilt_bank,
                &batch,
                params,
                &mut StdRng::seed_from_u64(17),
            )
            .expect("estimation succeeds");
        assert_eq!(
            delta_estimates, rebuilt_estimates,
            "refreshed-state estimates diverged from the rebuilt baseline"
        );

        let _ = write!(
            rows,
            "{}    {{\"round\": {round}, \"live_facts\": {}, \"mutate_ms\": {:.3}, \
             \"delta_ms\": {:.3}, \"rebuild_ms\": {:.3}, \"estimate_ms\": {:.3}, \
             \"witnesses\": {}}}",
            if rows.is_empty() { "\n" } else { ",\n" },
            live.len(),
            mutate_s * 1e3,
            delta_s * 1e3,
            rebuild_s * 1e3,
            estimate_s * 1e3,
            bank.witness_count(),
        );
        eprintln!(
            "[e20] round {round}: mutate {:.2} ms, delta {:.2} ms, rebuild {:.2} ms, \
             estimate {:.2} ms",
            mutate_s * 1e3,
            delta_s * 1e3,
            rebuild_s * 1e3,
            estimate_s * 1e3,
        );
    }

    // The acceptance gate: bringing the derived structures up to date by
    // changelog replay beats rebuild-everything by ≥ 2x over the whole
    // stream.  (The mutations themselves are common to both pipelines —
    // they share the database — and are reported separately; the ratio
    // with them charged entirely to the delta side is also emitted.)
    let speedup = rebuild_seconds / delta_seconds.max(1e-9);
    let speedup_with_mutation = rebuild_seconds / (mutate_seconds + delta_seconds).max(1e-9);
    if !smoke {
        assert!(
            speedup >= 2.0,
            "delta maintenance speedup {speedup:.2}x < 2x at {facts} facts"
        );
    }
    let estimates_per_sec = (rounds * BANK_SIZE) as f64 / estimate_seconds.max(1e-9);

    let json = format!(
        "{{\n  \"experiment\": \"e20_churn_maintenance\",\n  \
         \"generator\": \"uniform operations, singleton removals (Theorem 7.5)\",\n  \
         \"workload\": \"MultiFdWorkload({facts} facts, 2 relations, lhs domain {facts}/4, seed 42) + \
         overlapping_join_bank({BANK_SIZE}, prefix_depth = {PREFIX_DEPTH}, seed 7), \
         {rounds} rounds x {inserts_per_round} inserts + {deletes_per_round} deletes\",\n  \
         \"delta_pipeline\": \"in-place relation-index patching + ConflictIndex::refresh + \
         LineageBank::refresh over the database changelog\",\n  \
         \"rebuild_pipeline\": \"RelationIndex::build + ConflictIndex::build + \
         LineageBank::compile from scratch each round\",\n  \
         \"mutate_seconds\": {mutate_seconds:.4},\n  \
         \"delta_refresh_seconds\": {delta_seconds:.4},\n  \
         \"rebuild_seconds\": {rebuild_seconds:.4},\n  \
         \"maintenance_speedup\": {speedup:.2},\n  \
         \"maintenance_speedup_including_mutation\": {speedup_with_mutation:.2},\n  \
         \"estimate_samples\": {samples},\n  \
         \"batch_estimates_per_sec\": {estimates_per_sec:.1},\n  \
         \"bit_identical_estimates\": true,\n  \
         \"rounds\": [{rows}\n  ]\n}}\n"
    );
    emit_report("e20", smoke, &output, &json);
}
