//! Produces `BENCH_e22.json`: cost-based join planning over live
//! statistics versus the coverage-greedy baseline, and subtree-shared
//! bank compilation, on a Zipf-skewed multi-join workload.
//!
//! ```text
//! cargo run -p ucqa-bench --release --bin e22_report [-- [--smoke] [output.json]]
//! ```
//!
//! With `--smoke` a single tiny configuration is run with minimal budgets
//! and nothing is written to disk — the CI mode.
//!
//! Workload: [`SkewedJoinWorkload`] — per relation one **hot** anchor
//! value holding ~half the facts and a tail of singleton anchors, sparse
//! non-key conflicts (`C → B`).  Three head-to-heads per size:
//!
//! * **planning** — a bank of hot-first two-atom joins
//!   ([`ucqa_workload::skew::hot_tail_join_queries`]) compiled under
//!   coverage-greedy plans (`QueryEvaluator::new`, which ties towards the
//!   written hot-first order and scans the hot posting) and under
//!   cost-based plans (`QueryEvaluator::with_stats`, which starts from
//!   the singleton tail posting).  At 20k+ facts the costed enumeration
//!   must be ≥ 2x faster.
//! * **bank compilation** — a bank of 64 queries sharing an expensive
//!   hot⋈hot prefix in written order and diverging in one cheap tail atom
//!   ([`ucqa_workload::skew::hot_suffix_bank`]).  Costed plans move the
//!   tail atom first, destroying prefix sharing; the common-subtree
//!   factoring of `LineageBank` must keep the costed pass count
//!   ([`ucqa_query::CompileStats::steps`]) within 1.3x of the structural prefix-trie
//!   pass count.
//! * **streaming** — a [`WindowedEstimator`] over the skewed schema:
//!   steady-state ticks (fresh singleton inserts) must trigger **zero**
//!   replans, one forced-skew tick (a posting run tripling) exactly one,
//!   and the replan must not disturb the converged-draw reuse path.
//!
//! Every size asserts, outside all timers, that the two planners produce
//! bit-identical witness sets, identical fallback flags, and identical
//! same-seed fixed-samples estimates.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ucqa_bench::experiments::{emit_report, report_args, time_routine};
use ucqa_core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
use ucqa_core::{RunBudget, WindowSpec, WindowedEstimator};
use ucqa_db::{Database, Fact, FactId, FdSet, Value};
use ucqa_query::{CompileBudget, ConjunctiveQuery, LineageBank, QueryEvaluator};
use ucqa_repair::GeneratorSpec;
use ucqa_workload::skew::{hot_suffix_bank, hot_tail_join_queries, SkewedJoinWorkload};

const JOIN_QUERIES: usize = 8;
const BANK_SIZE: usize = 64;

/// Canonical per-entry witness sets of a bank (`None` = fallback entry).
fn canonical_witnesses(bank: &LineageBank) -> Vec<Option<BTreeSet<Vec<FactId>>>> {
    (0..bank.len())
        .map(|entry| {
            bank.witnesses_of(entry).map(|witnesses| {
                witnesses
                    .iter()
                    .map(|w| {
                        let mut ids: Vec<FactId> = w.iter().collect();
                        ids.sort_unstable();
                        ids
                    })
                    .collect()
            })
        })
        .collect()
}

/// Asserts the two planners agree on everything but cost: witness sets,
/// fallback flags, and same-seed fixed-samples estimates.
#[allow(clippy::too_many_arguments)]
fn assert_planners_agree(
    db: &Database,
    sigma: &FdSet,
    spec: GeneratorSpec,
    structural: &[QueryEvaluator],
    costed: &[QueryEvaluator],
    structural_bank: &LineageBank,
    costed_bank: &LineageBank,
    probe_samples: usize,
    label: &str,
) {
    assert_eq!(
        canonical_witnesses(structural_bank),
        canonical_witnesses(costed_bank),
        "{label}: witness sets diverged between planners"
    );
    for entry in 0..structural_bank.len() {
        assert_eq!(
            structural_bank.is_fallback(entry),
            costed_bank.is_fallback(entry),
            "{label}: fallback flag of entry {entry} diverged"
        );
    }
    let probe_params = ApproximationParams::new(0.2, 0.2)
        .expect("valid parameters")
        .with_mode(EstimatorMode::FixedSamples(probe_samples as u64));
    let estimator = BatchEstimator::new(db, sigma, spec)
        .expect("non-key FDs support singleton uniform operations");
    let probe = |bank: &LineageBank, evaluators: &[QueryEvaluator]| {
        let batch: Vec<BatchQuery<'_>> =
            evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();
        estimator
            .estimate_batch_with_bank(bank, &batch, probe_params, &mut StdRng::seed_from_u64(17))
            .expect("probe estimates")
    };
    assert_eq!(
        probe(structural_bank, structural),
        probe(costed_bank, costed),
        "{label}: same-seed estimates diverged between planners"
    );
}

/// The streaming leg: steady-state ticks keep the compiled plans, a
/// forced-skew tick replans exactly once, and the replan never disturbs
/// the converged-draw reuse path.  Returns `(steady_ticks, replans)`.
fn windowed_replan_study(facts: usize, max_samples: u64) -> (usize, u64) {
    let spec = GeneratorSpec::uniform_operations().with_singleton_only();
    // The scaling profile's conflict cliques (~20 facts per `C` value)
    // push answer probabilities below what the stopping rule can certify
    // cheaply; the drift study only needs *some* conflicts, so widen the
    // conflict domain to blocks of ~2 and keep the anchor skew.
    let workload = SkewedJoinWorkload::new(facts, 2, 50, facts.max(4), (facts / 4).max(1), 11);
    let (db, sigma) = workload.generate();
    let queries: Vec<(QueryEvaluator, Vec<Value>)> = hot_tail_join_queries(&db, 2, 7)
        .expect("well-formed queries")
        .into_iter()
        .map(|q| (QueryEvaluator::new(q), Vec::new()))
        .collect();
    let relations: Vec<_> = (0..2)
        .map(|r| db.schema().relation_id(&format!("R{r}")).expect("relation"))
        .collect();
    let mut w = WindowedEstimator::new(db, sigma, spec, WindowSpec::Unbounded, queries)
        .expect("non-key FDs support singleton uniform operations");
    let params = ApproximationParams::new(0.3, 0.2)
        .expect("valid parameters")
        .with_mode(EstimatorMode::OptimalStopping { max_samples });
    let budget = RunBudget::unlimited();
    let first = w
        .estimate(params, &budget, &mut StdRng::seed_from_u64(5))
        .expect("baseline pass");
    assert!(first.outcome.converged(), "baseline pass converges");

    // Steady state: fresh singleton values everywhere — no posting run
    // or cardinality moves past the 2x drift factor, no conflict forms,
    // no query atom matches.
    let mut next = (facts * 10) as i64;
    let fresh = |next: &mut i64, relation: usize| {
        *next += 4;
        Fact::new(
            relations[relation],
            vec![
                Value::int(*next),
                Value::int(*next + 1),
                Value::int(*next + 2),
                Value::int(*next + 3),
            ],
        )
    };
    let steady_ticks = 3;
    for tick in 0..steady_ticks {
        let inserts = vec![fresh(&mut next, 0), fresh(&mut next, 1)];
        w.tick(inserts, &[]).expect("steady tick");
        assert_eq!(
            w.replans(),
            0,
            "steady-state tick {tick} must keep the compiled plans"
        );
    }

    // Forced skew: three facts sharing one payload value triple that
    // column's longest posting run (1 → 3 > 2x) — exactly one replan.
    let burst: Vec<Fact> = (0..3)
        .map(|_| {
            next += 4;
            Fact::new(
                relations[0],
                vec![
                    Value::int(next),
                    Value::int(next + 1),
                    Value::int(next + 2),
                    Value::int(-7),
                ],
            )
        })
        .collect();
    w.tick(burst, &[]).expect("skew tick");
    assert_eq!(w.replans(), 1, "the forced-skew tick replans exactly once");

    // The replan only re-costed join order: no witness set moved, so the
    // whole bank still answers from the converged baseline at zero draws.
    let reuse = w
        .estimate(params, &budget, &mut StdRng::seed_from_u64(99))
        .expect("post-replan pass");
    assert_eq!(reuse.tick_draws, 0, "replanning must not break draw reuse");
    assert_eq!(reuse.outcome.queries, first.outcome.queries);

    // And the rebased snapshot absorbs the skew: the next steady tick
    // does not replan again.
    let insert = fresh(&mut next, 0);
    w.tick(vec![insert], &[]).expect("post-skew steady tick");
    assert_eq!(w.replans(), 1, "the drift snapshot rebases after a replan");
    (steady_ticks, w.replans())
}

fn main() {
    let (smoke, output) = report_args("BENCH_e22.json");
    let spec = GeneratorSpec::uniform_operations().with_singleton_only();

    let (sizes, compile_iters, probe_samples, windowed_facts, windowed_samples): (
        &[usize],
        u64,
        usize,
        usize,
        u64,
    ) = if smoke {
        (&[800], 5, 20, 200, 20_000)
    } else {
        (&[5_000, 20_000, 40_000], 30, 50, 400, 200_000)
    };

    let mut rows = String::new();
    for &facts in sizes {
        let workload = SkewedJoinWorkload::scaling(facts, 42);
        let (db, sigma) = workload.generate();

        // --- Planning head-to-head: hot-first joins, both planners. ---
        let join_queries = hot_tail_join_queries(&db, JOIN_QUERIES, 7).expect("join queries");
        let plan_both = |queries: &[ConjunctiveQuery],
                         costed: bool|
         -> (Vec<QueryEvaluator>, LineageBank, ucqa_query::CompileStats) {
            let evaluators: Vec<QueryEvaluator> = queries
                .iter()
                .map(|q| {
                    if costed {
                        QueryEvaluator::with_stats(q.clone(), &db).expect("costed plan builds")
                    } else {
                        QueryEvaluator::new(q.clone())
                    }
                })
                .collect();
            let refs: Vec<(&QueryEvaluator, &[Value])> =
                evaluators.iter().map(|e| (e, &[] as &[Value])).collect();
            let (bank, stats) = LineageBank::compile_instrumented(
                &db,
                &refs,
                ucqa_query::lineage::DEFAULT_WITNESS_CAP,
                &CompileBudget::unlimited(),
            )
            .expect("bank compiles");
            (evaluators, bank, stats)
        };
        let (structural, structural_bank, structural_stats) = plan_both(&join_queries, false);
        let (costed, costed_bank, costed_stats) = plan_both(&join_queries, true);
        assert_planners_agree(
            &db,
            &sigma,
            spec,
            &structural,
            &costed,
            &structural_bank,
            &costed_bank,
            probe_samples,
            &format!("{facts} facts, join bank"),
        );

        let time_compile = |evaluators: &[QueryEvaluator]| -> f64 {
            let refs: Vec<(&QueryEvaluator, &[Value])> =
                evaluators.iter().map(|e| (e, &[] as &[Value])).collect();
            let (ns, _) = time_routine(compile_iters, || {
                let bank = LineageBank::compile(&db, &refs).expect("bank compiles");
                std::hint::black_box(bank.len());
            });
            ns
        };
        let structural_ns = time_compile(&structural);
        let costed_ns = time_compile(&costed);
        let speedup = structural_ns / costed_ns.max(1e-9);

        // --- Bank compilation: shared written prefix vs costed suffix. ---
        let suffix_queries = hot_suffix_bank(&db, BANK_SIZE, 3).expect("suffix bank");
        let (bank_structural, bank_structural_lb, bank_structural_stats) =
            plan_both(&suffix_queries, false);
        let (bank_costed, bank_costed_lb, bank_costed_stats) = plan_both(&suffix_queries, true);
        for entry in 0..BANK_SIZE {
            assert!(
                !bank_structural_lb.is_fallback(entry),
                "{facts} facts: suffix-bank entry {entry} overflowed the witness cap"
            );
        }
        assert_planners_agree(
            &db,
            &sigma,
            spec,
            &bank_structural,
            &bank_costed,
            &bank_structural_lb,
            &bank_costed_lb,
            probe_samples,
            &format!("{facts} facts, suffix bank"),
        );
        // Costed plans put the distinct tail atom first, so without
        // subtree sharing every query would re-enumerate the hot join;
        // the factoring must keep the pass count within 1.3x of the
        // structural prefix trie.
        assert!(
            bank_costed_stats.shared_subtrees >= 1,
            "{facts} facts: the costed suffix bank shares no subtree"
        );
        assert!(
            bank_costed_stats.replays as usize >= BANK_SIZE,
            "{facts} facts: the shared hot suffix replayed only {} times",
            bank_costed_stats.replays
        );
        let pass_ratio = bank_costed_stats.steps as f64 / bank_structural_stats.steps.max(1) as f64;
        assert!(
            pass_ratio <= 1.3,
            "{facts} facts: costed bank compile pass count {} exceeds 1.3x \
             the prefix-trie pass count {}",
            bank_costed_stats.steps,
            bank_structural_stats.steps
        );

        if !smoke && facts >= 20_000 {
            assert!(
                speedup >= 2.0,
                "costed enumeration speedup {speedup:.2}x < 2x at {facts} facts"
            );
        }

        let _ = write!(
            rows,
            "{}    {{\"facts\": {facts}, \
             \"structural_compile_us\": {:.1}, \"costed_compile_us\": {:.1}, \
             \"speedup\": {speedup:.2}, \
             \"structural_steps\": {}, \"costed_steps\": {}, \
             \"bank_structural_steps\": {}, \"bank_costed_steps\": {}, \
             \"bank_pass_ratio\": {pass_ratio:.3}, \
             \"bank_shared_subtrees\": {}, \"bank_replays\": {}}}",
            if rows.is_empty() { "\n" } else { ",\n" },
            structural_ns / 1e3,
            costed_ns / 1e3,
            structural_stats.steps,
            costed_stats.steps,
            bank_structural_stats.steps,
            bank_costed_stats.steps,
            bank_costed_stats.shared_subtrees,
            bank_costed_stats.replays,
        );
        eprintln!(
            "[e22] {facts} facts: compile structural {:.1} us vs costed {:.1} us ({speedup:.2}x), \
             bank-{BANK_SIZE} passes {} vs {} ({pass_ratio:.3}x, {} shared subtrees)",
            structural_ns / 1e3,
            costed_ns / 1e3,
            bank_structural_stats.steps,
            bank_costed_stats.steps,
            bank_costed_stats.shared_subtrees,
        );
    }

    let (steady_ticks, replans) = windowed_replan_study(windowed_facts, windowed_samples);
    eprintln!(
        "[e22] windowed: {steady_ticks} steady ticks at zero replans, \
         forced skew replanned {replans} time(s), reuse path intact"
    );

    let json = format!(
        "{{\n  \"experiment\": \"e22_cost_based_planning\",\n  \
         \"generator\": \"uniform operations, singleton removals (Theorem 7.5)\",\n  \
         \"workload\": \"SkewedJoinWorkload::scaling (2 relations, one hot anchor per relation \
         at 50%, singleton tails, non-key FD C -> B), {JOIN_QUERIES} hot-first joins + \
         {BANK_SIZE}-query hot-suffix bank\",\n  \
         \"planning\": \"JoinPlan::build_costed (live RelationIndex stats: shortest bound \
         posting run, cardinality / distinct products) vs coverage-greedy written order\",\n  \
         \"bank_compilation\": \"scan-trie prefix sharing + canonical common-subtree factoring \
         (CompileStats pass counts)\",\n  \
         \"streaming\": \"WindowedEstimator drift-gated replanning (factor 2), {steady_ticks} \
         steady ticks at zero replans, forced skew replans {replans}, converged-draw reuse \
         preserved across the replan\",\n  \
         \"bit_identical\": \"witness sets, fallback flags and same-seed estimates asserted \
         equal between planners at every size\",\n  \
         \"sizes\": [{rows}\n  ]\n}}\n"
    );
    emit_report("e22", smoke, &output, &json);
}
