//! Produces `BENCH_e15.json`: batched multi-query FPRAS throughput — a
//! bank of `k` queries estimated from **one** shared uniform-operations
//! walk loop (`BatchEstimator` + `LineageBank`) vs. `k` independent
//! single-query estimator runs, on the multi-FD scaling workload.
//!
//! ```text
//! cargo run -p ucqa-bench --release --bin e15_report [-- [--smoke] [output.json]]
//! ```
//!
//! With `--smoke` a single tiny size is run with minimal sample budgets
//! and nothing is written to disk — the CI mode.
//!
//! The JSON records, per database size: the shared lineage-bank shape
//! (distinct arena witnesses vs. the sum of per-query witnesses), the
//! wall-clock seconds and query-samples/second of the batched run, of the
//! `k` independent runs, and of the rayon-parallel batched run, the
//! batched-vs-independent speedup, and whether the batched estimates were
//! bit-identical to the independent ones under the shared seed (they must
//! be — the property tests enforce it; the report records it as a
//! cross-check).

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ucqa_bench::experiments::{emit_report, report_args};
use ucqa_core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
use ucqa_query::QueryEvaluator;
use ucqa_repair::GeneratorSpec;
use ucqa_workload::{queries::fact_membership_query_bank, MultiFdWorkload};

const BANK_SIZE: usize = 8;

fn main() {
    let (smoke, output) = report_args("BENCH_e15.json");

    // (facts, samples per query): the budgets track the e14 walk
    // throughput so each configuration stays in the seconds range.
    let plan: &[(usize, u64)] = if smoke {
        &[(300, 50)]
    } else {
        &[(1_000, 2_000), (5_000, 400), (20_000, 80)]
    };
    let spec = GeneratorSpec::uniform_operations().with_singleton_only();

    let mut sizes = String::new();
    for &(facts, samples) in plan {
        let (db, sigma) = MultiFdWorkload::scaling(facts, 42).generate();
        let queries = fact_membership_query_bank(&db, BANK_SIZE, 5).expect("valid bank");
        let evaluators: Vec<QueryEvaluator> =
            queries.into_iter().map(QueryEvaluator::new).collect();
        let bank: Vec<BatchQuery<'_>> =
            evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();
        let params = ApproximationParams::new(0.2, 0.1)
            .expect("valid parameters")
            .with_mode(EstimatorMode::FixedSamples(samples));

        let build_start = Instant::now();
        let estimator = BatchEstimator::new(&db, &sigma, spec).expect("FDs with singleton ops");
        let build_ms = build_start.elapsed().as_secs_f64() * 1e3;

        // Batched: one walk loop answers the whole bank per draw.
        let start = Instant::now();
        let batched = estimator
            .estimate_batch(&bank, params, &mut StdRng::seed_from_u64(15))
            .expect("estimation succeeds");
        let batch_seconds = start.elapsed().as_secs_f64();

        // Independent baseline: k single-query loops over the same
        // estimator (sharing the prebuilt conflict index — the baseline is
        // only charged for what batching actually removes).
        let start = Instant::now();
        let independent: Vec<_> = bank
            .iter()
            .map(|q| {
                estimator
                    .estimator()
                    .estimate(
                        q.evaluator,
                        q.candidate,
                        params,
                        &mut StdRng::seed_from_u64(15),
                    )
                    .expect("estimation succeeds")
            })
            .collect();
        let independent_seconds = start.elapsed().as_secs_f64();
        let bit_identical = batched == independent;

        // Rayon-parallel batched run (same sample count per query).
        let start = Instant::now();
        let _parallel = estimator
            .estimate_batch_parallel(&bank, params, 15)
            .expect("parallel estimation succeeds");
        let parallel_seconds = start.elapsed().as_secs_f64();

        let query_samples = (samples * BANK_SIZE as u64) as f64;
        let speedup = independent_seconds / batch_seconds.max(1e-9);
        let _ = write!(
            sizes,
            "{}    {{\"facts\": {facts}, \"samples_per_query\": {samples}, \
             \"build_ms\": {build_ms:.2}, \
             \"batch_seconds\": {batch_seconds:.4}, \
             \"batch_query_samples_per_sec\": {:.0}, \
             \"independent_seconds\": {independent_seconds:.4}, \
             \"independent_query_samples_per_sec\": {:.0}, \
             \"speedup\": {speedup:.1}, \
             \"parallel_batch_seconds\": {parallel_seconds:.4}, \
             \"parallel_batch_query_samples_per_sec\": {:.0}, \
             \"bit_identical\": {bit_identical}}}",
            if sizes.is_empty() { "\n" } else { ",\n" },
            query_samples / batch_seconds.max(1e-9),
            query_samples / independent_seconds.max(1e-9),
            query_samples / parallel_seconds.max(1e-9),
        );
        eprintln!(
            "[e15] n = {facts}: bank of {BANK_SIZE} in {batch_seconds:.2}s, independent \
             {independent_seconds:.2}s ({speedup:.1}x), parallel {parallel_seconds:.2}s, \
             bit-identical: {bit_identical}"
        );
        assert!(
            bit_identical,
            "batched estimates diverged from the independent runs"
        );
    }

    let json = format!(
        "{{\n  \"experiment\": \"e15_batched_multi_query\",\n  \
         \"workload\": \"MultiFdWorkload::scaling(facts, seed 42) + \
         fact_membership_query_bank(k = {BANK_SIZE}, seed 5)\",\n  \
         \"generator\": \"uniform operations, singleton removals (Theorem 7.5)\",\n  \
         \"bank_size\": {BANK_SIZE},\n  \"sizes\": [{sizes}\n  ]\n}}\n"
    );
    emit_report("e15", smoke, &output, &json);
}
