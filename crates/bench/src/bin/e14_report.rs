//! Produces `BENCH_e14.json`: uniform-operations walk throughput with the
//! precomputed incremental conflict index vs. the per-step violation
//! rescan baseline, on the multi-FD scaling workload.
//!
//! ```text
//! cargo run -p ucqa-bench --release --bin e14_report [-- [--smoke] [output.json]]
//! ```
//!
//! With `--smoke` a single tiny size is run with minimal walk budgets and
//! nothing is written to disk — the CI mode that keeps the hot path
//! exercised end-to-end without paying full measurement time.
//!
//! The JSON records, per database size: the conflict structure (violations,
//! conflicting facts, pair operations), the one-off index build time, and
//! the walks/second of the index-backed walk and of the rescan baseline
//! over identical sampler configurations (both realise the same leaf
//! distribution; the cross-checking tests assert it).

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ucqa_bench::experiments::{emit_report, report_args, time_routine};
use ucqa_core::sample_operations::{OperationWalkSampler, WalkScratch};
use ucqa_db::FactSet;
use ucqa_workload::MultiFdWorkload;

fn main() {
    let (smoke, output) = report_args("BENCH_e14.json");

    // (facts, index walks, rescan walks): the rescan budget shrinks with
    // the database because each of its walks costs O(|D|) per step.
    let plan: &[(usize, u64, u64)] = if smoke {
        &[(300, 50, 10)]
    } else {
        &[(1_000, 2_000, 40), (5_000, 500, 8), (20_000, 200, 2)]
    };

    let mut sizes = String::new();
    for &(facts, index_walks, rescan_walks) in plan {
        let (db, sigma) = MultiFdWorkload::scaling(facts, 42).generate();

        let build_start = Instant::now();
        let sampler = OperationWalkSampler::new(&db, &sigma);
        let index_build_ms = build_start.elapsed().as_secs_f64() * 1e3;
        let index = sampler.conflict_index();
        let (violations, conflicting, pair_ops) = (
            index.violations().len(),
            index.conflicting_facts().len(),
            index.pairs().len(),
        );

        let mut rng = StdRng::seed_from_u64(7);
        let mut repair = FactSet::empty(db.len());
        let mut scratch = WalkScratch::new();
        let (_, index_wps) = time_routine(index_walks, || {
            sampler.sample_result_into(&mut rng, &mut repair, &mut scratch)
        });
        let mut rng = StdRng::seed_from_u64(7);
        let (_, rescan_wps) = time_routine(rescan_walks, || {
            sampler.sample_result_rescan_into(&mut rng, &mut repair, &mut scratch)
        });
        let speedup = index_wps / rescan_wps;

        let _ = write!(
            sizes,
            "{}    {{\"facts\": {facts}, \"violations\": {violations}, \
             \"conflicting_facts\": {conflicting}, \"pair_ops\": {pair_ops}, \
             \"index_build_ms\": {index_build_ms:.2}, \
             \"index_walks\": {index_walks}, \"index_walks_per_sec\": {index_wps:.1}, \
             \"rescan_walks\": {rescan_walks}, \"rescan_walks_per_sec\": {rescan_wps:.1}, \
             \"speedup\": {speedup:.1}}}",
            if sizes.is_empty() { "\n" } else { ",\n" },
        );
        eprintln!(
            "[e14] n = {facts}: index {index_wps:.1} walks/s, rescan {rescan_wps:.1} walks/s \
             ({speedup:.1}x), build {index_build_ms:.2} ms"
        );
    }

    let json = format!(
        "{{\n  \"experiment\": \"e14_incremental_walk\",\n  \
         \"workload\": \"MultiFdWorkload::scaling(facts, seed 42)\",\n  \
         \"walk\": \"OperationWalkSampler::sample_result_into (index) vs \
         sample_result_rescan_into (baseline), pair + singleton operations\",\n  \
         \"sizes\": [{sizes}\n  ]\n}}\n"
    );
    emit_report("e14", smoke, &output, &json);
}
