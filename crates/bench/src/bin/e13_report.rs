//! Produces `BENCH_e13.json`: sample-throughput numbers for the compiled
//! lineage + reused-bitset sampling pipeline vs. the backtracking
//! evaluator, on the e12-style scaling workload.
//!
//! ```text
//! cargo run -p ucqa-bench --release --bin e13_report [-- [--smoke] [output.json]]
//! ```
//!
//! The JSON records, per database size: the mean per-check time of the
//! compiled-lineage witness scan and of the backtracking homomorphism
//! search (over the same pre-sampled repair pool), the resulting speedup,
//! and the end-to-end estimator sample throughput on the repairs,
//! sequences and operations paths (all of which run the allocation-free
//! `sample_into` hot loop), plus the rayon-parallel throughput.

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ucqa_bench::experiments::{emit_report, report_args, time_routine};
use ucqa_core::fpras::{ApproximationParams, EstimatorMode, OcqaEstimator};
use ucqa_core::sample_repairs::RepairSampler;
use ucqa_db::FactSet;
use ucqa_query::{CompiledLineage, QueryEvaluator};
use ucqa_repair::GeneratorSpec;
use ucqa_workload::{queries::block_lookup_query, BlockWorkload};

fn main() {
    let (smoke, output) = report_args("BENCH_e13.json");
    let mut sizes = String::new();

    let plan: &[usize] = if smoke { &[25] } else { &[25, 250, 1250] };
    for &blocks in plan {
        let (db, sigma) = BlockWorkload::uniform(blocks, 4, 23).generate();
        let n = db.len();
        let (query, candidate) = block_lookup_query(&db, 5).expect("valid query");
        let evaluator = QueryEvaluator::new(query);
        let lineage = CompiledLineage::compile(&evaluator, &db, &candidate)
            .expect("arity ok")
            .expect("under witness cap");

        // A fixed pool of sampled repairs, shared by both check paths.
        let sampler = RepairSampler::new(&db, &sigma).expect("primary keys");
        let mut rng = StdRng::seed_from_u64(4242);
        let mut buffer = FactSet::empty(n);
        let pool: Vec<FactSet> = (0..64)
            .map(|_| {
                sampler.sample_into(&mut rng, &mut buffer);
                buffer.clone()
            })
            .collect();

        let check_iters = 200_000u64;
        let mut index = 0usize;
        let (lineage_ns, _) = time_routine(check_iters, || {
            let repair = &pool[index % pool.len()];
            index += 1;
            std::hint::black_box(lineage.entails(repair));
        });
        let mut index = 0usize;
        let backtracking_iters = if n >= 1000 { 20_000 } else { check_iters };
        let (backtracking_ns, _) = time_routine(backtracking_iters, || {
            let repair = &pool[index % pool.len()];
            index += 1;
            std::hint::black_box(
                evaluator
                    .has_answer(&db, repair, &candidate)
                    .expect("arity validated"),
            );
        });
        let speedup = backtracking_ns / lineage_ns;

        // End-to-end estimator throughput (samples/second) per generator.
        //
        // The repairs path scales to every size.  The sequences path is
        // capped at the smallest size because the Lemma C.1 DP table
        // *shape* is still O(blocks² · pairs) even in the log-space-only
        // construction the estimator now uses.  The operations walk runs
        // on the incremental conflict index (see BENCH_e14.json for its
        // dedicated scaling study); its budgets are kept from the rescan
        // era for comparability across report versions.
        let mut throughputs = String::new();
        let mut record = |name: &str, samples: u64, spec: Option<GeneratorSpec>| {
            let budget = ApproximationParams::new(0.2, 0.1)
                .expect("valid parameters")
                .with_mode(EstimatorMode::FixedSamples(samples));
            let (estimate, elapsed) = match spec {
                Some(spec) => {
                    let estimator =
                        OcqaEstimator::new(&db, &sigma, spec).expect("primary keys supported");
                    let mut rng = StdRng::seed_from_u64(12);
                    let start = Instant::now();
                    let estimate = estimator
                        .estimate(&evaluator, &candidate, budget, &mut rng)
                        .expect("estimation succeeds");
                    (estimate, start.elapsed().as_secs_f64())
                }
                None => {
                    // Parallel repairs path.
                    let estimator =
                        OcqaEstimator::new(&db, &sigma, GeneratorSpec::uniform_repairs())
                            .expect("primary keys");
                    let start = Instant::now();
                    let estimate = estimator
                        .estimate_parallel(&evaluator, &candidate, budget, 2024)
                        .expect("parallel estimation succeeds");
                    (estimate, start.elapsed().as_secs_f64())
                }
            };
            let _ = write!(
                throughputs,
                "{}\"{name}\": {{\"samples\": {}, \"seconds\": {elapsed:.4}, \
                 \"samples_per_sec\": {:.0}}}",
                if throughputs.is_empty() { "" } else { ", " },
                estimate.samples,
                estimate.samples as f64 / elapsed.max(1e-9),
            );
        };
        record("repairs", 20_000, Some(GeneratorSpec::uniform_repairs()));
        record("repairs_parallel", 200_000, None);
        if blocks <= 25 {
            record(
                "sequences",
                20_000,
                Some(GeneratorSpec::uniform_sequences()),
            );
        }
        if blocks <= 250 {
            let walk_samples = if blocks <= 25 { 20_000 } else { 2_000 };
            record(
                "operations",
                walk_samples,
                Some(GeneratorSpec::uniform_operations()),
            );
        }

        let _ = write!(
            sizes,
            "{}    {{\"facts\": {n}, \"witnesses\": {}, \
             \"lineage_check_ns\": {lineage_ns:.1}, \
             \"backtracking_check_ns\": {backtracking_ns:.1}, \
             \"speedup\": {speedup:.1}, \"estimator_throughput\": {{{throughputs}}}}}",
            if sizes.is_empty() { "\n" } else { ",\n" },
            lineage.witness_count(),
        );
        eprintln!(
            "[e13] n = {n}: lineage {lineage_ns:.1} ns, backtracking {backtracking_ns:.1} ns \
             ({speedup:.1}x)"
        );
    }

    let json = format!(
        "{{\n  \"experiment\": \"e13_lineage_vs_backtracking\",\n  \
         \"workload\": \"BlockWorkload::uniform(blocks, 4, 23) + block_lookup_query(seed 5)\",\n  \
         \"check_pool\": 64,\n  \"sizes\": [{sizes}\n  ]\n}}\n"
    );
    emit_report("e13", smoke, &output, &json);
}
