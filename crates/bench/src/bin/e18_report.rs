//! Produces `BENCH_e18.json`: the cost and behaviour of the run-budget
//! machinery on the e16 adaptive batched stopping loop.
//!
//! ```text
//! cargo run -p ucqa-bench --release --bin e18_report [-- [--smoke] [output.json]]
//! ```
//!
//! With `--smoke` a single tiny size is run with minimal budgets and
//! nothing is written to disk — the CI mode.
//!
//! Three measurements over the e16 bank workload (multi-FD scaling
//! database, a bank of 8 fact-membership queries, one shared
//! uniform-operations walk stream):
//!
//! * **overhead** — the same adaptive run through
//!   `estimate_stopping_batch` (no budget plumbing) and through
//!   `estimate_stopping_batch_with_budget` with an *unconstrained*
//!   budget.  The budgeted loop polls the budget before every draw but
//!   consumes no randomness, so the outcomes must be bit-identical and
//!   the wall-clock overhead of the per-draw check is required to stay
//!   under 2% (asserted on the full workload; best-of-`REPS` timing to
//!   shave scheduler noise).
//! * **truncation** — the same run under a draw cap at half the
//!   converged stream length: every surviving query reports its partial
//!   estimate with the achieved `(ε′, δ/k)` bound obtained by inverting
//!   the DKLR target at the actual draw count.
//! * **resume** — the capped run continued with the remaining budget;
//!   the concatenated outcome must be bit-identical to the uninterrupted
//!   one (asserted).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ucqa_bench::experiments::{emit_report, report_args};
use ucqa_core::budget::{BudgetStatus, RunBudget};
use ucqa_core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
use ucqa_query::QueryEvaluator;
use ucqa_repair::GeneratorSpec;
use ucqa_workload::{queries::fact_membership_query_bank, MultiFdWorkload};

const BANK_SIZE: usize = 8;
const REPS: usize = 5;

fn main() {
    let (smoke, output) = report_args("BENCH_e18.json");
    let spec = GeneratorSpec::uniform_operations().with_singleton_only();

    let (facts, max_samples) = if smoke {
        (300usize, 20_000u64)
    } else {
        (2_000, 200_000)
    };
    let (epsilon, delta) = (0.2, 0.1);

    let (db, sigma) = MultiFdWorkload::scaling(facts, 42).generate();
    let queries = fact_membership_query_bank(&db, BANK_SIZE, 5).expect("valid bank");
    let evaluators: Vec<QueryEvaluator> = queries.into_iter().map(QueryEvaluator::new).collect();
    let bank: Vec<BatchQuery<'_>> = evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();
    let params = ApproximationParams::new(epsilon, delta)
        .expect("valid parameters")
        .with_mode(EstimatorMode::OptimalStopping { max_samples });
    let estimator = BatchEstimator::new(&db, &sigma, spec).expect("FDs with singleton ops");
    let unlimited = RunBudget::unlimited();

    // ---- overhead: plain vs unconstrained-budget adaptive loop ----
    // Best-of-REPS on both sides; the first budgeted run is also checked
    // bit-identical against the plain one.
    let mut plain_seconds = f64::INFINITY;
    let mut plain_outcome = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let outcome = estimator
            .estimate_stopping_batch(&bank, params, &mut StdRng::seed_from_u64(18))
            .expect("estimation succeeds");
        plain_seconds = plain_seconds.min(start.elapsed().as_secs_f64());
        plain_outcome.get_or_insert(outcome);
    }
    let plain_outcome = plain_outcome.expect("at least one rep ran");

    let mut budgeted_seconds = f64::INFINITY;
    let mut budgeted_outcome = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let outcome = estimator
            .estimate_stopping_batch_with_budget(
                &bank,
                params,
                &unlimited,
                &mut StdRng::seed_from_u64(18),
            )
            .expect("estimation succeeds");
        budgeted_seconds = budgeted_seconds.min(start.elapsed().as_secs_f64());
        budgeted_outcome.get_or_insert(outcome);
    }
    let budgeted_outcome = budgeted_outcome.expect("at least one rep ran");

    let bit_identical = plain_outcome
        .iter()
        .zip(&budgeted_outcome.queries)
        .all(|(p, b)| {
            (p.value, p.samples, p.successes) == (b.estimate, b.samples, b.successes)
                && b.status == BudgetStatus::Converged
        });
    let overhead_percent = (budgeted_seconds / plain_seconds.max(1e-12) - 1.0) * 100.0;
    let stream = plain_outcome.iter().map(|e| e.samples).max().unwrap_or(0);
    eprintln!(
        "[e18] n = {facts}, bank {BANK_SIZE}: plain {plain_seconds:.4}s, \
         unconstrained-budget {budgeted_seconds:.4}s (overhead {overhead_percent:+.2}%), \
         stream {stream}, bit-identical: {bit_identical}"
    );
    assert!(
        bit_identical,
        "the unconstrained budget diverged from the unbudgeted adaptive loop"
    );
    // Timing noise dominates at the smoke size (sub-100ms runs), so the
    // overhead ceiling is asserted on the full workload only.
    assert!(
        smoke || overhead_percent < 2.0,
        "budget-check overhead {overhead_percent:.2}% exceeds the 2% target"
    );

    // ---- truncation: a draw cap at half the converged stream ----
    let cap = (stream / 2).max(1);
    let capped_budget = RunBudget::unlimited().with_max_draws(cap);
    let mut rng = StdRng::seed_from_u64(18);
    let capped = estimator
        .estimate_stopping_batch_with_budget(&bank, params, &capped_budget, &mut rng)
        .expect("estimation succeeds");
    let converged_at_cap = capped
        .queries
        .iter()
        .filter(|q| q.status == BudgetStatus::Converged)
        .count();
    let worst_achieved = capped
        .queries
        .iter()
        .filter_map(|q| q.achieved.relative_epsilon)
        .fold(0.0f64, f64::max);
    eprintln!(
        "[e18] draw cap {cap}: {converged_at_cap}/{BANK_SIZE} queries converged, \
         worst achieved relative epsilon {worst_achieved:.4} (target {epsilon})"
    );

    // ---- resume: continue the capped run to convergence ----
    let resumed = estimator
        .estimate_stopping_batch_resume(&bank, params, &unlimited, &capped, &mut rng)
        .expect("resumption succeeds");
    let resume_bit_identical = plain_outcome
        .iter()
        .zip(&resumed.queries)
        .all(|(p, r)| (p.value, p.samples, p.successes) == (r.estimate, r.samples, r.successes));
    eprintln!("[e18] resume bit-identical to uninterrupted run: {resume_bit_identical}");
    assert!(
        resume_bit_identical,
        "resuming the capped run diverged from the uninterrupted stream"
    );

    let json = format!(
        "{{\n  \"experiment\": \"e18_budgeted_estimation\",\n  \
         \"generator\": \"uniform operations, singleton removals (Theorem 7.5)\",\n  \
         \"workload\": \"MultiFdWorkload::scaling({facts}, seed 42) + \
         fact_membership_query_bank(k = {BANK_SIZE}, seed 5)\",\n  \
         \"epsilon\": {epsilon}, \"delta\": {delta}, \"max_samples\": {max_samples},\n  \
         \"overhead\": {{\n    \"plain_seconds\": {plain_seconds:.4},\n    \
         \"unconstrained_budget_seconds\": {budgeted_seconds:.4},\n    \
         \"overhead_percent\": {overhead_percent:.2},\n    \
         \"stream_samples\": {stream},\n    \
         \"bit_identical\": {bit_identical},\n    \
         \"timing\": \"best of {REPS} repetitions\"\n  }},\n  \
         \"truncation\": {{\n    \"draw_cap\": {cap},\n    \
         \"converged_queries\": {converged_at_cap},\n    \
         \"worst_achieved_relative_epsilon\": {worst_achieved:.4}\n  }},\n  \
         \"resume\": {{\"bit_identical_to_uninterrupted\": {resume_bit_identical}}}\n}}\n"
    );
    emit_report("e18", smoke, &output, &json);
}
