//! Produces `BENCH_e16.json`: the adaptive batched stopping rule — a bank
//! of queries estimated under per-query Dagum–Karp–Luby–Ross success
//! targets `Υ(ε, δ/k)` from **one** shared uniform-operations walk stream
//! (`BatchEstimator::estimate_stopping_batch`), with queries *retiring*
//! as they converge — vs. `k` independent per-query stopping-rule runs
//! and vs. the batched fixed-sample loop.
//!
//! ```text
//! cargo run -p ucqa-bench --release --bin e16_report [-- [--smoke] [output.json]]
//! ```
//!
//! With `--smoke` a single tiny size is run with minimal budgets and
//! nothing is written to disk — the CI mode.
//!
//! Two workloads:
//!
//! * **bank** — the e15 multi-FD scaling workload with a bank of 8
//!   fact-membership queries.  The adaptive stream stops at the *maximum*
//!   per-query sample count instead of paying the *sum* like the
//!   independent baseline, so the batched-adaptive run should approach
//!   `k×` the baseline throughput; the sequential loop is bit-identical
//!   to the per-query runs under the shared seed (recorded as a
//!   cross-check).
//! * **skewed** — the star family of Proposition D.6: one rare query
//!   (the star centre survives with probability exactly `1/n`) pins the
//!   stream while a crowd of cheap leaf queries retires within a few
//!   hundred draws.  The JSON records the per-draw live-set shrink
//!   (query evaluations actually performed vs. the no-retirement
//!   `k · N_max`) and the wall-clock ratio against the batched
//!   fixed-sample loop forced to evaluate the full bank for the same
//!   stream length.

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ucqa_bench::experiments::{emit_report, report_args};
use ucqa_core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
use ucqa_core::Estimate;
use ucqa_db::FactId;
use ucqa_query::{Atom, ConjunctiveQuery, QueryEvaluator, Term};
use ucqa_repair::GeneratorSpec;
use ucqa_workload::{
    proposition_d6_database, queries::fact_membership_query_bank, MultiFdWorkload,
};

const BANK_SIZE: usize = 8;

fn main() {
    let (smoke, output) = report_args("BENCH_e16.json");
    let spec = GeneratorSpec::uniform_operations().with_singleton_only();

    // ---- Part A: bank of 8 on the multi-FD scaling workload ----
    let plan: &[(usize, u64)] = if smoke {
        &[(300, 20_000)]
    } else {
        &[(1_000, 200_000), (5_000, 200_000)]
    };
    let (epsilon, delta) = (0.2, 0.1);

    let mut sizes = String::new();
    for &(facts, max_samples) in plan {
        let (db, sigma) = MultiFdWorkload::scaling(facts, 42).generate();
        let queries = fact_membership_query_bank(&db, BANK_SIZE, 5).expect("valid bank");
        let evaluators: Vec<QueryEvaluator> =
            queries.into_iter().map(QueryEvaluator::new).collect();
        let bank: Vec<BatchQuery<'_>> =
            evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();
        let params = ApproximationParams::new(epsilon, delta)
            .expect("valid parameters")
            .with_mode(EstimatorMode::OptimalStopping { max_samples });

        let build_start = Instant::now();
        let estimator = BatchEstimator::new(&db, &sigma, spec).expect("FDs with singleton ops");
        let build_ms = build_start.elapsed().as_secs_f64() * 1e3;

        // Batched-adaptive: one shared stream, per-query targets
        // Υ(ε, δ/k), retirement as queries converge.
        let start = Instant::now();
        let adaptive = estimator
            .estimate_stopping_batch(&bank, params, &mut StdRng::seed_from_u64(16))
            .expect("estimation succeeds");
        let adaptive_seconds = start.elapsed().as_secs_f64();
        let adaptive_stream = adaptive.iter().map(|e| e.samples).max().unwrap_or(0);
        let adaptive_draw_evals: u64 = adaptive.iter().map(|e| e.samples).sum();

        // Per-query-adaptive baseline: k independent stopping-rule runs
        // with the same per-query guarantee (ε, δ/k), sharing the
        // prebuilt conflict index.  The sequential batched loop must be
        // bit-identical to these under the shared seed.
        let per_query_params = ApproximationParams::new(epsilon, delta / BANK_SIZE as f64)
            .expect("valid parameters")
            .with_mode(EstimatorMode::OptimalStopping { max_samples });
        let start = Instant::now();
        let independent: Vec<Estimate> = bank
            .iter()
            .map(|q| {
                estimator
                    .estimator()
                    .estimate(
                        q.evaluator,
                        q.candidate,
                        per_query_params,
                        &mut StdRng::seed_from_u64(16),
                    )
                    .expect("estimation succeeds")
            })
            .collect();
        let independent_seconds = start.elapsed().as_secs_f64();
        let independent_draws: u64 = independent.iter().map(|e| e.samples).sum();
        let bit_identical = adaptive == independent;

        // Batched-fixed baseline: the e15 loop forced to the adaptive
        // stream length, evaluating the full bank on every draw.
        let fixed_params = ApproximationParams::new(epsilon, delta)
            .expect("valid parameters")
            .with_mode(EstimatorMode::FixedSamples(adaptive_stream));
        let start = Instant::now();
        let _fixed = estimator
            .estimate_batch(&bank, fixed_params, &mut StdRng::seed_from_u64(16))
            .expect("estimation succeeds");
        let fixed_seconds = start.elapsed().as_secs_f64();

        // Round-based parallel adaptive run (guarantee-preserving, not
        // bit-identical — retirement is round-granular).
        let start = Instant::now();
        let _rounds = estimator
            .estimate_batch_parallel(&bank, params, 16)
            .expect("parallel estimation succeeds");
        let rounds_seconds = start.elapsed().as_secs_f64();

        let speedup = independent_seconds / adaptive_seconds.max(1e-9);
        let truncated = adaptive.iter().filter(|e| e.truncated).count();
        let _ = write!(
            sizes,
            "{}    {{\"facts\": {facts}, \"build_ms\": {build_ms:.2}, \
             \"adaptive_seconds\": {adaptive_seconds:.4}, \
             \"adaptive_stream_samples\": {adaptive_stream}, \
             \"adaptive_query_draw_evaluations\": {adaptive_draw_evals}, \
             \"independent_seconds\": {independent_seconds:.4}, \
             \"independent_total_samples\": {independent_draws}, \
             \"speedup_vs_independent\": {speedup:.1}, \
             \"fixed_same_stream_seconds\": {fixed_seconds:.4}, \
             \"rounds_parallel_seconds\": {rounds_seconds:.4}, \
             \"truncated_queries\": {truncated}, \
             \"bit_identical_to_per_query_runs\": {bit_identical}}}",
            if sizes.is_empty() { "\n" } else { ",\n" },
        );
        eprintln!(
            "[e16] bank n = {facts}: adaptive {adaptive_seconds:.2}s \
             (stream {adaptive_stream}), independent {independent_seconds:.2}s \
             ({independent_draws} draws, {speedup:.1}x), bit-identical: {bit_identical}"
        );
        assert!(
            bit_identical,
            "sequential batched-adaptive diverged from the per-query stopping runs"
        );
    }

    // ---- Part B: the skewed star workload ----
    // One rare query (the star centre, exact survival probability 1/n
    // under M^{uo,1}) pins the stream; the leaf queries retire early and
    // their witnesses leave the per-draw containment scan.
    let (star_n, leaf_queries, star_eps, star_max) = if smoke {
        (40usize, 8usize, 0.3, 50_000u64)
    } else {
        (400, 64, 0.3, 500_000)
    };
    let (db, sigma) = proposition_d6_database(star_n);
    let mut star_evals: Vec<QueryEvaluator> = Vec::new();
    for index in 0..=leaf_queries {
        // Fact 0 is the centre; facts 1.. are leaves.
        let fact = db.fact(FactId::new(index % db.len()));
        let terms = fact.values().iter().cloned().map(Term::Const).collect();
        let query = ConjunctiveQuery::boolean(db.schema(), vec![Atom::new(fact.relation(), terms)])
            .expect("valid atomic query");
        star_evals.push(QueryEvaluator::new(query));
    }
    let star_bank: Vec<BatchQuery<'_>> =
        star_evals.iter().map(|e| BatchQuery::new(e, &[])).collect();
    let k = star_bank.len();
    let params = ApproximationParams::new(star_eps, delta)
        .expect("valid parameters")
        .with_mode(EstimatorMode::OptimalStopping {
            max_samples: star_max,
        });
    let estimator = BatchEstimator::new(&db, &sigma, spec).expect("FDs with singleton ops");

    let start = Instant::now();
    let adaptive = estimator
        .estimate_stopping_batch(&star_bank, params, &mut StdRng::seed_from_u64(61))
        .expect("estimation succeeds");
    let adaptive_seconds = start.elapsed().as_secs_f64();
    let stream = adaptive.iter().map(|e| e.samples).max().unwrap_or(0);
    let draw_evals: u64 = adaptive.iter().map(|e| e.samples).sum();
    let no_retirement_evals = stream * k as u64;
    let eval_shrink = no_retirement_evals as f64 / draw_evals.max(1) as f64;
    let leaf_retirement: u64 = adaptive[1..].iter().map(|e| e.samples).max().unwrap_or(0);

    // The no-retirement baseline: the fixed batched loop over the same
    // stream length evaluates all k queries on every draw.
    let fixed_params = ApproximationParams::new(star_eps, delta)
        .expect("valid parameters")
        .with_mode(EstimatorMode::FixedSamples(stream));
    let start = Instant::now();
    let _fixed = estimator
        .estimate_batch(&star_bank, fixed_params, &mut StdRng::seed_from_u64(61))
        .expect("estimation succeeds");
    let fixed_seconds = start.elapsed().as_secs_f64();

    let rare = adaptive[0];
    let rare_exact = 1.0 / star_n as f64;
    let rare_error = (rare.value - rare_exact).abs() / rare_exact;
    let wall_clock_shrink = fixed_seconds / adaptive_seconds.max(1e-9);
    eprintln!(
        "[e16] skewed star n = {star_n}, bank {k}: leaves retired by draw \
         {leaf_retirement}, stream {stream}; per-draw evaluations {draw_evals} vs \
         {no_retirement_evals} without retirement ({eval_shrink:.1}x); adaptive \
         {adaptive_seconds:.2}s vs fixed-full-bank {fixed_seconds:.2}s \
         ({wall_clock_shrink:.2}x); rare query {:.5} (exact {rare_exact:.5}, \
         rel err {rare_error:.3}, truncated: {})",
        rare.value, rare.truncated
    );
    assert!(
        draw_evals < no_retirement_evals,
        "retirement did not shrink the per-draw work"
    );

    let json = format!(
        "{{\n  \"experiment\": \"e16_adaptive_batched_stopping\",\n  \
         \"generator\": \"uniform operations, singleton removals (Theorem 7.5)\",\n  \
         \"stopping_rule\": \"Dagum-Karp-Luby-Ross, per-query target Upsilon(eps, delta/k)\",\n  \
         \"bank\": {{\n    \"workload\": \"MultiFdWorkload::scaling(facts, seed 42) + \
         fact_membership_query_bank(k = {BANK_SIZE}, seed 5)\",\n    \
         \"epsilon\": {epsilon}, \"delta\": {delta},\n    \"sizes\": [{sizes}\n    ]\n  }},\n  \
         \"skewed\": {{\n    \"workload\": \"proposition_d6_database(n = {star_n}) star; \
         1 centre query (exact probability 1/n) + {leaf_queries} leaf queries\",\n    \
         \"epsilon\": {star_eps}, \"delta\": {delta}, \"max_samples\": {star_max},\n    \
         \"stream_samples\": {stream},\n    \"leaves_retired_by_draw\": {leaf_retirement},\n    \
         \"query_draw_evaluations\": {draw_evals},\n    \
         \"no_retirement_evaluations\": {no_retirement_evals},\n    \
         \"per_draw_evaluation_shrink\": {eval_shrink:.1},\n    \
         \"adaptive_seconds\": {adaptive_seconds:.4},\n    \
         \"fixed_full_bank_seconds\": {fixed_seconds:.4},\n    \
         \"wall_clock_shrink\": {wall_clock_shrink:.2},\n    \
         \"rare_query\": {{\"estimate\": {:.6}, \"exact\": {rare_exact:.6}, \
         \"relative_error\": {rare_error:.4}, \"samples\": {}, \"truncated\": {}}}\n  }}\n}}\n",
        rare.value, rare.samples, rare.truncated
    );
    emit_report("e16", smoke, &output, &json);
}
