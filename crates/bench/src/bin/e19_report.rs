//! Produces `BENCH_e19.json`: dictionary-encoded columnar fact storage at
//! million-fact scale — the e14-style walk suite (violation scan, conflict
//! index build, uniform-operations walks) and the e17-style bank suite
//! (shared-trie bank compilation plus batched estimation) on the symbol
//! path, with `Value`-path baselines reconstructed in this binary at the
//! smallest size to measure what the encoding buys.
//!
//! ```text
//! cargo run -p ucqa-bench --release --bin e19_report [-- [--smoke] [output.json]]
//! ```
//!
//! With `--smoke` a single tiny size is run with minimal budgets and
//! nothing is written to disk — the CI mode.
//!
//! Workload: `MultiFdWorkload::scaling` at 20k / 100k / 1M facts.  The
//! `Value`-path baselines replay the pre-encoding algorithms over a
//! materialised row store of owned `Fact`s: the hash-grouped violation
//! scan (full database and repair-consistency rescan), the body-order
//! backtracking witness enumeration with `Value` comparisons, and the
//! planned enumeration over hash postings keyed by owned `Value`s.
//! Every baseline result is asserted identical to the symbol path (same
//! violation pairs, same witness images, bit-identical batched estimates
//! between the planned and unplanned banks); at the baseline size the
//! repair-consistency rescan and the planned witness enumeration must
//! each be ≥ 2x faster than the algorithms the `Value` path shipped, and
//! the resident per-fact bytes at the largest size must stay below the
//! pre-encoding per-fact footprint extrapolated from the baseline size.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ucqa_bench::experiments::{emit_report, report_args, time_routine};
use ucqa_core::fpras::{ApproximationParams, BatchEstimator, BatchQuery, EstimatorMode};
use ucqa_core::sample_operations::{OperationWalkSampler, WalkScratch};
use ucqa_db::{Database, Fact, FactId, FactSet, FdSet, RelationId, Value, ViolationSet};
use ucqa_query::{ConjunctiveQuery, QueryEvaluator, Term, Variable};
use ucqa_repair::GeneratorSpec;
use ucqa_workload::{queries::overlapping_join_bank, MultiFdWorkload};

const PREFIX_DEPTH: usize = 2;
const BANK_SIZE: usize = 8;

/// The pre-encoding row store: owned `Fact`s grouped per relation — the
/// layout the database used before dictionary encoding.  Materialised
/// outside the timed regions (the old storage held these rows resident).
fn value_store(db: &Database) -> Vec<Vec<(FactId, Fact)>> {
    let mut rows = vec![Vec::new(); db.schema().relation_count()];
    for (id, fact) in db.iter() {
        rows[fact.relation().index()].push((id, fact));
    }
    rows
}

/// Analytic per-database footprint of the pre-encoding storage: owned
/// `Fact`s (relation tag + `Vec<Value>`), the `(relation, values) → id`
/// key map with the same ~1.8x hash slack that
/// `Database::approx_fact_bytes` charges, and a by-relation posting entry.
fn value_path_bytes(db: &Database) -> usize {
    db.iter()
        .map(|(_, fact)| {
            let payload = std::mem::size_of_val(fact.values());
            std::mem::size_of::<Fact>()
                + payload
                + (std::mem::size_of::<(RelationId, Vec<Value>)>()
                    + payload
                    + std::mem::size_of::<FactId>())
                    * 9
                    / 5
                + std::mem::size_of::<FactId>()
        })
        .sum()
}

/// The pre-encoding violation scan: per FD, hash-group the relation's rows
/// by their `Value`-tuple on the left-hand side, then compare right-hand
/// sides pairwise inside each group.  With a `subset`, rows outside it are
/// skipped during grouping — the membership filter the pre-encoding code
/// paid when rescanning a repair handed over as a [`FactSet`].
fn value_violation_pairs_in(
    store: &[Vec<(FactId, Fact)>],
    sigma: &FdSet,
    subset: Option<&FactSet>,
) -> Vec<(FactId, FactId)> {
    let mut pairs = Vec::new();
    for (_, fd) in sigma.iter() {
        let rows = &store[fd.relation().index()];
        let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (row, (id, fact)) in rows.iter().enumerate() {
            if subset.is_some_and(|live| !live.contains(*id)) {
                continue;
            }
            let key: Vec<Value> = fd.lhs().iter().map(|&a| fact.value_at(a).clone()).collect();
            groups.entry(key).or_default().push(row);
        }
        for group in groups.values() {
            for (k, &i) in group.iter().enumerate() {
                for &j in &group[k + 1..] {
                    let (a, b) = (&rows[i], &rows[j]);
                    if !fd.satisfied_by_pair(&a.1, &b.1) {
                        pairs.push((a.0.min(b.0), a.0.max(b.0)));
                    }
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// A query atom lowered onto the pre-encoding representation: `Value`
/// constants and slot-numbered variables.
enum ValueTerm {
    Const(Value),
    Var(usize),
}

struct ValueAtom {
    relation: usize,
    terms: Vec<ValueTerm>,
}

fn value_atoms(query: &ConjunctiveQuery) -> (Vec<ValueAtom>, usize) {
    let mut slots: BTreeMap<Variable, usize> = BTreeMap::new();
    let atoms = query
        .atoms()
        .iter()
        .map(|atom| ValueAtom {
            relation: atom.relation().index(),
            terms: atom
                .terms()
                .iter()
                .map(|term| match term {
                    Term::Const(value) => ValueTerm::Const(value.clone()),
                    Term::Var(var) => {
                        let next = slots.len();
                        ValueTerm::Var(*slots.entry(var.clone()).or_insert(next))
                    }
                })
                .collect(),
        })
        .collect();
    let slot_count = slots.len();
    (atoms, slot_count)
}

/// The pre-encoding witness enumeration: body-order backtracking with
/// whole-relation scans and `Value` comparisons — the algorithm of
/// `for_each_answer_image_unplanned` before symbols, over the row store.
fn value_enumerate(
    store: &[Vec<(FactId, Fact)>],
    atoms: &[ValueAtom],
    slot_count: usize,
    visit: &mut impl FnMut(&[FactId]),
) {
    fn go(
        store: &[Vec<(FactId, Fact)>],
        atoms: &[ValueAtom],
        depth: usize,
        bindings: &mut [Option<Value>],
        image: &mut Vec<FactId>,
        visit: &mut impl FnMut(&[FactId]),
    ) {
        let Some(atom) = atoms.get(depth) else {
            visit(image);
            return;
        };
        let mut added: Vec<usize> = Vec::new();
        for (id, fact) in &store[atom.relation] {
            added.clear();
            let mut ok = true;
            for (term, value) in atom.terms.iter().zip(fact.values()) {
                match term {
                    ValueTerm::Const(constant) => {
                        if constant != value {
                            ok = false;
                            break;
                        }
                    }
                    ValueTerm::Var(slot) => match &bindings[*slot] {
                        Some(bound) => {
                            if bound != value {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            bindings[*slot] = Some(value.clone());
                            added.push(*slot);
                        }
                    },
                }
            }
            if ok {
                image.push(*id);
                go(store, atoms, depth + 1, bindings, image, visit);
                image.pop();
            }
            for &slot in &added {
                bindings[slot] = None;
            }
        }
    }
    let mut bindings: Vec<Option<Value>> = vec![None; slot_count];
    go(store, atoms, 0, &mut bindings, &mut Vec::new(), visit);
}

/// The pre-encoding access paths: `(relation, position, Value) → fact id`
/// posting lists in a hash map — the index shape the planned executor
/// probed before symbols — plus the decoded row store.
struct ValueIndex {
    postings: HashMap<(usize, usize, Value), Vec<FactId>>,
    facts: Vec<Fact>,
    by_relation: Vec<Vec<FactId>>,
}

fn value_index(db: &Database) -> ValueIndex {
    let mut postings: HashMap<(usize, usize, Value), Vec<FactId>> = HashMap::new();
    let mut facts = Vec::with_capacity(db.len());
    let mut by_relation = vec![Vec::new(); db.schema().relation_count()];
    for (id, fact) in db.iter() {
        for (position, value) in fact.values().iter().enumerate() {
            postings
                .entry((fact.relation().index(), position, value.clone()))
                .or_default()
                .push(id);
        }
        by_relation[fact.relation().index()].push(id);
        facts.push(fact);
    }
    ValueIndex {
        postings,
        facts,
        by_relation,
    }
}

/// The pre-encoding planned enumeration: at each join step, probe the
/// hash postings with an owned `(relation, position, Value)` key for every
/// bound position, walk the shortest run, and match candidates by `Value`
/// comparison — the access pattern of the plan executor before symbols
/// replaced hash probes with array offsets.
fn value_planned_enumerate(
    index: &ValueIndex,
    atoms: &[ValueAtom],
    slot_count: usize,
    visit: &mut impl FnMut(&[FactId]),
) {
    const EMPTY: &[FactId] = &[];
    fn go(
        index: &ValueIndex,
        atoms: &[ValueAtom],
        depth: usize,
        bindings: &mut [Option<Value>],
        image: &mut Vec<FactId>,
        visit: &mut impl FnMut(&[FactId]),
    ) {
        let Some(atom) = atoms.get(depth) else {
            visit(image);
            return;
        };
        let mut candidates: Option<&[FactId]> = None;
        for (position, term) in atom.terms.iter().enumerate() {
            let bound = match term {
                ValueTerm::Const(value) => Some(value.clone()),
                ValueTerm::Var(slot) => bindings[*slot].clone(),
            };
            if let Some(value) = bound {
                let run = index
                    .postings
                    .get(&(atom.relation, position, value))
                    .map_or(EMPTY, Vec::as_slice);
                if candidates.is_none_or(|best| run.len() < best.len()) {
                    candidates = Some(run);
                }
            }
        }
        let candidates = candidates.unwrap_or(&index.by_relation[atom.relation]);
        let mut added: Vec<usize> = Vec::new();
        for &id in candidates {
            let fact = &index.facts[id.index()];
            added.clear();
            let mut ok = true;
            for (term, value) in atom.terms.iter().zip(fact.values()) {
                match term {
                    ValueTerm::Const(constant) => {
                        if constant != value {
                            ok = false;
                            break;
                        }
                    }
                    ValueTerm::Var(slot) => match &bindings[*slot] {
                        Some(bound) => {
                            if bound != value {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            bindings[*slot] = Some(value.clone());
                            added.push(*slot);
                        }
                    },
                }
            }
            if ok {
                image.push(id);
                go(index, atoms, depth + 1, bindings, image, visit);
                image.pop();
            }
            for &slot in &added {
                bindings[slot] = None;
            }
        }
    }
    let mut bindings: Vec<Option<Value>> = vec![None; slot_count];
    go(index, atoms, 0, &mut bindings, &mut Vec::new(), visit);
}

fn normalized_image(image: &[FactId]) -> Vec<FactId> {
    let mut img = image.to_vec();
    img.sort_unstable();
    img.dedup();
    img
}

fn main() {
    let (smoke, output) = report_args("BENCH_e19.json");
    let spec = GeneratorSpec::uniform_operations().with_singleton_only();

    // (facts, scan iters, enum iters, compile iters, walks, samples): the
    // budgets shrink with the database so the 1M row stays minutes, not
    // hours; the baselines only run at the first (smallest) size.
    let plan: &[(usize, u64, u64, u64, u64, u64)] = if smoke {
        &[(300, 2, 2, 2, 20, 100)]
    } else {
        &[
            (20_000, 5, 3, 3, 200, 400),
            (100_000, 3, 1, 2, 40, 100),
            (1_000_000, 1, 1, 1, 5, 10),
        ]
    };

    let mut rows = String::new();
    let mut baseline_value_per_fact = f64::NAN;
    let mut last_per_fact = f64::NAN;
    for (size_index, &(facts, scan_iters, enum_iters, compile_iters, walks, samples)) in
        plan.iter().enumerate()
    {
        let baseline = size_index == 0;
        let generate_start = Instant::now();
        let (db, sigma) = MultiFdWorkload::scaling(facts, 42).generate();
        let generate_ms = generate_start.elapsed().as_secs_f64() * 1e3;
        let index_start = Instant::now();
        db.relation_index();
        let index_ms = index_start.elapsed().as_secs_f64() * 1e3;
        let dict_symbols = db.dictionary().len();
        let per_fact = db.approx_fact_bytes() as f64 / db.len() as f64;
        let value_per_fact = value_path_bytes(&db) as f64 / db.len() as f64;
        last_per_fact = per_fact;
        if baseline {
            baseline_value_per_fact = value_per_fact;
        }

        // Walk suite (e14-style): violation scan, conflict-index build,
        // uniform-operations walks.
        let (scan_ns, _) = time_routine(scan_iters, || {
            drop(ViolationSet::of_database(&db, &sigma));
        });
        let scan_ms = scan_ns / 1e6;
        let violations = ViolationSet::of_database(&db, &sigma);
        let conflicting = violations.conflicting_facts().len();
        let mut sym_pairs = violations.conflicting_pairs();
        sym_pairs.sort_unstable();
        sym_pairs.dedup();

        let store = baseline.then(|| value_store(&db));
        let (value_scan_cell, scan_speedup_cell) = match &store {
            Some(store) => {
                let (value_scan_ns, _) = time_routine(scan_iters, || {
                    drop(value_violation_pairs_in(store, &sigma, None));
                });
                assert_eq!(
                    value_violation_pairs_in(store, &sigma, None),
                    sym_pairs,
                    "value-path violation scan diverged from the symbol kernel"
                );
                let speedup = value_scan_ns / scan_ns.max(1.0);
                (
                    format!("{:.2}", value_scan_ns / 1e6),
                    format!("{speedup:.1}"),
                )
            }
            None => ("null".to_string(), "null".to_string()),
        };

        let build_start = Instant::now();
        let sampler = OperationWalkSampler::new(&db, &sigma);
        let sampler_build_ms = build_start.elapsed().as_secs_f64() * 1e3;
        let mut rng = StdRng::seed_from_u64(7);
        let mut repair = FactSet::empty(db.len());
        let mut scratch = WalkScratch::new();
        let (_, walks_per_sec) = time_routine(walks, || {
            sampler.sample_result_into(&mut rng, &mut repair, &mut scratch)
        });

        // The walk's rescan hot path: checking a sampled repair for
        // consistency.  No violations are emitted, so this isolates pure
        // detection cost — posting-run grouping over symbols vs. hashing
        // `Value` tuples.
        let mut rescan_set = ViolationSet::default();
        let mut rescan_live = Vec::new();
        let (repair_scan_ns, _) = time_routine(scan_iters.max(10), || {
            rescan_set.recompute(&db, &sigma, &repair, &mut rescan_live);
        });
        let repair_scan_ms = repair_scan_ns / 1e6;
        assert!(rescan_set.is_empty(), "sampled repair is consistent");
        let (value_repair_scan_cell, repair_speedup_cell) = match &store {
            Some(store) => {
                let (value_repair_ns, _) = time_routine(scan_iters.max(10), || {
                    drop(value_violation_pairs_in(store, &sigma, Some(&repair)));
                });
                assert!(
                    value_violation_pairs_in(store, &sigma, Some(&repair)).is_empty(),
                    "value-path repair scan diverged from the symbol kernel"
                );
                let speedup = value_repair_ns / repair_scan_ns.max(1.0);
                if !smoke {
                    assert!(
                        speedup >= 2.0,
                        "repair consistency scan speedup {speedup:.2}x < 2x at {facts} facts"
                    );
                }
                (
                    format!("{:.2}", value_repair_ns / 1e6),
                    format!("{speedup:.1}"),
                )
            }
            None => ("null".to_string(), "null".to_string()),
        };

        // Bank suite (e17-style): shared-trie compilation, witness
        // enumeration, batched estimation.
        let queries = overlapping_join_bank(&db, BANK_SIZE, PREFIX_DEPTH, 7).expect("valid bank");
        let evaluators: Vec<QueryEvaluator> =
            queries.iter().cloned().map(QueryEvaluator::new).collect();
        let stats_evaluators: Vec<QueryEvaluator> = queries
            .iter()
            .cloned()
            .map(|q| QueryEvaluator::with_stats(q, &db).expect("valid bank query"))
            .collect();
        let bank: Vec<BatchQuery<'_>> =
            evaluators.iter().map(|e| BatchQuery::new(e, &[])).collect();
        let estimator = BatchEstimator::new(&db, &sigma, spec).expect("FDs with singleton ops");

        let (planned_ns, _) = time_routine(compile_iters, || {
            drop(estimator.compile_bank(&bank).expect("compiles"))
        });
        let (unplanned_ns, _) = time_routine(compile_iters, || {
            drop(estimator.compile_bank_unplanned(&bank).expect("compiles"))
        });
        let compile_speedup = unplanned_ns / planned_ns.max(1.0);
        let planned_bank = estimator.compile_bank(&bank).expect("compiles");
        let unplanned_bank = estimator.compile_bank_unplanned(&bank).expect("compiles");
        assert_eq!(planned_bank.witness_count(), unplanned_bank.witness_count());
        for entry in 0..bank.len() {
            assert_eq!(
                planned_bank.query_witness_count(entry),
                unplanned_bank.query_witness_count(entry),
                "entry {entry}"
            );
        }

        let all = db.all_facts();
        let (planned_enum_ns, _) = time_routine(enum_iters, || {
            for evaluator in &stats_evaluators {
                evaluator
                    .for_each_answer_image(&db, &all, &[], |_| false)
                    .expect("boolean bank query");
            }
        });
        let (unplanned_enum_ns, _) = time_routine(enum_iters, || {
            for evaluator in &evaluators {
                evaluator
                    .for_each_answer_image_unplanned(&db, &all, &[], |_| false)
                    .expect("boolean bank query");
            }
        });
        let (value_enum_cell, value_planned_enum_cell, enum_speedup_cell) = match &store {
            Some(store) => {
                let lowered: Vec<(Vec<ValueAtom>, usize)> =
                    queries.iter().map(value_atoms).collect();
                let (value_enum_ns, _) = time_routine(enum_iters, || {
                    for (atoms, slot_count) in &lowered {
                        value_enumerate(store, atoms, *slot_count, &mut |_| {});
                    }
                });
                // The planned baseline probes hash postings keyed by owned
                // `Value`s — the index shape that preceded the dictionary
                // encoding — built untimed so only probe cost is measured.
                let index = value_index(&db);
                let (value_planned_ns, _) = time_routine(enum_iters, || {
                    for (atoms, slot_count) in &lowered {
                        value_planned_enumerate(&index, atoms, *slot_count, &mut |_| {});
                    }
                });
                // Identity: the naive and planned value-path images, the
                // unplanned symbol images and the stats-planned symbol
                // images all coincide.
                for (((atoms, slot_count), evaluator), stats) in
                    lowered.iter().zip(&evaluators).zip(&stats_evaluators)
                {
                    let mut value_images = BTreeSet::new();
                    value_enumerate(store, atoms, *slot_count, &mut |image| {
                        value_images.insert(normalized_image(image));
                    });
                    let mut value_planned_images = BTreeSet::new();
                    value_planned_enumerate(&index, atoms, *slot_count, &mut |image| {
                        value_planned_images.insert(normalized_image(image));
                    });
                    let mut unplanned_images = BTreeSet::new();
                    evaluator
                        .for_each_answer_image_unplanned(&db, &all, &[], |image| {
                            unplanned_images.insert(normalized_image(image));
                            false
                        })
                        .expect("boolean bank query");
                    let mut planned_images = BTreeSet::new();
                    stats
                        .for_each_answer_image(&db, &all, &[], |image| {
                            planned_images.insert(normalized_image(image));
                            false
                        })
                        .expect("boolean bank query");
                    assert_eq!(value_images, unplanned_images, "value path diverged");
                    assert_eq!(
                        value_planned_images, unplanned_images,
                        "value plan diverged"
                    );
                    assert_eq!(value_images, planned_images, "stats plan diverged");
                }
                // The asserted speedup pits the production path (stats-
                // planned symbol executor) against the algorithm the
                // `Value` path actually shipped: body-order backtracking
                // over the row store.  The planned `Value` executor is
                // reported alongside without an assert — at the baseline
                // size the whole store fits in cache, so hash-probe vs
                // array-offset differences hide behind identical
                // per-candidate compare loops.
                let speedup = value_enum_ns / planned_enum_ns.max(1.0);
                if !smoke {
                    assert!(
                        speedup >= 2.0,
                        "witness enumeration speedup {speedup:.2}x < 2x at {facts} facts"
                    );
                }
                (
                    format!("{:.2}", value_enum_ns / 1e6),
                    format!("{:.2}", value_planned_ns / 1e6),
                    format!("{speedup:.1}"),
                )
            }
            None => ("null".to_string(), "null".to_string(), "null".to_string()),
        };

        let params = ApproximationParams::new(0.2, 0.1)
            .expect("valid parameters")
            .with_mode(EstimatorMode::FixedSamples(samples));
        let start = Instant::now();
        let planned_estimates = estimator
            .estimate_batch_with_bank(&planned_bank, &bank, params, &mut StdRng::seed_from_u64(17))
            .expect("estimation succeeds");
        let estimate_seconds = start.elapsed().as_secs_f64();
        let unplanned_estimates = estimator
            .estimate_batch_with_bank(
                &unplanned_bank,
                &bank,
                params,
                &mut StdRng::seed_from_u64(17),
            )
            .expect("estimation succeeds");
        let bit_identical = planned_estimates == unplanned_estimates;
        assert!(
            bit_identical,
            "planned bank estimates diverged from the unplanned baseline"
        );

        let _ = write!(
            rows,
            "{}    {{\"facts\": {facts}, \"generate_ms\": {generate_ms:.1}, \
             \"relation_index_ms\": {index_ms:.2}, \"dict_symbols\": {dict_symbols}, \
             \"per_fact_bytes\": {per_fact:.1}, \
             \"value_path_per_fact_bytes\": {value_per_fact:.1}, \
             \"violations\": {}, \"conflicting_facts\": {conflicting}, \
             \"violation_scan_ms\": {scan_ms:.2}, \
             \"value_violation_scan_ms\": {value_scan_cell}, \
             \"violation_scan_speedup\": {scan_speedup_cell}, \
             \"repair_scan_ms\": {repair_scan_ms:.3}, \
             \"value_repair_scan_ms\": {value_repair_scan_cell}, \
             \"repair_scan_speedup\": {repair_speedup_cell}, \
             \"sampler_build_ms\": {sampler_build_ms:.1}, \
             \"walks\": {walks}, \"walks_per_sec\": {walks_per_sec:.1}, \
             \"bank\": {BANK_SIZE}, \"witnesses\": {}, \
             \"compile_planned_ms\": {:.2}, \"compile_unplanned_ms\": {:.2}, \
             \"compile_speedup\": {compile_speedup:.1}, \
             \"enum_planned_ms\": {:.2}, \"enum_unplanned_ms\": {:.2}, \
             \"value_enum_ms\": {value_enum_cell}, \
             \"value_planned_enum_ms\": {value_planned_enum_cell}, \
             \"enum_speedup\": {enum_speedup_cell}, \
             \"estimate_samples\": {samples}, \"estimate_seconds\": {estimate_seconds:.4}, \
             \"bit_identical_estimates\": {bit_identical}}}",
            if rows.is_empty() { "\n" } else { ",\n" },
            violations.len(),
            planned_bank.witness_count(),
            planned_ns / 1e6,
            unplanned_ns / 1e6,
            planned_enum_ns / 1e6,
            unplanned_enum_ns / 1e6,
        );
        eprintln!(
            "[e19] n = {facts}: {per_fact:.0} B/fact (value path {value_per_fact:.0}), \
             scan {scan_ms:.1} ms, {walks_per_sec:.1} walks/s, compile {:.1} ms \
             ({compile_speedup:.1}x over unplanned), estimate {estimate_seconds:.2}s, \
             bit-identical: {bit_identical}",
            planned_ns / 1e6,
        );
    }

    // The acceptance gate of the encoding: at the largest size the
    // resident per-fact footprint stays below the pre-encoding footprint
    // extrapolated from the baseline size (per-fact bytes of the old row
    // store are size-independent at fixed arity).
    assert!(
        last_per_fact < baseline_value_per_fact,
        "columnar storage regressed: {last_per_fact:.1} B/fact at the largest size vs \
         pre-encoding extrapolation {baseline_value_per_fact:.1} B/fact"
    );

    let json = format!(
        "{{\n  \"experiment\": \"e19_columnar_storage\",\n  \
         \"generator\": \"uniform operations, singleton removals (Theorem 7.5)\",\n  \
         \"workload\": \"MultiFdWorkload::scaling(facts, seed 42) + \
         overlapping_join_bank({BANK_SIZE}, prefix_depth = {PREFIX_DEPTH}, seed 7)\",\n  \
         \"symbol_path\": \"dictionary-encoded columnar storage: u32 symbol columns, \
         CSR postings, galloping intersection, sort-based violation scan\",\n  \
         \"value_baseline\": \"pre-encoding row store of owned Facts: hash-grouped \
         Value-tuple violation scan, body-order backtracking enumeration with Value \
         comparisons, planned enumeration over Value-keyed hash postings (run at \
         the smallest size, asserted identical)\",\n  \
         \"per_fact_bytes_largest\": {last_per_fact:.1},\n  \
         \"value_path_extrapolation_per_fact_bytes\": {baseline_value_per_fact:.1},\n  \
         \"sizes\": [{rows}\n  ]\n}}\n"
    );
    emit_report("e19", smoke, &output, &json);
}
