//! Error types for the database substrate.

use std::fmt;

/// Errors raised while constructing schemas, databases, or constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A relation name was declared twice in a schema.
    DuplicateRelation {
        /// The offending relation name.
        name: String,
    },
    /// A relation was referenced that is not part of the schema.
    UnknownRelation {
        /// The unknown relation name.
        name: String,
    },
    /// An attribute was referenced that the relation does not have.
    UnknownAttribute {
        /// The relation name.
        relation: String,
        /// The unknown attribute name.
        attribute: String,
    },
    /// A fact was constructed with the wrong number of values.
    ArityMismatch {
        /// The relation name.
        relation: String,
        /// The declared arity.
        expected: usize,
        /// The number of values supplied.
        actual: usize,
    },
    /// A relation was declared with arity zero.
    ZeroArity {
        /// The relation name.
        name: String,
    },
    /// A functional dependency was declared with an empty left- or
    /// right-hand side.
    EmptyFdSide {
        /// The relation name of the FD.
        relation: String,
    },
    /// A set of FDs was required to be a set of primary keys but is not.
    NotPrimaryKeys {
        /// Human-readable explanation.
        reason: String,
    },
    /// A set of FDs was required to be a set of keys but is not.
    NotKeys {
        /// Human-readable explanation.
        reason: String,
    },
    /// A fact carried a `RelationId` minted by a different schema (its
    /// index is out of range for this database's schema).
    ForeignRelationId {
        /// The out-of-range relation index carried by the fact.
        index: usize,
        /// The number of relations the schema declares.
        relations: usize,
    },
    /// The dictionary ran out of symbol space: interning one more distinct
    /// constant would overflow the `u32` symbol width and silently alias
    /// an existing symbol.
    DictionaryFull {
        /// The number of distinct constants already interned.
        symbols: usize,
    },
    /// A `FactId` outside the database's id space (or one whose fact was
    /// already deleted) was passed to an operation that requires a live
    /// fact.
    NoSuchFact {
        /// The offending fact id.
        index: usize,
        /// The id-space size of the database (`Database::len`).
        universe: usize,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::DuplicateRelation { name } => {
                write!(f, "relation `{name}` declared more than once")
            }
            DbError::UnknownRelation { name } => write!(f, "unknown relation `{name}`"),
            DbError::UnknownAttribute {
                relation,
                attribute,
            } => write!(f, "relation `{relation}` has no attribute `{attribute}`"),
            DbError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "relation `{relation}` has arity {expected}, but {actual} values were supplied"
            ),
            DbError::ZeroArity { name } => {
                write!(f, "relation `{name}` must have arity at least 1")
            }
            DbError::EmptyFdSide { relation } => write!(
                f,
                "functional dependency over `{relation}` has an empty attribute set"
            ),
            DbError::NotPrimaryKeys { reason } => {
                write!(f, "constraint set is not a set of primary keys: {reason}")
            }
            DbError::NotKeys { reason } => {
                write!(f, "constraint set is not a set of keys: {reason}")
            }
            DbError::ForeignRelationId { index, relations } => write!(
                f,
                "fact carries relation index {index}, but the schema declares only {relations} relation(s) — was the RelationId minted by a different schema?"
            ),
            DbError::DictionaryFull { symbols } => write!(
                f,
                "dictionary is full: {symbols} distinct constants are interned and the u32 symbol space is exhausted"
            ),
            DbError::NoSuchFact { index, universe } => write!(
                f,
                "fact id {index} does not name a live fact (id space has {universe} ids)"
            ),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offenders() {
        let e = DbError::ArityMismatch {
            relation: "R".into(),
            expected: 3,
            actual: 2,
        };
        let text = e.to_string();
        assert!(text.contains("R") && text.contains('3') && text.contains('2'));

        let e = DbError::UnknownAttribute {
            relation: "Emp".into(),
            attribute: "salary".into(),
        };
        assert!(e.to_string().contains("salary"));
    }
}
