//! Precomputed incremental conflict index.
//!
//! The uniform-operations walk (Lemmas 7.2 / D.7) repeatedly asks for the
//! justified operations `Ops_s(D, Σ)` of the current sub-database and then
//! removes one or two facts.  Violations are *monotone under removal*:
//! `V(D', Σ)` is exactly the subset of `V(D, Σ)` whose two facts both
//! survive in `D'`.  So instead of rescanning the database on every step
//! (O(|D|) per step, O(|D|²) per walk), the index computes `V(D, Σ)`
//! **once**, stores per-fact adjacency, and maintains the live operation
//! sets incrementally:
//!
//! * [`ConflictIndex`] — the immutable part, built once per `(D, Σ)`:
//!   the violations, CSR adjacency from each fact to the violations and
//!   deduplicated conflicting pairs touching it, and the singleton /
//!   pair operation universe.  Shareable across threads.
//! * [`LiveOps`] — the mutable cursor owned by each walk: the live
//!   sub-database, per-fact live-violation degrees, and the live
//!   singleton/pair operation sets as dense swap-remove arrays, so a
//!   uniform pick over `Ops_s(D, Σ)` is O(1) and
//!   [`LiveOps::remove_fact`] is O(degree of the removed fact).

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use crate::{Database, FactChange, FactId, FactSet, FdSet, Violation, ViolationSet};

/// Sentinel marking a fact/pair as absent from its dense live array.
const NOT_LIVE: u32 = u32::MAX;

/// Merges two sorted, deduplicated, element-disjoint runs into one sorted
/// list — the linear canonicalisation step of [`ConflictIndex::refresh`].
/// Equal elements would indicate a broken disjointness invariant; they are
/// collapsed (and rejected under `debug_assertions`) so the output stays
/// canonical regardless.
fn merge_disjoint_sorted<T: Ord + Copy>(a: Vec<T>, b: Vec<T>) -> Vec<T> {
    debug_assert!(a.is_sorted() && b.is_sorted(), "runs must be sorted");
    if b.is_empty() {
        return a;
    }
    if a.is_empty() {
        return b;
    }
    let mut merged = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                merged.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                debug_assert!(false, "the merged runs must be disjoint");
                merged.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&a[i..]);
    merged.extend_from_slice(&b[j..]);
    merged
}

/// The immutable conflict structure of `(D, Σ)`, precomputed once.
///
/// Holds `V(D, Σ)` plus the adjacency needed to maintain the justified
/// operation sets of any sub-database reached by removals.  All state that
/// changes during a walk lives in [`LiveOps`], so one `ConflictIndex` can
/// back any number of concurrent walks.
///
/// A [`ConflictIndex::build`]-created index remembers the database
/// version it describes and can be brought up to date with
/// [`ConflictIndex::refresh`], which replays the fact-level changelog
/// instead of recomputing `V(D, Σ)` from scratch; the refreshed index is
/// structurally equal to a fresh build (the property-tested oracle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictIndex {
    universe: usize,
    /// The [`Database::version`] this index describes (the changelog
    /// cursor [`ConflictIndex::refresh`] resumes from).
    version: u64,
    /// `V(D, Σ)`, canonically sorted.
    violations: Vec<Violation>,
    /// CSR offsets into [`ConflictIndex::violation_adjacency`] (length
    /// `universe + 1`).
    violation_offsets: Vec<u32>,
    /// Violation ids touching each fact.
    violation_adjacency: Vec<u32>,
    /// The deduplicated conflicting pairs (the pair-operation universe),
    /// canonically sorted.
    pairs: Vec<(FactId, FactId)>,
    /// CSR offsets into [`ConflictIndex::pair_adjacency`] (length
    /// `universe + 1`).
    pair_offsets: Vec<u32>,
    /// Pair ids touching each fact.
    pair_adjacency: Vec<u32>,
    /// Facts involved in at least one violation (the singleton-operation
    /// universe), sorted.
    conflicting: Vec<FactId>,
}

impl ConflictIndex {
    /// Builds the index of `db` w.r.t. `sigma`, computing `V(D, Σ)` once.
    pub fn build(db: &Database, sigma: &FdSet) -> Self {
        let violations = ViolationSet::of_database(db, sigma);
        Self::assemble(db.len(), db.version(), violations.violations().to_vec())
    }

    /// Builds the index over `universe` facts from a precomputed violation
    /// set of the **full** database.
    ///
    /// The index carries version 0; only [`ConflictIndex::build`]-created
    /// indexes track the database version for [`ConflictIndex::refresh`].
    pub fn from_violations(universe: usize, violations: &ViolationSet) -> Self {
        Self::assemble(universe, 0, violations.violations().to_vec())
    }

    /// Assembles the CSR structure from a canonically sorted, deduplicated
    /// violation list — the shared tail of [`ConflictIndex::build`] and
    /// [`ConflictIndex::refresh`], so a refreshed index is reassembled
    /// exactly like a fresh one.
    fn assemble(universe: usize, version: u64, violations: Vec<Violation>) -> Self {
        // Deduplicated pair universe (several FDs may violate the same
        // pair).
        let mut pairs: Vec<(FactId, FactId)> = violations.iter().map(Violation::pair).collect();
        pairs.sort_unstable();
        pairs.dedup();
        Self::assemble_with_pairs(universe, version, violations, pairs)
    }

    /// As [`ConflictIndex::assemble`], with the deduplicated, sorted pair
    /// universe already computed — [`ConflictIndex::refresh`] obtains it
    /// by merging sorted runs instead of re-sorting `2|V|` pairs.
    fn assemble_with_pairs(
        universe: usize,
        version: u64,
        violations: Vec<Violation>,
        pairs: Vec<(FactId, FactId)>,
    ) -> Self {
        debug_assert!(violations.is_sorted(), "violations must be canonical");
        debug_assert!(pairs.is_sorted(), "pairs must be canonical");

        // CSR adjacency fact → violation ids (two passes: count, fill).
        let mut violation_offsets = vec![0u32; universe + 1];
        for v in &violations {
            violation_offsets[v.first.index() + 1] += 1;
            violation_offsets[v.second.index() + 1] += 1;
        }
        for i in 0..universe {
            violation_offsets[i + 1] += violation_offsets[i];
        }
        let mut violation_adjacency = vec![0u32; violations.len() * 2];
        let mut cursor = violation_offsets.clone();
        for (id, v) in violations.iter().enumerate() {
            for fact in [v.first, v.second] {
                violation_adjacency[cursor[fact.index()] as usize] = id as u32;
                cursor[fact.index()] += 1;
            }
        }

        // CSR adjacency fact → pair ids.
        let mut pair_offsets = vec![0u32; universe + 1];
        for &(a, b) in &pairs {
            pair_offsets[a.index() + 1] += 1;
            pair_offsets[b.index() + 1] += 1;
        }
        for i in 0..universe {
            pair_offsets[i + 1] += pair_offsets[i];
        }
        let mut pair_adjacency = vec![0u32; pairs.len() * 2];
        let mut cursor = pair_offsets.clone();
        for (id, &(a, b)) in pairs.iter().enumerate() {
            for fact in [a, b] {
                pair_adjacency[cursor[fact.index()] as usize] = id as u32;
                cursor[fact.index()] += 1;
            }
        }

        let conflicting: Vec<FactId> = (0..universe)
            .filter(|&f| violation_offsets[f + 1] > violation_offsets[f])
            .map(FactId::new)
            .collect();

        ConflictIndex {
            universe,
            version,
            violations,
            violation_offsets,
            violation_adjacency,
            pairs,
            pair_offsets,
            pair_adjacency,
            conflicting,
        }
    }

    /// Brings a [`ConflictIndex::build`]-created index up to date with
    /// `db` by replaying the fact-level changelog since the index's
    /// version, returning the number of changes applied.
    ///
    /// Violations are *local*: a violation of the current database either
    /// survives from the old one (neither endpoint was deleted — an O(|V|)
    /// filter) or touches a fact inserted since (discovered through the
    /// maintained [`crate::RelationIndex`]'s posting runs, looking only at
    /// the blocks of the inserted facts).  Survivors keep the canonical
    /// order of the old list and a delta violation always touches a fact
    /// that did not exist at the old version, so the two runs are disjoint
    /// and a linear merge (no re-sort of `|V|` elements) canonicalises the
    /// result; the pair universe is maintained the same way.  The CSR
    /// adjacency is then reassembled, so the result is structurally equal
    /// to `ConflictIndex::build(db, sigma)` — at a cost proportional to
    /// the delta plus `|V|`, not to `|D|`.
    pub fn refresh(&mut self, db: &Database, sigma: &FdSet) -> usize {
        let changes = db.changes_since(self.version);
        if changes.is_empty() {
            return 0;
        }
        let applied = changes.len();
        // Partition the delta: tombstoned ids kill old violations;
        // still-live inserted facts may found new ones.  (A fact inserted
        // and deleted again within the window is marked deleted and
        // filtered from `inserted` by the liveness check.)
        let mut deleted = vec![false; db.len()];
        let mut inserted: Vec<FactId> = Vec::new();
        for change in changes {
            match change {
                FactChange::Inserted(id) => {
                    if db.is_live(*id) {
                        inserted.push(*id);
                    }
                }
                FactChange::Deleted { id, .. } => deleted[id.index()] = true,
            }
        }
        // The filter preserves the canonical order of the old list.
        let survivors: Vec<Violation> = self
            .violations
            .iter()
            .filter(|v| !deleted[v.first.index()] && !deleted[v.second.index()])
            .copied()
            .collect();
        // Every violation of the current database that is not a survivor
        // touches an inserted fact (two live old facts violating an FD
        // already violated it at the old version).  Probe each inserted
        // fact's LHS block through the relation index; pairs of two
        // inserted facts are discovered twice and deduplicated below.
        let mut fresh: Vec<Violation> = Vec::new();
        let index = db.relation_index();
        for &f in &inserted {
            let relation = db.relation_of(f);
            let columns = db.columns_of(relation);
            let row_f = db.row_of(f);
            for (fd_id, fd) in sigma.iter() {
                if fd.relation() != relation {
                    continue;
                }
                let mut lhs = fd.lhs().iter().map(|a| a.index());
                let first = lhs.next().expect("FDs have a non-empty LHS");
                let rest: Vec<usize> = lhs.collect();
                for &g in index.matches(relation, first, columns[first][row_f]) {
                    if g == f {
                        continue;
                    }
                    let row_g = db.row_of(g);
                    let same_lhs = rest
                        .iter()
                        .all(|&attr| columns[attr][row_g] == columns[attr][row_f]);
                    let rhs_differs = fd
                        .rhs()
                        .iter()
                        .any(|r| columns[r.index()][row_g] != columns[r.index()][row_f]);
                    if same_lhs && rhs_differs {
                        fresh.push(Violation::new(fd_id, f, g));
                    }
                }
            }
        }
        // Only the delta is sorted; the big list is reassembled by a
        // linear merge.  A fresh violation involves a fact inserted in the
        // window, and a re-inserted (revived) id is marked `deleted` — its
        // old violations left `survivors` and are rediscovered fresh — so
        // the runs never share an element.
        fresh.sort_unstable();
        fresh.dedup();
        // The pair universe keeps a pair iff both endpoints are live (then
        // every old violation on it survived) and gains the fresh pairs,
        // disjoint for the same reason.
        let surviving_pairs: Vec<(FactId, FactId)> = self
            .pairs
            .iter()
            .filter(|(a, b)| !deleted[a.index()] && !deleted[b.index()])
            .copied()
            .collect();
        let mut fresh_pairs: Vec<(FactId, FactId)> = fresh.iter().map(Violation::pair).collect();
        fresh_pairs.sort_unstable();
        fresh_pairs.dedup();
        let violations = merge_disjoint_sorted(survivors, fresh);
        let pairs = merge_disjoint_sorted(surviving_pairs, fresh_pairs);
        *self = ConflictIndex::assemble_with_pairs(db.len(), db.version(), violations, pairs);
        applied
    }

    /// The size of the fact universe.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The [`Database::version`] this index describes (0 for indexes built
    /// via [`ConflictIndex::from_violations`]).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// `V(D, Σ)` of the full database, canonically sorted.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The deduplicated pair-operation universe of the full database.
    pub fn pairs(&self) -> &[(FactId, FactId)] {
        &self.pairs
    }

    /// The singleton-operation universe of the full database: the facts
    /// involved in at least one violation, sorted.
    pub fn conflicting_facts(&self) -> &[FactId] {
        &self.conflicting
    }

    /// The number of violations touching `fact` in the full database.
    pub fn degree(&self, fact: FactId) -> usize {
        (self.violation_offsets[fact.index() + 1] - self.violation_offsets[fact.index()]) as usize
    }

    /// The violation ids touching `fact`.
    fn violations_of(&self, fact: FactId) -> &[u32] {
        let start = self.violation_offsets[fact.index()] as usize;
        let end = self.violation_offsets[fact.index() + 1] as usize;
        &self.violation_adjacency[start..end]
    }

    /// The pair ids touching `fact`.
    fn pairs_of(&self, fact: FactId) -> &[u32] {
        let start = self.pair_offsets[fact.index()] as usize;
        let end = self.pair_offsets[fact.index() + 1] as usize;
        &self.pair_adjacency[start..end]
    }

    /// The connected components of the conflict graph: facts involved in
    /// at least one violation, grouped by reachability over conflicting
    /// pairs.  Each component is sorted ascending; components are sorted
    /// by their smallest fact id.  Conflict-free facts belong to no
    /// component (they survive every repair and play no role in the
    /// repairing process).
    pub fn components(&self) -> Vec<Vec<FactId>> {
        // Union-find over the conflicting facts, path-halving.
        let mut parent: Vec<u32> = (0..self.universe as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for &(a, b) in &self.pairs {
            let (ra, rb) = (
                find(&mut parent, a.index() as u32),
                find(&mut parent, b.index() as u32),
            );
            if ra != rb {
                let (lo, hi) = (ra.min(rb), ra.max(rb));
                parent[hi as usize] = lo;
            }
        }
        // `conflicting` is sorted, so grouping by root yields components
        // sorted ascending internally, in order of their smallest id.
        let mut by_root: std::collections::BTreeMap<u32, Vec<FactId>> = Default::default();
        for &fact in &self.conflicting {
            let root = find(&mut parent, fact.index() as u32);
            by_root.entry(root).or_default().push(fact);
        }
        by_root.into_values().collect()
    }

    /// The conflict structure of the indexed state: a stable digest of
    /// each fact's conflict component, plus a fingerprint of the whole
    /// component list.  See [`ConflictStructure`].
    pub fn structure(&self) -> ConflictStructure {
        ConflictStructure::of(self)
    }
}

/// A digest view of a [`ConflictIndex`]'s conflict-graph components,
/// built once per refresh and consumed by lineage fingerprinting.
///
/// The repair distribution a fact is subject to is determined by its
/// conflict component (under uniform repairs and uniform operations the
/// per-component marginals are independent of the rest of the database;
/// under uniform sequences they additionally depend on the global
/// component structure — see [`ConflictStructure::fingerprint`]).  Two
/// database states assign a fact equal digests iff the fact's component
/// holds the same fact ids, so an estimate that depends only on a set of
/// facts and their components can be proven unchanged across a delta by
/// comparing digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictStructure {
    /// Per fact id: a 64-bit FNV-1a digest of the sorted id-list of the
    /// fact's conflict component, or the digest of `[id]` for a
    /// conflict-free fact (its "component" is the fact alone).
    digests: Vec<u64>,
    /// A digest of the entire component list, in canonical order.
    fingerprint: u64,
}

impl ConflictStructure {
    fn of(index: &ConflictIndex) -> Self {
        let mut digests: Vec<u64> = (0..index.universe)
            .map(|id| {
                let mut h = Fnv::new();
                h.mix(1);
                h.mix(id as u64);
                h.finish()
            })
            .collect();
        let mut global = Fnv::new();
        let components = index.components();
        global.mix(components.len() as u64);
        for component in components {
            let mut h = Fnv::new();
            h.mix(component.len() as u64);
            for &fact in &component {
                h.mix(fact.index() as u64);
            }
            let digest = h.finish();
            global.mix(digest);
            for &fact in &component {
                digests[fact.index()] = digest;
            }
        }
        ConflictStructure {
            digests,
            fingerprint: global.finish(),
        }
    }

    /// The component digest of `fact` (the digest of `[fact]` itself if
    /// it conflicts with nothing).
    pub fn digest(&self, fact: FactId) -> u64 {
        self.digests[fact.index()]
    }

    /// A fingerprint of the whole conflict-component structure: equal
    /// across two states iff they hold the same components over the same
    /// fact ids.  Conflict-free facts do not participate, so consistent
    /// churn leaves the fingerprint intact.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// A minimal incremental FNV-1a hasher over little-endian `u64` words.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn mix(&mut self, value: u64) {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// The mutable state of one walk over a [`ConflictIndex`]: the live
/// sub-database plus the live operation sets `Ops_s(D, Σ)`, maintained
/// incrementally under fact removal.
///
/// The singleton set holds the live facts with at least one live violation;
/// the pair set holds the pair ids whose two facts are both live.  Both are
/// dense arrays with positional back-pointers, so membership updates are
/// O(1) swap-removes and a uniform draw is a single `random_range` plus an
/// array read.
///
/// A default-constructed `LiveOps` owns no buffers; the first
/// [`LiveOps::reset_full`]/[`LiveOps::reset_to`] sizes them, and later
/// resets reuse the allocations (the walk hot loop is allocation-free).
#[derive(Debug, Clone, Default)]
pub struct LiveOps {
    /// The live sub-database `D'`.
    live: FactSet,
    /// Per fact: number of live violations touching it.
    degree: Vec<u32>,
    /// Dense array of live singleton operations (facts with `degree > 0`).
    singles: Vec<FactId>,
    /// Per fact: its position in `singles`, or [`NOT_LIVE`].
    single_pos: Vec<u32>,
    /// Dense array of live pair operations (pair ids).
    pairs: Vec<u32>,
    /// Per pair id: its position in `pairs`, or [`NOT_LIVE`].
    pair_pos: Vec<u32>,
}

impl LiveOps {
    /// Creates an empty cursor (no buffers allocated yet).
    pub fn new() -> Self {
        LiveOps::default()
    }

    /// Clears any state left by a previous (possibly abandoned) walk,
    /// restoring the invariant that every `single_pos`/`pair_pos` entry is
    /// [`NOT_LIVE`] and every degree is zero.  O(current live operations) —
    /// the positional arrays are only ever written through `singles` /
    /// `pairs`, so clearing those entries suffices even when the next
    /// reset targets a **different** [`ConflictIndex`].
    fn clear_stale(&mut self) {
        for &fact in &self.singles {
            self.single_pos[fact.index()] = NOT_LIVE;
            self.degree[fact.index()] = 0;
        }
        self.singles.clear();
        for &pair in &self.pairs {
            self.pair_pos[pair as usize] = NOT_LIVE;
        }
        self.pairs.clear();
    }

    /// Resizes the buffers to match `index` (idempotent).
    fn ensure_capacity(&mut self, index: &ConflictIndex) {
        if self.live.universe() != index.universe {
            self.live = FactSet::empty(index.universe);
            self.degree = vec![0; index.universe];
            self.single_pos = vec![NOT_LIVE; index.universe];
        }
        if self.pair_pos.len() != index.pairs.len() {
            self.pair_pos = vec![NOT_LIVE; index.pairs.len()];
        }
    }

    /// Resets to the full database: every fact live, every operation of the
    /// universe available.  O(conflicting facts + pairs + |D|/64).
    pub fn reset_full(&mut self, index: &ConflictIndex) {
        self.clear_stale();
        self.ensure_capacity(index);
        self.live.fill();
        for (position, &fact) in index.conflicting.iter().enumerate() {
            self.degree[fact.index()] = index.degree(fact) as u32;
            self.single_pos[fact.index()] = position as u32;
            self.singles.push(fact);
        }
        for pair in 0..index.pairs.len() as u32 {
            self.pair_pos[pair as usize] = pair;
            self.pairs.push(pair);
        }
    }

    /// Resets to an arbitrary sub-database `subset ⊆ D`.  O(|V(D, Σ)| +
    /// conflicting facts + pairs); used by the diagnostics APIs, not by the
    /// walk hot loop.
    ///
    /// # Panics
    /// Panics if `subset`'s universe differs from the index's.
    pub fn reset_to(&mut self, index: &ConflictIndex, subset: &FactSet) {
        assert_eq!(
            subset.universe(),
            index.universe,
            "subset universe mismatch"
        );
        self.clear_stale();
        self.ensure_capacity(index);
        self.live.copy_from(subset);
        for v in &index.violations {
            if self.live.contains(v.first) && self.live.contains(v.second) {
                self.degree[v.first.index()] += 1;
                self.degree[v.second.index()] += 1;
            }
        }
        for &fact in &index.conflicting {
            if self.degree[fact.index()] > 0 {
                self.single_pos[fact.index()] = self.singles.len() as u32;
                self.singles.push(fact);
            }
        }
        for (pair, &(a, b)) in index.pairs.iter().enumerate() {
            if self.live.contains(a) && self.live.contains(b) {
                self.pair_pos[pair] = self.pairs.len() as u32;
                self.pairs.push(pair as u32);
            }
        }
    }

    /// Removes a live fact, updating the live operation sets in O(degree):
    /// every violation and pair touching the fact dies, and singleton
    /// neighbours whose last live violation died leave the singleton set.
    ///
    /// # Panics
    /// Panics if `fact` is not live.
    pub fn remove_fact(&mut self, index: &ConflictIndex, fact: FactId) {
        let was_live = self.live.remove(fact);
        assert!(was_live, "removed a fact that is not live");
        self.retire_single(fact);
        self.degree[fact.index()] = 0;
        for &violation in index.violations_of(fact) {
            let v = &index.violations[violation as usize];
            let other = if v.first == fact { v.second } else { v.first };
            // The violation was live iff the other endpoint still is (the
            // removed fact was live until this call).
            if self.live.contains(other) {
                let degree = &mut self.degree[other.index()];
                *degree -= 1;
                if *degree == 0 {
                    self.retire_single(other);
                }
            }
        }
        for &pair in index.pairs_of(fact) {
            self.retire_pair(pair);
        }
    }

    /// Swap-removes `fact` from the singleton set, if present.
    fn retire_single(&mut self, fact: FactId) {
        let position = self.single_pos[fact.index()];
        if position == NOT_LIVE {
            return;
        }
        self.single_pos[fact.index()] = NOT_LIVE;
        let last = self.singles.pop().expect("a positioned fact is present");
        if (position as usize) < self.singles.len() {
            self.singles[position as usize] = last;
            self.single_pos[last.index()] = position;
        }
    }

    /// Swap-removes a pair id from the pair set, if present.
    fn retire_pair(&mut self, pair: u32) {
        let position = self.pair_pos[pair as usize];
        if position == NOT_LIVE {
            return;
        }
        self.pair_pos[pair as usize] = NOT_LIVE;
        let last = self.pairs.pop().expect("a positioned pair is present");
        if (position as usize) < self.pairs.len() {
            self.pairs[position as usize] = last;
            self.pair_pos[last as usize] = position;
        }
    }

    /// The live sub-database `D'`.
    pub fn live(&self) -> &FactSet {
        &self.live
    }

    /// Number of live singleton operations (= live conflicting facts).
    pub fn single_count(&self) -> usize {
        self.singles.len()
    }

    /// Number of live pair operations.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// The `i`-th live singleton operation (arbitrary but stable order
    /// between mutations).
    pub fn single(&self, i: usize) -> FactId {
        self.singles[i]
    }

    /// The `i`-th live pair operation.
    pub fn pair(&self, index: &ConflictIndex, i: usize) -> (FactId, FactId) {
        index.pairs[self.pairs[i] as usize]
    }

    /// The live singleton operations (unsorted).
    pub fn live_singles(&self) -> &[FactId] {
        &self.singles
    }

    /// The live pair operations (unsorted), resolved against the index.
    pub fn live_pairs<'a>(
        &'a self,
        index: &'a ConflictIndex,
    ) -> impl Iterator<Item = (FactId, FactId)> + 'a {
        self.pairs.iter().map(|&p| index.pairs[p as usize])
    }

    /// Returns `true` iff the live sub-database is consistent, i.e. no
    /// justified operation remains.
    pub fn is_consistent(&self) -> bool {
        self.singles.is_empty()
    }

    /// The live violations, i.e. `V(D', Σ)` for the current sub-database
    /// (for diagnostics and cross-checking tests).
    pub fn live_violations<'a>(
        &'a self,
        index: &'a ConflictIndex,
    ) -> impl Iterator<Item = &'a Violation> + 'a {
        index
            .violations
            .iter()
            .filter(|v| self.live.contains(v.first) && self.live.contains(v.second))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Database, FunctionalDependency, Schema, Value};

    /// The running example of the paper (Example 3.6).
    fn running_example() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B", "C"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::str("a1"), Value::str("b1"), Value::str("c1")])
            .unwrap();
        db.insert_values("R", [Value::str("a1"), Value::str("b2"), Value::str("c2")])
            .unwrap();
        db.insert_values("R", [Value::str("a2"), Value::str("b1"), Value::str("c2")])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["C"], &["B"]).unwrap());
        (db, sigma)
    }

    /// Sorted copies of the live operation sets.
    fn sorted_state(index: &ConflictIndex, ops: &LiveOps) -> (Vec<FactId>, Vec<(FactId, FactId)>) {
        let mut singles = ops.live_singles().to_vec();
        singles.sort();
        let mut pairs: Vec<(FactId, FactId)> = ops.live_pairs(index).collect();
        pairs.sort();
        (singles, pairs)
    }

    #[test]
    fn full_reset_matches_figure1_root_operations() {
        let (db, sigma) = running_example();
        let index = ConflictIndex::build(&db, &sigma);
        assert_eq!(index.universe(), 3);
        assert_eq!(index.violations().len(), 2);
        assert_eq!(index.pairs().len(), 2);
        let mut ops = LiveOps::new();
        ops.reset_full(&index);
        // Root of Figure 1: -f1, -f2, -f3, -{f1,f2}, -{f2,f3}.
        let (singles, pairs) = sorted_state(&index, &ops);
        assert_eq!(
            singles,
            vec![FactId::new(0), FactId::new(1), FactId::new(2)]
        );
        assert_eq!(
            pairs,
            vec![
                (FactId::new(0), FactId::new(1)),
                (FactId::new(1), FactId::new(2))
            ]
        );
        assert!(!ops.is_consistent());
        assert_eq!(ops.live_violations(&index).count(), 2);
    }

    #[test]
    fn removing_the_middle_fact_kills_everything() {
        let (db, sigma) = running_example();
        let index = ConflictIndex::build(&db, &sigma);
        let mut ops = LiveOps::new();
        ops.reset_full(&index);
        // f2 (id 1) is in both violations; removing it repairs the
        // database in one step.
        ops.remove_fact(&index, FactId::new(1));
        assert!(ops.is_consistent());
        assert_eq!(ops.single_count(), 0);
        assert_eq!(ops.pair_count(), 0);
        assert_eq!(ops.live().len(), 2);
        assert_eq!(ops.live_violations(&index).count(), 0);
    }

    #[test]
    fn removing_an_endpoint_keeps_the_other_violation() {
        let (db, sigma) = running_example();
        let index = ConflictIndex::build(&db, &sigma);
        let mut ops = LiveOps::new();
        ops.reset_full(&index);
        // Removing f1 kills the φ1 violation {f1, f2}; {f2, f3} survives.
        ops.remove_fact(&index, FactId::new(0));
        assert!(!ops.is_consistent());
        let (singles, pairs) = sorted_state(&index, &ops);
        assert_eq!(singles, vec![FactId::new(1), FactId::new(2)]);
        assert_eq!(pairs, vec![(FactId::new(1), FactId::new(2))]);
        assert_eq!(ops.pair(&index, 0), (FactId::new(1), FactId::new(2)));
    }

    #[test]
    fn reset_to_matches_recompute_on_all_subsets() {
        let (db, sigma) = running_example();
        let index = ConflictIndex::build(&db, &sigma);
        let mut ops = LiveOps::new();
        for mask in 0u32..(1 << db.len()) {
            let subset = FactSet::from_iter(
                db.len(),
                (0..db.len())
                    .filter(|i| (mask >> i) & 1 == 1)
                    .map(FactId::new),
            );
            ops.reset_to(&index, &subset);
            let violations = ViolationSet::compute(&db, &sigma, &subset);
            let (singles, pairs) = sorted_state(&index, &ops);
            assert_eq!(singles, violations.conflicting_facts(), "mask {mask:b}");
            assert_eq!(pairs, violations.conflicting_pairs(), "mask {mask:b}");
        }
    }

    #[test]
    fn incremental_removal_matches_recompute() {
        let (db, sigma) = running_example();
        let index = ConflictIndex::build(&db, &sigma);
        let mut ops = LiveOps::new();
        // Remove facts one at a time in every order; after each removal the
        // incremental state must match a from-scratch recompute.
        for order in [[0, 1, 2], [0, 2, 1], [1, 0, 2], [2, 1, 0], [2, 0, 1]] {
            ops.reset_full(&index);
            let mut subset = db.all_facts();
            for fact in order {
                ops.remove_fact(&index, FactId::new(fact));
                subset.remove(FactId::new(fact));
                let violations = ViolationSet::compute(&db, &sigma, &subset);
                let (singles, pairs) = sorted_state(&index, &ops);
                assert_eq!(singles, violations.conflicting_facts(), "order {order:?}");
                assert_eq!(pairs, violations.conflicting_pairs(), "order {order:?}");
                assert_eq!(ops.live(), &subset);
            }
        }
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn double_removal_panics() {
        let (db, sigma) = running_example();
        let index = ConflictIndex::build(&db, &sigma);
        let mut ops = LiveOps::new();
        ops.reset_full(&index);
        ops.remove_fact(&index, FactId::new(0));
        ops.remove_fact(&index, FactId::new(0));
    }

    #[test]
    fn same_pair_violating_two_fds_is_one_pair_operation() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::int(1), Value::int(1)])
            .unwrap();
        db.insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["A", "B"]).unwrap());
        let index = ConflictIndex::build(&db, &sigma);
        assert_eq!(index.violations().len(), 2);
        assert_eq!(index.pairs().len(), 1);
        let mut ops = LiveOps::new();
        ops.reset_full(&index);
        assert_eq!(ops.single_count(), 2);
        assert_eq!(ops.pair_count(), 1);
        // Both violations die with one endpoint; the pair dies too, and the
        // surviving fact must leave the singleton set exactly once (its
        // degree was 2).
        ops.remove_fact(&index, FactId::new(0));
        assert!(ops.is_consistent());
        assert_eq!(ops.pair_count(), 0);
    }

    #[test]
    fn abandoned_walk_state_does_not_leak_across_indexes() {
        // An abandoned mid-walk cursor reset against a *different* index of
        // the same universe must not inherit stale positions or degrees.
        let (db_a, sigma_a) = running_example();
        let index_a = ConflictIndex::build(&db_a, &sigma_a);
        // Same universe (3 facts), different conflict structure: only
        // f0/f1 conflict under A → B, f2 is conflict-free.
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        let mut db_b = Database::with_schema(schema);
        db_b.insert_values("R", [Value::int(1), Value::int(1)])
            .unwrap();
        db_b.insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        db_b.insert_values("R", [Value::int(2), Value::int(1)])
            .unwrap();
        let mut sigma_b = FdSet::new();
        sigma_b.add(FunctionalDependency::from_names(db_b.schema(), "R", &["A"], &["B"]).unwrap());
        let index_b = ConflictIndex::build(&db_b, &sigma_b);

        let mut reused = LiveOps::new();
        reused.reset_full(&index_a);
        // Abandon mid-walk: f2 still live with stale position/degree.
        reused.remove_fact(&index_a, FactId::new(0));
        reused.reset_full(&index_b);
        let mut fresh = LiveOps::new();
        fresh.reset_full(&index_b);
        let (reused_state, fresh_state) = (
            sorted_state(&index_b, &reused),
            sorted_state(&index_b, &fresh),
        );
        assert_eq!(reused_state, fresh_state);
        // Removing the conflict-free fact must leave the singles intact.
        reused.remove_fact(&index_b, FactId::new(2));
        assert_eq!(reused.single_count(), 2);
        assert_eq!(reused.pair_count(), 1);
        // And reset_to after an abandoned walk is clean as well.
        reused.reset_to(&index_a, &db_a.all_facts());
        fresh.reset_to(&index_a, &db_a.all_facts());
        assert_eq!(
            sorted_state(&index_a, &reused),
            sorted_state(&index_a, &fresh)
        );
    }

    #[test]
    fn refresh_replays_the_changelog_and_matches_a_fresh_build() {
        let (mut db, sigma) = running_example();
        let mut index = ConflictIndex::build(&db, &sigma);
        assert_eq!(index.version(), db.version());
        // Nothing changed: refresh is a no-op.
        assert_eq!(index.refresh(&db, &sigma), 0);

        // Insert a fact extending the a1-block (new violations against f1
        // and f2) and delete f3 (kills the φ2 violation {f2, f3}).
        db.insert_values("R", [Value::str("a1"), Value::str("b3"), Value::str("c3")])
            .unwrap();
        db.delete(FactId::new(2)).unwrap();
        assert_eq!(index.refresh(&db, &sigma), 2);
        assert_eq!(index, ConflictIndex::build(&db, &sigma));
        assert_eq!(index.universe(), 4);
        // {f1, f4} under φ1 (b1 ≠ b3), {f2, f4} under φ1 (b2 ≠ b3); the
        // old {f1, f2} survives; {f2, f3} died with f3.
        assert_eq!(index.violations().len(), 3);
        assert!(index
            .violations()
            .iter()
            .all(|v| !v.involves(FactId::new(2))));

        // A fact inserted and deleted again within the window leaves no
        // trace, and a second refresh from the new cursor is a no-op.
        let ephemeral = db
            .insert_values("R", [Value::str("a9"), Value::str("x"), Value::str("y")])
            .unwrap();
        db.delete(ephemeral).unwrap();
        assert_eq!(index.refresh(&db, &sigma), 2);
        assert_eq!(index, ConflictIndex::build(&db, &sigma));
        assert_eq!(index.refresh(&db, &sigma), 0);

        // A refreshed index backs walks exactly like a fresh one.
        let mut ops = LiveOps::new();
        ops.reset_full(&index);
        assert!(!ops.is_consistent());
    }

    #[test]
    fn refresh_discovers_composite_lhs_violations() {
        // FD with a two-attribute LHS: the refresh probe filters the first
        // attribute's posting run by the remaining LHS columns.
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B", "C"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::int(1), Value::int(1), Value::int(1)])
            .unwrap();
        // Same A, different B: agrees on A but not on the full LHS {A, B}.
        db.insert_values("R", [Value::int(1), Value::int(2), Value::int(2)])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A", "B"], &["C"]).unwrap());
        let mut index = ConflictIndex::build(&db, &sigma);
        assert!(index.violations().is_empty());
        // Full LHS match with differing RHS: one new violation against f0.
        db.insert_values("R", [Value::int(1), Value::int(1), Value::int(3)])
            .unwrap();
        index.refresh(&db, &sigma);
        assert_eq!(index, ConflictIndex::build(&db, &sigma));
        assert_eq!(index.violations().len(), 1);
        assert_eq!(
            index.violations()[0].pair(),
            (FactId::new(0), FactId::new(2))
        );
    }

    #[test]
    fn consistent_database_has_empty_operation_universe() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::int(1), Value::int(1)])
            .unwrap();
        db.insert_values("R", [Value::int(2), Value::int(1)])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        let index = ConflictIndex::build(&db, &sigma);
        assert!(index.violations().is_empty());
        assert!(index.conflicting_facts().is_empty());
        let mut ops = LiveOps::new();
        ops.reset_full(&index);
        assert!(ops.is_consistent());
        assert_eq!(ops.live().len(), 2);
    }

    #[test]
    fn components_group_facts_by_conflict_reachability() {
        // f1 –(A→B)– f2 –(C→B)– f3: one component, not a clique.
        let (mut db, sigma) = running_example();
        let index = ConflictIndex::build(&db, &sigma);
        assert_eq!(
            index.components(),
            vec![vec![FactId::new(0), FactId::new(1), FactId::new(2)]]
        );

        // A conflict-free fact joins no component and leaves the
        // structure fingerprint intact, but carries its own digest.
        let before = index.structure();
        db.insert_values("R", [Value::str("a9"), Value::str("b9"), Value::str("c9")])
            .unwrap();
        let mut index = index;
        index.refresh(&db, &sigma);
        let after = index.structure();
        assert_eq!(index.components().len(), 1);
        assert_eq!(before.fingerprint(), after.fingerprint());
        for f in 0..3 {
            assert_eq!(before.digest(FactId::new(f)), after.digest(FactId::new(f)));
        }

        // A fact that conflicts with f3 (same C, different B) extends the
        // component: every member's digest and the fingerprint move.
        db.insert_values("R", [Value::str("a2"), Value::str("b7"), Value::str("c2")])
            .unwrap();
        index.refresh(&db, &sigma);
        let grown = index.structure();
        assert_ne!(after.fingerprint(), grown.fingerprint());
        assert_ne!(after.digest(FactId::new(2)), grown.digest(FactId::new(2)));
        // The refreshed structure matches a from-scratch build.
        assert_eq!(grown, ConflictIndex::build(&db, &sigma).structure());
    }
}
