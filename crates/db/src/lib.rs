//! # `ucqa-db`
//!
//! Relational database substrate for the uniform operational CQA
//! reproduction (Section 2 of the paper):
//!
//! * [`Value`] — interned constants (the countably infinite set **C**).
//! * [`Schema`], [`RelationId`], [`AttributeId`] — relation names with
//!   arities and named attributes.
//! * [`Fact`], [`FactId`], [`Database`] — facts `R(c₁,…,cₙ)` and finite
//!   sets of facts, with dense fact identifiers and per-relation indexes.
//! * [`FunctionalDependency`], [`FdSet`] — FDs `R : X → Y`, keys, primary
//!   keys, and satisfaction `D ⊨ Σ`.
//! * [`violation`] — FD violations `V(D, Σ)` (Definition 3.2).
//! * [`ConflictGraph`] — the conflict graph `CG(D, Σ)` used throughout the
//!   appendices.
//! * [`ConflictIndex`] / [`LiveOps`] — the precomputed incremental
//!   conflict index backing the O(ops)-per-step uniform-operations walk.
//! * [`blocks`] — key blocks (facts agreeing on the key's left-hand side),
//!   the combinatorial backbone of the primary-key algorithms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod conflict_graph;
pub mod conflict_index;
pub mod database;
pub mod error;
pub mod fact;
pub mod fd;
pub mod schema;
pub mod subset;
pub mod value;
pub mod violation;

pub use blocks::{Block, BlockPartition};
pub use conflict_graph::ConflictGraph;
pub use conflict_index::{ConflictIndex, LiveOps};
pub use database::Database;
pub use error::DbError;
pub use fact::{Fact, FactId};
pub use fd::{FdId, FdSet, FunctionalDependency};
pub use schema::{AttributeId, RelationId, Schema};
pub use subset::FactSet;
pub use value::Value;
pub use violation::{Violation, ViolationSet};

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::{
        Block, BlockPartition, ConflictGraph, ConflictIndex, Database, DbError, Fact, FactId,
        FactSet, FdId, FdSet, FunctionalDependency, LiveOps, RelationId, Schema, Value, Violation,
        ViolationSet,
    };
}
