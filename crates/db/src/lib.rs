//! # `ucqa-db`
//!
//! Relational database substrate for the uniform operational CQA
//! reproduction (Section 2 of the paper):
//!
//! * [`Value`] — interned constants (the countably infinite set **C**).
//! * [`Schema`], [`RelationId`], [`AttributeId`] — relation names with
//!   arities and named attributes.
//! * [`Fact`], [`FactId`], [`Database`] — facts `R(c₁,…,cₙ)` and finite
//!   sets of facts, with dense fact identifiers and per-relation indexes.
//! * [`FunctionalDependency`], [`FdSet`] — FDs `R : X → Y`, keys, primary
//!   keys, and satisfaction `D ⊨ Σ`.
//! * [`violation`] — FD violations `V(D, Σ)` (Definition 3.2).
//! * [`ConflictGraph`] — the conflict graph `CG(D, Σ)` used throughout the
//!   appendices.
//! * [`ConflictIndex`] / [`LiveOps`] — the precomputed incremental
//!   conflict index backing the O(ops)-per-step uniform-operations walk.
//! * [`RelationIndex`] — per-relation `(position, value) → fact ids`
//!   indexes, built once per database and shared across threads; the
//!   access-path backbone of the plan-based query evaluator.
//! * [`blocks`] — key blocks (facts agreeing on the key's left-hand side),
//!   the combinatorial backbone of the primary-key algorithms.
//!
//! ## Design notes
//!
//! Everything downstream identifies facts by dense [`FactId`]s into one
//! immutable [`Database`], so a *repair* is just a subset of the fact
//! universe — represented as a [`FactSet`] bitset whose word-level kernels
//! (`contains_all`, `intersect_with`, …) are what the compiled-lineage
//! entailment check and the samplers of `ucqa-core` run on.  Values are
//! interned ([`Value`]), so fact comparison never touches strings on hot
//! paths.
//!
//! Violations are *monotone under fact removal*: `V(D', Σ)` is exactly the
//! subset of `V(D, Σ)` whose two facts both survive in `D'`.  That
//! invariant is what lets [`ConflictIndex`] precompute the violation and
//! operation universe once per `(D, Σ)` and [`LiveOps`] maintain the live
//! operation sets of a uniform-operations walk with O(1) uniform picks and
//! O(degree) removals, instead of an O(|D|) rescan per step (see the
//! "Incremental conflict index" section of the README and the property
//! test cross-checking it against [`ViolationSet`] recomputation).
//!
//! A minimal end-to-end construction:
//!
//! ```
//! use ucqa_db::{Database, FdSet, FunctionalDependency, Schema, Value, ViolationSet};
//!
//! let mut schema = Schema::new();
//! schema.add_relation("R", &["A", "B"]).unwrap();
//! let mut db = Database::with_schema(schema);
//! db.insert_values("R", [Value::int(1), Value::str("x")]).unwrap();
//! db.insert_values("R", [Value::int(1), Value::str("y")]).unwrap();
//! let mut sigma = FdSet::new();
//! sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
//! assert!(!sigma.satisfied_by_database(&db));
//! assert_eq!(ViolationSet::of_database(&db, &sigma).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod conflict_graph;
pub mod conflict_index;
pub mod database;
pub mod dictionary;
pub mod error;
pub mod fact;
pub mod fd;
pub mod relation_index;
pub mod schema;
pub mod subset;
pub mod value;
pub mod violation;

pub use blocks::{Block, BlockPartition};
pub use conflict_graph::ConflictGraph;
pub use conflict_index::{ConflictIndex, ConflictStructure, LiveOps};
pub use database::{Database, FactChange};
pub use dictionary::{Dictionary, Sym};
pub use error::DbError;
pub use fact::{Fact, FactId};
pub use fd::{FdId, FdSet, FunctionalDependency};
pub use relation_index::{intersect_postings, RelationIndex, StatsSnapshot};
pub use schema::{AttributeId, RelationId, Schema};
pub use subset::FactSet;
pub use value::Value;
pub use violation::{Violation, ViolationSet};

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::{
        Block, BlockPartition, ConflictGraph, ConflictIndex, Database, DbError, Dictionary, Fact,
        FactChange, FactId, FactSet, FdId, FdSet, FunctionalDependency, LiveOps, RelationId,
        RelationIndex, Schema, StatsSnapshot, Sym, Value, Violation, ViolationSet,
    };
}
