//! Schemas: relation names with arities and named attributes.

use std::collections::HashMap;
use std::fmt;

use crate::DbError;

/// Identifier of a relation name within a [`Schema`] (dense, zero-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub(crate) u32);

impl RelationId {
    /// The raw index of this relation within its schema.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an attribute *position* within a relation (zero-based).
///
/// The paper writes `f[Aᵢ]` for the constant at attribute `Aᵢ`; positions
/// and attribute names are interchangeable through [`Schema::attribute_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttributeId(pub(crate) u32);

impl AttributeId {
    /// Constructs an attribute id from a raw position.
    pub fn new(position: usize) -> Self {
        AttributeId(position as u32)
    }

    /// The raw position of this attribute.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Internal relation metadata.
#[derive(Debug, Clone)]
struct RelationDecl {
    name: String,
    attributes: Vec<String>,
}

/// A relational schema **S**: a finite set of relation names with associated
/// arities and attribute names.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    relations: Vec<RelationDecl>,
    by_name: HashMap<String, RelationId>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Declares a relation with explicit attribute names.
    ///
    /// Returns the new [`RelationId`], or an error if the name is already
    /// declared or the arity is zero.
    pub fn add_relation(
        &mut self,
        name: impl Into<String>,
        attributes: &[&str],
    ) -> Result<RelationId, DbError> {
        let name = name.into();
        if attributes.is_empty() {
            return Err(DbError::ZeroArity { name });
        }
        if self.by_name.contains_key(&name) {
            return Err(DbError::DuplicateRelation { name });
        }
        let id = RelationId(self.relations.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.relations.push(RelationDecl {
            name,
            attributes: attributes.iter().map(|a| (*a).to_string()).collect(),
        });
        Ok(id)
    }

    /// Declares a relation of the given arity with synthesized attribute
    /// names `A1, …, An` (the convention used throughout the paper).
    pub fn add_relation_with_arity(
        &mut self,
        name: impl Into<String>,
        arity: usize,
    ) -> Result<RelationId, DbError> {
        let names: Vec<String> = (1..=arity).map(|i| format!("A{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        self.add_relation(name, &refs)
    }

    /// Number of declared relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Iterates over all relation ids.
    pub fn relation_ids(&self) -> impl Iterator<Item = RelationId> + '_ {
        (0..self.relations.len() as u32).map(RelationId)
    }

    /// Looks up a relation by name.
    pub fn relation_id(&self, name: &str) -> Result<RelationId, DbError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| DbError::UnknownRelation { name: name.into() })
    }

    /// The name of a relation.
    pub fn relation_name(&self, relation: RelationId) -> &str {
        &self.relations[relation.index()].name
    }

    /// The arity of a relation.
    pub fn arity(&self, relation: RelationId) -> usize {
        self.relations[relation.index()].attributes.len()
    }

    /// The attribute names of a relation, in positional order.
    pub fn attributes(&self, relation: RelationId) -> &[String] {
        &self.relations[relation.index()].attributes
    }

    /// Resolves an attribute name of a relation to its position.
    pub fn attribute_id(
        &self,
        relation: RelationId,
        attribute: &str,
    ) -> Result<AttributeId, DbError> {
        let decl = &self.relations[relation.index()];
        decl.attributes
            .iter()
            .position(|a| a == attribute)
            .map(AttributeId::new)
            .ok_or_else(|| DbError::UnknownAttribute {
                relation: decl.name.clone(),
                attribute: attribute.into(),
            })
    }

    /// The name of an attribute position of a relation.
    pub fn attribute_name(&self, relation: RelationId, attribute: AttributeId) -> &str {
        &self.relations[relation.index()].attributes[attribute.index()]
    }

    /// All attribute ids of a relation, i.e. `att(R)`.
    pub fn all_attributes(&self, relation: RelationId) -> Vec<AttributeId> {
        (0..self.arity(relation)).map(AttributeId::new).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for decl in &self.relations {
            writeln!(f, "{}({})", decl.name, decl.attributes.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut schema = Schema::new();
        let r = schema.add_relation("R", &["A", "B", "C"]).unwrap();
        let emp = schema.add_relation_with_arity("Emp", 2).unwrap();
        assert_eq!(schema.relation_count(), 2);
        assert_eq!(schema.relation_id("R").unwrap(), r);
        assert_eq!(schema.relation_name(emp), "Emp");
        assert_eq!(schema.arity(r), 3);
        assert_eq!(
            schema.attributes(emp),
            &["A1".to_string(), "A2".to_string()]
        );
    }

    #[test]
    fn attribute_resolution() {
        let mut schema = Schema::new();
        let r = schema.add_relation("R", &["A", "B", "C"]).unwrap();
        assert_eq!(schema.attribute_id(r, "B").unwrap(), AttributeId::new(1));
        assert_eq!(schema.attribute_name(r, AttributeId::new(2)), "C");
        assert!(matches!(
            schema.attribute_id(r, "Z"),
            Err(DbError::UnknownAttribute { .. })
        ));
        assert_eq!(schema.all_attributes(r).len(), 3);
    }

    #[test]
    fn duplicate_and_zero_arity_rejected() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A"]).unwrap();
        assert!(matches!(
            schema.add_relation("R", &["A"]),
            Err(DbError::DuplicateRelation { .. })
        ));
        assert!(matches!(
            schema.add_relation("S", &[]),
            Err(DbError::ZeroArity { .. })
        ));
    }

    #[test]
    fn unknown_relation_lookup_fails() {
        let schema = Schema::new();
        assert!(matches!(
            schema.relation_id("missing"),
            Err(DbError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn display_lists_relations() {
        let mut schema = Schema::new();
        schema.add_relation("Emp", &["id", "name"]).unwrap();
        assert_eq!(schema.to_string(), "Emp(id, name)\n");
    }
}
