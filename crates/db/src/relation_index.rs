//! Per-relation value indexes: `(position, value) → fact ids`.
//!
//! The plan-based witness enumeration of `ucqa-query` replaces the naive
//! "scan the whole relation per atom" join with indexed lookups: an atom
//! whose term at some position is already bound (a constant, or a variable
//! bound by an earlier join step) only has to look at the facts carrying
//! that value at that position.  [`RelationIndex`] materialises those
//! posting lists **once per database** — one hash map per (relation,
//! position) from the value to the sorted fact-id list — and is immutable
//! afterwards, so it can be shared across threads by reference exactly
//! like [`crate::ConflictIndex`].
//!
//! [`crate::Database::relation_index`] builds the index lazily on first
//! use and caches it behind an `Arc`; mutating the database invalidates
//! the cache.  Posting lists preserve insertion order of the underlying
//! fact ids (ascending), so enumeration orders are deterministic.

use std::collections::HashMap;

use crate::{Database, FactId, RelationId, Value};

/// Immutable per-relation hash indexes from `(position, value)` to the
/// ids of the facts carrying `value` at `position`.
///
/// Built once per [`Database`] (see [`Database::relation_index`]) and
/// shared across threads; all lookups return borrowed slices, so the
/// query-evaluation hot path performs no allocation.
#[derive(Debug, Clone, Default)]
pub struct RelationIndex {
    /// `postings[relation][position]`: value → ascending fact ids.
    postings: Vec<Vec<HashMap<Value, Vec<FactId>>>>,
}

impl RelationIndex {
    /// Builds the index of `db`: one pass over the facts.
    pub fn build(db: &Database) -> Self {
        let schema = db.schema();
        let mut postings: Vec<Vec<HashMap<Value, Vec<FactId>>>> = schema
            .relation_ids()
            .map(|r| vec![HashMap::new(); schema.arity(r)])
            .collect();
        for (id, fact) in db.iter() {
            let relation = &mut postings[fact.relation().index()];
            for (position, value) in fact.values().iter().enumerate() {
                relation[position]
                    .entry(value.clone())
                    .or_default()
                    .push(id);
            }
        }
        RelationIndex { postings }
    }

    /// The ids of the facts of `relation` whose value at `position` equals
    /// `value`, in ascending id order (empty if no fact matches).
    ///
    /// # Panics
    /// Panics if `relation` or `position` is out of range for the indexed
    /// database.
    pub fn matches(&self, relation: RelationId, position: usize, value: &Value) -> &[FactId] {
        self.postings[relation.index()][position]
            .get(value)
            .map_or(&[], Vec::as_slice)
    }

    /// The number of facts of `relation` carrying `value` at `position` —
    /// the posting-list length the planner uses to pick the most selective
    /// access path at run time.
    pub fn selectivity(&self, relation: RelationId, position: usize, value: &Value) -> usize {
        self.matches(relation, position, value).len()
    }

    /// Number of distinct values indexed at `(relation, position)`.
    pub fn distinct_values(&self, relation: RelationId, position: usize) -> usize {
        self.postings[relation.index()][position].len()
    }

    /// Total number of posting entries across all relations and positions
    /// (= Σ relation arity × fact count; a size diagnostic).
    pub fn posting_entries(&self) -> usize {
        self.postings
            .iter()
            .flatten()
            .flat_map(HashMap::values)
            .map(Vec::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn sample_db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        schema.add_relation("S", &["X"]).unwrap();
        let mut db = Database::with_schema(schema);
        for (a, b) in [(1, 1), (1, 2), (2, 1)] {
            db.insert_values("R", [Value::int(a), Value::int(b)])
                .unwrap();
        }
        db.insert_values("S", [Value::str("u")]).unwrap();
        db
    }

    #[test]
    fn postings_group_facts_by_position_and_value() {
        let db = sample_db();
        let index = RelationIndex::build(&db);
        let r = db.schema().relation_id("R").unwrap();
        assert_eq!(
            index.matches(r, 0, &Value::int(1)),
            &[FactId::new(0), FactId::new(1)]
        );
        assert_eq!(
            index.matches(r, 1, &Value::int(1)),
            &[FactId::new(0), FactId::new(2)]
        );
        assert!(index.matches(r, 0, &Value::int(9)).is_empty());
        assert_eq!(index.selectivity(r, 0, &Value::int(2)), 1);
        assert_eq!(index.distinct_values(r, 0), 2);
        let s = db.schema().relation_id("S").unwrap();
        assert_eq!(index.matches(s, 0, &Value::str("u")), &[FactId::new(3)]);
        // 3 facts × arity 2 + 1 fact × arity 1.
        assert_eq!(index.posting_entries(), 7);
    }

    #[test]
    fn database_caches_and_invalidates_the_index() {
        let mut db = sample_db();
        let r = db.schema().relation_id("R").unwrap();
        assert_eq!(db.relation_index().selectivity(r, 0, &Value::int(1)), 2);
        // Re-inserting an existing fact keeps the cache valid.
        db.insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        assert_eq!(db.relation_index().selectivity(r, 0, &Value::int(1)), 2);
        // A genuinely new fact invalidates and rebuilds.
        db.insert_values("R", [Value::int(1), Value::int(3)])
            .unwrap();
        assert_eq!(db.relation_index().selectivity(r, 0, &Value::int(1)), 3);
        // Clones share the already-built index.
        let shared = db.share_relation_index();
        let clone = db.clone();
        assert_eq!(
            clone.relation_index().posting_entries(),
            shared.posting_entries()
        );
    }
}
